//! The paper's Listing 4: the image-processing workflow written in the
//! host language by importing the three CWL CommandLineTools, with Parsl
//! deriving the task DAG from DataFutures.
//!
//! A `process_img` function chains resize → sepia → blur for one image;
//! the main body maps it over every generated input image, so stages of
//! different images interleave freely — exactly the paper's point about
//! composing CWL tools with full programming-language control flow.
//!
//! ```text
//! cargo run --example image_pipeline
//! ```

use cwl_parsl::{CwlApp, CwlAppOptions, CwlRun};
use parsl::{Config, DataFlowKernel};
use std::path::Path;

fn main() -> Result<(), String> {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures");
    let workdir = std::env::temp_dir().join("cwl-parsl-image-pipeline");
    let _ = std::fs::remove_dir_all(&workdir);
    std::fs::create_dir_all(&workdir).map_err(|e| e.to_string())?;

    // Generate a handful of input images (the paper globs '**/*.png').
    let mut images = Vec::new();
    for i in 0..6u64 {
        let path = workdir.join(format!("photo{i}.rimg"));
        imaging::write_rimg(&path, &imaging::gradient(64, 64, i)).map_err(|e| e.to_string())?;
        images.push(path);
    }

    // parsl.load(config)
    let dfk = DataFlowKernel::new(Config::local_threads(6));
    let opts = || CwlAppOptions::in_dir(&workdir).with_builtin_tools();

    // resize_image = CWLApp("resize_image.cwl"); etc.
    let resize_image = CwlApp::load(&dfk, fixtures.join("resize_image.cwl"), opts())?;
    let filter_image = CwlApp::load(&dfk, fixtures.join("filter_image.cwl"), opts())?;
    let blur_image = CwlApp::load(&dfk, fixtures.join("blur_image.cwl"), opts())?;

    // def process_img(image): resize → filter → blur, chained by futures.
    let process_img = |image: &Path, tag: usize| -> Result<CwlRun, String> {
        let resized = resize_image
            .call()
            .arg("input_image", image.to_string_lossy().into_owned())
            .arg("size", 32i64)
            .arg("output_image", format!("resized_{tag}.rimg"))
            .submit()?;
        let filtered = filter_image
            .call()
            .arg_data("input_image", resized.output())
            .arg("sepia", true)
            .arg("output_image", format!("filtered_{tag}.rimg"))
            .submit()?;
        blur_image
            .call()
            .arg_data("input_image", filtered.output())
            .arg("radius", 1i64)
            .arg("output_image", format!("blurred_{tag}.rimg"))
            .submit()
    };

    // final_imgs = [process_img(img) for img in glob(...)]
    let final_imgs: Vec<CwlRun> = images
        .iter()
        .enumerate()
        .map(|(i, img)| process_img(img, i))
        .collect::<Result<_, _>>()?;

    // concurrent.futures.wait(final_imgs, ALL_COMPLETED)
    for run in &final_imgs {
        let file = run.output().result().map_err(|e| e.to_string())?;
        let img = imaging::read_rimg(file.path()).map_err(|e| e.to_string())?;
        println!("{} -> {}x{}", file.basename(), img.width(), img.height());
        assert_eq!((img.width(), img.height()), (32, 32));
    }
    println!(
        "processed {} images across {} Parsl tasks",
        final_imgs.len(),
        dfk.monitoring().summary().completed
    );
    dfk.shutdown();
    Ok(())
}
