//! The paper's §V: InlinePython expressions in CWL documents
//! (Listings 5 and 6).
//!
//! * `capitalize_message_py.cwl` uses an `expressionLib` Python function in
//!   an f-string argument to capitalize a message before echoing it;
//! * `validate_csv.cwl` uses the `validate:` extension field to reject
//!   non-CSV inputs *before* the tool runs.
//!
//! ```text
//! cargo run --example inline_python
//! ```

use cwl_parsl::{CwlApp, CwlAppOptions};
use parsl::{Config, DataFlowKernel};
use std::path::Path;

fn main() -> Result<(), String> {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures");
    let workdir = std::env::temp_dir().join("cwl-parsl-inline-python");
    let _ = std::fs::remove_dir_all(&workdir);
    std::fs::create_dir_all(&workdir).map_err(|e| e.to_string())?;

    let dfk = DataFlowKernel::new(Config::local_threads(2));
    let opts = || CwlAppOptions::in_dir(&workdir).with_builtin_tools();

    // Listing 5: capitalize each word of the message with Python.
    let capitalize = CwlApp::load(&dfk, fixtures.join("capitalize_message_py.cwl"), opts())?;
    let run = capitalize
        .call()
        .arg("message", "towards combining the python and cwl ecosystems")
        .submit()?;
    let out = run.output().result().map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(out.path()).map_err(|e| e.to_string())?;
    println!("capitalized: {text}");
    assert_eq!(text, "Towards Combining The Python And Cwl Ecosystems\n");

    // Listing 6: the validate: hook accepts a CSV…
    std::fs::write(workdir.join("data.csv"), "a,b\n1,2\n").map_err(|e| e.to_string())?;
    let validate = CwlApp::load(&dfk, fixtures.join("validate_csv.cwl"), opts())?;
    let ok = validate
        .call()
        .arg(
            "data_file",
            workdir.join("data.csv").to_string_lossy().into_owned(),
        )
        .submit()?;
    ok.future.result().map_err(|e| e.to_string())?;
    println!("data.csv accepted");

    // …and rejects a .txt before the command ever runs.
    std::fs::write(workdir.join("notes.txt"), "not a csv").map_err(|e| e.to_string())?;
    let bad = validate
        .call()
        .arg(
            "data_file",
            workdir.join("notes.txt").to_string_lossy().into_owned(),
        )
        .submit()?;
    match bad.future.result() {
        Err(e) => {
            println!("notes.txt rejected: {e}");
            assert!(e.to_string().contains("Expected '.csv'"));
        }
        Ok(_) => return Err("validation should have failed".to_string()),
    }

    dfk.shutdown();
    Ok(())
}
