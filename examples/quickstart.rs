//! Quickstart — the paper's Listings 1 & 2 in Rust.
//!
//! Loads the CWL CommandLineTool definition for `echo` (fixtures/echo.cwl),
//! imports it as a Parsl app, executes it, waits for the future, and prints
//! the contents of the output file.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cwl_parsl::{CwlApp, CwlAppOptions};
use parsl::{Config, DataFlowKernel};
use std::path::Path;

fn main() -> Result<(), String> {
    // parsl.load(config) — here: a local thread-pool kernel.
    let dfk = DataFlowKernel::new(Config::local_threads(4));

    // echo = CWLApp("echo.cwl")
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures");
    let workdir = std::env::temp_dir().join("cwl-parsl-quickstart");
    let echo = CwlApp::load(
        &dfk,
        fixtures.join("echo.cwl"),
        CwlAppOptions::in_dir(&workdir).with_builtin_tools(),
    )?;

    // future = echo(message="Hello, World!", stdout="hello.txt")
    let run = echo
        .call()
        .arg("message", "Hello, World!")
        .stdout("hello.txt")
        .submit()?;

    // Wait for the future before reading the output.
    run.future.result().map_err(|e| e.to_string())?;

    let hello = run.output().result().map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(hello.path()).map_err(|e| e.to_string())?;
    print!("{text}");

    dfk.shutdown();
    assert_eq!(text, "Hello, World!\n");
    Ok(())
}
