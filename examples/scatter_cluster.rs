//! A miniature of the paper's §VI evaluation: process a batch of images on
//! a simulated three-node cluster with all three systems — the cwltool-like
//! reference runner, the Toil-like runner, and parsl-cwl on the
//! HighThroughputExecutor — and print a Fig. 1a-style comparison row.
//!
//! ```text
//! cargo run --release --example scatter_cluster
//! ```

use cwl_parsl::{CwlAppOptions, ParslWorkflowRunner};
use cwlexec::BuiltinDispatch;
use gridsim::{BatchScheduler, ClusterSpec, LatencyModel, SchedulerConfig};
use parsl::{Config, DataFlowKernel, HtexConfig, SlurmProvider};
use runners::{RefRunner, ToilRunner};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use yamlite::{Map, Value};

const N_IMAGES: usize = 24;

fn main() -> Result<(), String> {
    // Compress the modelled overheads so the demo finishes in seconds
    // while preserving the relative standings.
    gridsim::TimeScale::set(0.05);

    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures");
    let wf = fixtures.join("scatter_images.cwl");
    let base = std::env::temp_dir().join("cwl-parsl-scatter-cluster");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).map_err(|e| e.to_string())?;

    // The workload: N images through resize → sepia → blur.
    let mut images = Vec::new();
    for i in 0..N_IMAGES as u64 {
        let p = base.join(format!("in{i}.rimg"));
        imaging::write_rimg(&p, &imaging::gradient(64, 64, i)).map_err(|e| e.to_string())?;
        images.push(Value::str(p.to_string_lossy().into_owned()));
    }
    let mut inputs = Map::new();
    inputs.insert("input_images", Value::Seq(images));
    inputs.insert("size", Value::Int(32));
    inputs.insert("sepia", Value::Bool(true));
    inputs.insert("radius", Value::Int(1));

    // The paper's cluster: 3 nodes × 48 logical cores.
    let cluster = ClusterSpec::paper_cluster();
    let slots = cluster.total_cores();
    println!(
        "cluster: {} nodes × {} cores; workload: {N_IMAGES} images × 3 stages\n",
        cluster.node_count(),
        cluster.nodes[0].cores
    );

    // cwltool --parallel
    let dir = base.join("cwltool");
    let runner = RefRunner::new(slots, Arc::new(BuiltinDispatch));
    let report = runner.run(&wf, &inputs, &dir)?;
    println!("  {report}");

    // toil-cwl-runner (slurm)
    let dir = base.join("toil");
    let runner = ToilRunner::slurm(&cluster, dir.join("job-store"), Arc::new(BuiltinDispatch));
    let report = runner.run(&wf, &inputs, &dir)?;
    println!("  {report}");

    // parsl-cwl on HTEX over the simulated batch scheduler.
    let dir = base.join("parsl");
    let sched = BatchScheduler::new(cluster.clone(), SchedulerConfig::default());
    let dfk = DataFlowKernel::try_new(Config::htex(
        HtexConfig {
            label: "htex".into(),
            nodes: cluster.node_count(),
            workers_per_node: cluster.nodes[0].cores,
            latency: LatencyModel::cluster_lan(),
            ..HtexConfig::default()
        },
        Arc::new(SlurmProvider::new(sched)),
    ))?;
    let parsl_runner =
        ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(&dir).with_builtin_tools());
    let start = Instant::now();
    let outputs = parsl_runner.run(&wf, &inputs)?;
    let elapsed = start.elapsed();
    let n_out = outputs
        .get("final_outputs")
        .and_then(Value::as_seq)
        .map(|s| s.len());
    println!(
        "  parsl-htex: {} tasks in {:.3}s ({} outputs)",
        dfk.monitoring().summary().completed,
        elapsed.as_secs_f64(),
        n_out.unwrap_or(0)
    );
    dfk.shutdown();

    println!("\n(run `cargo run --release -p bench --bin figures -- fig1a` for the full sweep)");
    Ok(())
}
