//! Dynamic, data-dependent control flow — the thing a static CWL Workflow
//! cannot express and the paper's motivation for bringing CWL tools into a
//! programming language (§IV-C, §V).
//!
//! The program inspects each image's measured brightness *at runtime* and
//! decides per image whether to apply the sepia filter and how strong a
//! blur to use — branching on intermediate results, while still using the
//! community-curated CWL tool definitions for every actual operation.
//!
//! ```text
//! cargo run --example dynamic_workflow
//! ```

use cwl_parsl::{CwlApp, CwlAppOptions};
use parsl::{Config, DataFlowKernel};
use std::path::Path;

fn main() -> Result<(), String> {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures");
    let workdir = std::env::temp_dir().join("cwl-parsl-dynamic");
    let _ = std::fs::remove_dir_all(&workdir);
    std::fs::create_dir_all(&workdir).map_err(|e| e.to_string())?;

    // A mix of bright and dark inputs.
    let mut inputs = Vec::new();
    for i in 0..4u64 {
        let p = workdir.join(format!("img{i}.rimg"));
        let img = if i % 2 == 0 {
            imaging::gradient(48, 48, i) // mid-brightness gradients
        } else {
            imaging::checkerboard(48, 48, 2) // high-contrast checkers
        };
        imaging::write_rimg(&p, &img).map_err(|e| e.to_string())?;
        inputs.push(p);
    }

    let dfk = DataFlowKernel::new(Config::local_threads(4));
    let opts = || CwlAppOptions::in_dir(&workdir).with_builtin_tools();
    let resize = CwlApp::load(&dfk, fixtures.join("resize_image.cwl"), opts())?;
    let filter = CwlApp::load(&dfk, fixtures.join("filter_image.cwl"), opts())?;
    let blur = CwlApp::load(&dfk, fixtures.join("blur_image.cwl"), opts())?;

    for (i, input) in inputs.iter().enumerate() {
        // Stage 1 always runs.
        let resized = resize
            .call()
            .arg("input_image", input.to_string_lossy().into_owned())
            .arg("size", 24i64)
            .arg("output_image", format!("resized_{i}.rimg"))
            .submit()?;

        // DYNAMIC DECISION: wait for the intermediate file, inspect it,
        // and branch — plain host-language control flow over CWL tools.
        let resized_file = resized.output().result().map_err(|e| e.to_string())?;
        let img = imaging::read_rimg(resized_file.path()).map_err(|e| e.to_string())?;
        let (r, g, b) = img.mean_rgb();
        let brightness = (r + g + b) / 3.0;
        let apply_sepia = brightness < 128.0; // only warm up dark images
        let radius = if brightness > 160.0 { 3i64 } else { 1i64 };

        let filtered = filter
            .call()
            .arg_data("input_image", resized.output())
            .arg("sepia", apply_sepia)
            .arg("output_image", format!("filtered_{i}.rimg"))
            .submit()?;
        let blurred = blur
            .call()
            .arg_data("input_image", filtered.output())
            .arg("radius", radius)
            .arg("output_image", format!("blurred_{i}.rimg"))
            .submit()?;

        let out = blurred.output().result().map_err(|e| e.to_string())?;
        println!(
            "img{i}: brightness {brightness:.0} -> sepia={apply_sepia} radius={radius} -> {}",
            out.basename()
        );
    }
    println!("{} tasks executed", dfk.monitoring().summary().completed);
    dfk.shutdown();
    Ok(())
}
