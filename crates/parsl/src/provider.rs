//! Resource providers — Parsl's abstraction over batch systems and clouds.
//!
//! A provider negotiates *blocks* of compute (pilot jobs) from a resource
//! manager. [`LocalProvider`] hands out the local machine immediately;
//! [`SlurmProvider`] submits pilot jobs to the simulated
//! [`gridsim::BatchScheduler`], paying queue time like real Slurm jobs.

use gridsim::{BatchScheduler, JobHandle, JobRequest, NodeSpec};
use std::time::Duration;

/// A granted compute node, with a release hook back to its provider.
pub struct NodeHandle {
    /// The node's spec (name, cores).
    pub spec: NodeSpec,
    /// The pilot job this node belongs to (None for local provisioning).
    job: Option<JobHandle>,
}

impl std::fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeHandle")
            .field("spec", &self.spec)
            .finish()
    }
}

impl NodeHandle {
    /// Logical cores on this node.
    pub fn cores(&self) -> usize {
        self.spec.cores
    }
}

/// A provider of compute blocks.
pub trait Provider: Send + Sync {
    /// Provision `nodes` nodes, blocking until they are granted (this models
    /// pilot-job queue wait). Returns one handle per node.
    fn provision(&self, nodes: usize) -> Result<Vec<NodeHandle>, String>;

    /// Release previously provisioned nodes.
    fn release(&self, nodes: Vec<NodeHandle>);

    /// Provider label for logs.
    fn label(&self) -> &str;

    /// Static per-node capacity as `(cores, mem_gib)`, *without*
    /// provisioning anything — used by the pre-run feasibility analysis.
    /// `None` means the provider cannot say until nodes are granted.
    fn node_capacity_hint(&self) -> Option<(usize, usize)> {
        None
    }
}

/// Runs on the submitting machine: grants immediately, no queue.
pub struct LocalProvider {
    cores_per_node: usize,
}

impl LocalProvider {
    /// A local provider exposing `cores_per_node` cores.
    pub fn new(cores_per_node: usize) -> Self {
        Self {
            cores_per_node: cores_per_node.max(1),
        }
    }

    /// Use the host's available parallelism.
    pub fn auto() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(cores)
    }
}

impl Provider for LocalProvider {
    fn provision(&self, nodes: usize) -> Result<Vec<NodeHandle>, String> {
        // The local machine is one node; requesting more replicates it,
        // which mirrors Parsl's LocalProvider ignoring node counts.
        Ok((0..nodes.max(1))
            .map(|i| NodeHandle {
                spec: NodeSpec::new(format!("localhost/{i}"), self.cores_per_node, 0),
                job: None,
            })
            .collect())
    }

    fn release(&self, _nodes: Vec<NodeHandle>) {}

    fn label(&self) -> &str {
        "local"
    }

    fn node_capacity_hint(&self) -> Option<(usize, usize)> {
        // mem 0 = unknown: the local machine does not enforce a budget.
        Some((self.cores_per_node, 0))
    }
}

/// Provisions whole nodes through the simulated Slurm batch scheduler.
pub struct SlurmProvider {
    scheduler: BatchScheduler,
    /// How long to wait for the pilot job to leave the queue.
    pub queue_timeout: Duration,
    label: String,
}

impl SlurmProvider {
    /// Provider over a shared scheduler handle.
    pub fn new(scheduler: BatchScheduler) -> Self {
        Self {
            scheduler,
            queue_timeout: Duration::from_secs(300),
            label: "slurm".to_string(),
        }
    }

    /// Access the underlying scheduler (e.g. for queue statistics).
    pub fn scheduler(&self) -> &BatchScheduler {
        &self.scheduler
    }
}

impl Provider for SlurmProvider {
    fn provision(&self, nodes: usize) -> Result<Vec<NodeHandle>, String> {
        // Providers have no handle to a run, so they record against the
        // process-global instance (disabled unless a run enables it).
        let obs = obs::global();
        let t0 = obs.now_us();
        let job = self
            .scheduler
            .submit(JobRequest::nodes(nodes, format!("parsl-pilot-{nodes}n")))?;
        let granted = job.wait_running(self.queue_timeout)?;
        if obs.is_enabled() {
            obs.counter(obs::names::PROVIDER_PROVISIONS).incr();
            obs.histogram(obs::names::PROVIDER_PROVISION_US)
                .record(obs.now_us().saturating_sub(t0));
        }
        let cluster = self.scheduler.cluster();
        Ok(granted
            .into_iter()
            .map(|idx| NodeHandle {
                spec: cluster.nodes[idx].clone(),
                job: Some(job.clone()),
            })
            .collect())
    }

    fn release(&self, nodes: Vec<NodeHandle>) {
        // Handles may span several pilot jobs (elastic scale-out adds
        // blocks); release each distinct job exactly once.
        let mut released = std::collections::HashSet::new();
        for node in nodes {
            if let Some(job) = node.job {
                if released.insert(job.id) {
                    let _ = job.release();
                }
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn node_capacity_hint(&self) -> Option<(usize, usize)> {
        let cluster = self.scheduler.cluster();
        let node = cluster.nodes.first()?;
        Some((node.cores, node.mem_gib))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::{ClusterSpec, SchedulerConfig};

    #[test]
    fn local_provider_grants_immediately() {
        let p = LocalProvider::new(8);
        let nodes = p.provision(3).unwrap();
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[0].cores(), 8);
        p.release(nodes);
    }

    #[test]
    fn local_provider_auto_detects() {
        let p = LocalProvider::auto();
        let nodes = p.provision(1).unwrap();
        assert!(nodes[0].cores() >= 1);
    }

    #[test]
    fn slurm_provider_roundtrip() {
        let sched = BatchScheduler::new(ClusterSpec::small(3, 4), SchedulerConfig::immediate());
        let p = SlurmProvider::new(sched.clone());
        let nodes = p.provision(2).unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(sched.free_node_count(), 1);
        p.release(nodes);
        assert_eq!(sched.free_node_count(), 3);
    }

    #[test]
    fn slurm_provider_queues_when_busy() {
        let sched = BatchScheduler::new(ClusterSpec::small(2, 4), SchedulerConfig::immediate());
        let p = SlurmProvider::new(sched.clone());
        let first = p.provision(2).unwrap();
        // Second provision must wait until the first block is released.
        let p2 = SlurmProvider::new(sched.clone());
        let handle = std::thread::spawn(move || p2.provision(1));
        assert!(
            simtest::wait_until(Duration::from_secs(5), || sched.queue_depth() == 1),
            "second provision should be queued"
        );
        p.release(first);
        let second = handle.join().unwrap().unwrap();
        assert_eq!(second.len(), 1);
    }

    #[test]
    fn slurm_provider_rejects_oversized() {
        let sched = BatchScheduler::new(ClusterSpec::small(2, 4), SchedulerConfig::immediate());
        let p = SlurmProvider::new(sched);
        assert!(p.provision(5).is_err());
    }
}
