//! The DataFlowKernel (DFK): Parsl's runtime core. Tracks dependencies
//! between app invocations through future-completion callbacks, launches
//! tasks on the configured executor when their inputs are ready, propagates
//! failures, retries, and records monitoring events.

use crate::apps::{AppBody, CommandApp, CommandSpec};
use crate::config::{Config, ExecutorChoice, RetryPolicy};
use crate::error::TaskError;
use crate::executor::{Executor, TaskPayload, ThreadPoolExecutor};
use crate::file::File;
use crate::future::{promise_pair, AppFuture, DataFuture, Promise, TaskResult};
use crate::htex::HighThroughputExecutor;
use crate::monitoring::{MonitoringLog, TaskEventKind};
use crate::task::TaskId;
use obs::{names, ObsConfig, Observability, SpanCtx, SpanKind};
use parking_lot::{Condvar, Mutex};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use yamlite::Value;

/// An argument to an app invocation: a literal value, another app's future
/// (dataflow edge), or a file future.
#[derive(Clone)]
pub enum AppArg {
    /// A plain value.
    Literal(Value),
    /// Depend on another app's result value.
    Fut(AppFuture),
    /// Depend on a file another app will produce; materializes as the
    /// file's path string.
    Data(DataFuture),
}

impl AppArg {
    /// Literal argument.
    pub fn value(v: impl Into<Value>) -> Self {
        AppArg::Literal(v.into())
    }

    /// Dataflow edge from another app's future.
    pub fn future(f: &AppFuture) -> Self {
        AppArg::Fut(f.clone())
    }

    /// Dataflow edge from a file future.
    pub fn data(d: &DataFuture) -> Self {
        AppArg::Data(d.clone())
    }

    fn dependency(&self) -> Option<AppFuture> {
        match self {
            AppArg::Literal(_) => None,
            AppArg::Fut(f) => Some(f.clone()),
            AppArg::Data(d) => Some(d.parent().clone()),
        }
    }

    /// Resolve to a concrete value; all dependencies must be complete.
    fn materialize(&self) -> Result<Value, TaskError> {
        match self {
            AppArg::Literal(v) => Ok(v.clone()),
            AppArg::Fut(f) => match f.peek() {
                Some(Ok(v)) => Ok(v),
                Some(Err(e)) => Err(TaskError::DependencyFailed {
                    dep: f.id(),
                    reason: e.to_string(),
                }),
                None => unreachable!("materialize called before dependency completed"),
            },
            AppArg::Data(d) => match d.parent().peek() {
                Some(Ok(_)) => Ok(Value::str(d.filepath().to_string_lossy().into_owned())),
                Some(Err(e)) => Err(TaskError::DependencyFailed {
                    dep: d.parent().id(),
                    reason: e.to_string(),
                }),
                None => unreachable!("materialize called before dependency completed"),
            },
        }
    }
}

/// Identifies the service run a task belongs to when the kernel hosts
/// many concurrent workflow runs (the `parsl-serve` daemon). Untagged
/// tasks — everything submitted through [`DataFlowKernel::submit`] /
/// [`DataFlowKernel::submit_bound`] — behave exactly as before.
#[derive(Clone, Debug)]
pub struct RunTag {
    /// Daemon-assigned run id (also the key for the run's journal).
    pub run: u64,
    /// Fair-share tenant the run was submitted under.
    pub tenant: Arc<str>,
    /// Memo namespace mixed into input fingerprints so tasks from
    /// *different* workflows can never collide in the shared memo table,
    /// while identical workflows share the namespace and still dedupe
    /// across runs. Conventionally the workflow run hash.
    pub memo_ns: u64,
}

impl RunTag {
    /// The run's lineage namespace, as exported in the trace.
    pub fn lineage_name(&self) -> String {
        format!("{}/run-{}", self.tenant, self.run)
    }
}

/// A tagged task whose dependencies are met and whose memo lookup missed:
/// the gate now owns when (or whether) it executes. Call
/// [`GatedLaunch::launch`] — from any thread, now or later — to dispatch
/// it, or [`GatedLaunch::abort`] to fail it without executing.
pub struct GatedLaunch {
    dfk: Arc<DataFlowKernel>,
    task: Arc<TaskInner>,
    vals: Arc<Vec<Value>>,
    fingerprint: Option<u64>,
}

impl GatedLaunch {
    /// The run this task belongs to.
    pub fn tag(&self) -> &RunTag {
        self.task
            .tag
            .as_ref()
            .expect("GatedLaunch exists only for tagged tasks")
    }

    /// Task label (app name).
    pub fn label(&self) -> &str {
        &self.task.label
    }

    /// Dispatch the task to the executor. The gate receives
    /// [`DispatchGate::finished`] when the task reaches a terminal state.
    pub fn launch(self) {
        self.task.gated.store(true, Ordering::Release);
        self.dfk.attempt(self.task, self.vals, self.fingerprint);
    }

    /// Fail the task without executing it (run cancellation). The gate is
    /// *not* notified — it never dispatched this task.
    pub fn abort(self, reason: &str) {
        self.dfk
            .finish(&self.task, Err(TaskError::failed(reason.to_string())));
    }
}

/// Scheduling hook between dependency resolution and the executor: a
/// fair-share scheduler implements this to decide which run's ready tasks
/// dispatch next. Only tasks submitted with a [`RunTag`] are gated.
pub trait DispatchGate: Send + Sync {
    /// A tagged task became runnable. The implementation must eventually
    /// call [`GatedLaunch::launch`] or [`GatedLaunch::abort`].
    fn ready(&self, launch: GatedLaunch);
    /// A task this gate launched reached a terminal state; its slot is
    /// free. Called once per `launch()`, never for aborted tasks.
    fn finished(&self, tag: &RunTag);
}

struct TaskInner {
    id: TaskId,
    /// `Arc<str>` so attempts, retries, and memo keys share one allocation
    /// instead of cloning a `String` per use.
    label: Arc<str>,
    body: AppBody,
    args: Vec<AppArg>,
    retries_left: AtomicUsize,
    promise: Mutex<Option<Promise>>,
    /// The task's `Submit` span id — the root every later span for this
    /// task hangs off (0 when monitoring is off or the task unsampled).
    root_span: u64,
    /// CWL step id, carried on the task so per-run journal records can
    /// name it without the kernel-wide step map.
    step: Option<String>,
    /// Service run this task belongs to (`None` for one-shot kernels).
    tag: Option<RunTag>,
    /// Set when a [`DispatchGate`] launched this task; the terminal
    /// `finish` then owes the gate a `finished` callback.
    gated: std::sync::atomic::AtomicBool,
}

/// Shards in the memoization table. Power of two so the shard index is a
/// mask of the fingerprint. Sixteen shards keep contention negligible even
/// with every worker of a wide HTEX completing tasks at once.
const MEMO_SHARDS: usize = 16;

/// The memoization table, sharded by input fingerprint so concurrent
/// lookups and inserts from many worker threads don't serialize on one
/// lock. Values are `Arc`'d: a lookup clones only the `Arc` under the
/// shard lock (hash → shard → get → drop); the deep `Value` clone a task
/// result needs happens outside any lock.
struct ShardedMemo {
    shards: Vec<Mutex<MemoShard>>,
}

/// One shard's map: (label, fingerprint of resolved inputs) → result.
type MemoShard = std::collections::HashMap<(Arc<str>, u64), Arc<Value>>;

impl ShardedMemo {
    fn new() -> Self {
        Self {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(std::collections::HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<MemoShard> {
        &self.shards[(fingerprint as usize) & (MEMO_SHARDS - 1)]
    }

    fn get(&self, label: &Arc<str>, fingerprint: u64) -> Option<Arc<Value>> {
        self.shard(fingerprint)
            .lock()
            .get(&(label.clone(), fingerprint))
            .cloned()
    }

    fn insert(&self, label: Arc<str>, fingerprint: u64, value: Value) {
        self.shard(fingerprint)
            .lock()
            .insert((label, fingerprint), Arc::new(value));
    }
}

/// The dataflow kernel. Create with [`DataFlowKernel::new`]; returns an
/// `Arc` because completion callbacks keep references to it.
pub struct DataFlowKernel {
    executor: Arc<dyn Executor>,
    retry: RetryPolicy,
    memoize: bool,
    /// Memo table: (label, fingerprint of resolved inputs) → successful
    /// result. Only successes are cached, matching Parsl's memoizer.
    memo: ShardedMemo,
    next_id: AtomicU64,
    /// Tasks not yet in a terminal state. Submission and completion touch
    /// only this atomic; `done_lock`/`all_done` exist solely so `wait_all`
    /// can sleep, and the condvar is notified only on the 1→0 transition.
    outstanding: AtomicUsize,
    done_lock: Mutex<()>,
    all_done: Condvar,
    /// Shared with the executor so node-level events (NodeLost,
    /// BlockReplaced, Redispatched) land in the same log as task events.
    log: Arc<MonitoringLog>,
    /// This run's observability instance, shared with the executor so
    /// executor-side spans land in the same trace.
    obs: Arc<Observability>,
    /// Pre-resolved metric handles so hot paths skip the registry lookup.
    metrics: DfkMetrics,
    /// Durable checkpointing, when configured (None keeps the completion
    /// path checkpoint-free apart from this one branch).
    ckpt: Option<CkptState>,
    /// Kernel time source: retry-backoff sleeps and the monitoring log's
    /// run clock go through this, so a virtual clock makes backoff elapse
    /// in logical time.
    clock: simtest::ClockRef,
    /// Jitter RNG for the retry backoff schedule — seeded from
    /// [`Config::seed`] so a simulated run replays identical delays.
    rng: Mutex<simtest::SimRng>,
    /// Multi-run dispatch gate (fair-share scheduling), when configured.
    gate: Option<Arc<dyn DispatchGate>>,
    /// Per-run checkpoint journals for a kernel hosting many concurrent
    /// runs; keyed by [`RunTag::run`]. Independent of the legacy
    /// single-journal `ckpt` state used by one-shot kernels.
    run_ckpts: Mutex<std::collections::HashMap<u64, Arc<RunCkpt>>>,
}

/// Handles to the kernel's well-known metrics, resolved once at startup.
struct DfkMetrics {
    submitted: Arc<obs::Counter>,
    retries: Arc<obs::Counter>,
    memo_hits: Arc<obs::Counter>,
    memo_misses: Arc<obs::Counter>,
    outstanding: Arc<obs::Gauge>,
}

/// Checkpointing state: the journal plus the bookkeeping that separates a
/// *replay* (memo hit on a journal-seeded key) from an ordinary memo hit.
struct CkptState {
    journal: Arc<ckpt::Journal>,
    /// Memo keys seeded from the journal on resume; a hit on one of these
    /// means the resumed run skipped a task the crashed run had finished.
    seeded: Mutex<std::collections::HashSet<(Arc<str>, u64)>>,
    /// Task id → CWL step id, bound by the workflow compiler so journal
    /// records carry the originating step.
    steps: Mutex<std::collections::HashMap<u64, String>>,
    /// Independent of the obs counters so `checkpoint_stats` works with
    /// monitoring off.
    appended: AtomicUsize,
    replayed: AtomicUsize,
    append_metric: Arc<obs::Counter>,
    replay_metric: Arc<obs::Counter>,
}

/// One service run's journal inside a multi-run kernel. Fingerprints in
/// these journals are already namespace-mixed (see [`RunTag::memo_ns`]),
/// so seeding on resume lands on the same keys tagged launches compute.
struct RunCkpt {
    journal: Arc<ckpt::Journal>,
    /// Memo keys seeded from this run's journal on resume.
    seeded: Mutex<std::collections::HashSet<(Arc<str>, u64)>>,
    appended: AtomicUsize,
    replayed: AtomicUsize,
    append_metric: Arc<obs::Counter>,
    replay_metric: Arc<obs::Counter>,
}

/// A snapshot of checkpoint activity for end-of-run reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CkptStats {
    /// Completions appended to the journal by this kernel.
    pub appended: usize,
    /// Tasks satisfied from seeded journal records instead of executing.
    pub replayed: usize,
}

/// FNV-1a fingerprint of a task's resolved input values.
fn fingerprint_inputs(vals: &[Value]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for v in vals {
        for b in yamlite::to_string_flow(v).bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
        h = (h ^ 0x1f).wrapping_mul(PRIME); // value separator
    }
    h
}

impl DataFlowKernel {
    /// Build a kernel, provisioning the executor. Panics when the provider
    /// cannot satisfy the request — use [`DataFlowKernel::try_new`] to
    /// handle that case.
    pub fn new(config: Config) -> Arc<Self> {
        Self::try_new(config).expect("failed to start executor")
    }

    /// Build a kernel, returning provisioning errors.
    pub fn try_new(config: Config) -> Result<Arc<Self>, String> {
        let label = config.label.clone();
        let executor: Arc<dyn Executor> = match config.executor {
            ExecutorChoice::ThreadPool { workers } => {
                ThreadPoolExecutor::new(format!("{label}-tpe"), workers)
            }
            ExecutorChoice::Htex {
                config: mut hc,
                provider,
            } => {
                // A non-default kernel clock is the run-wide time source:
                // the HTEX it starts must read the same one, or heartbeats
                // and backoff would disagree about when "now" is.
                if !Arc::ptr_eq(&config.clock, &simtest::real_clock()) {
                    hc.clock = config.clock.clone();
                }
                HighThroughputExecutor::start(hc, provider)?
            }
        };
        Ok(Self::from_parts(
            executor,
            config.retry,
            config.memoize,
            config.monitoring,
            config.checkpoint,
            config.clock,
            config.seed,
            config.gate,
        ))
    }

    /// Build a kernel on an already-running executor — for custom executors
    /// and fault-injection tests.
    pub fn with_executor(executor: Arc<dyn Executor>, config: Config) -> Arc<Self> {
        Self::from_parts(
            executor,
            config.retry,
            config.memoize,
            config.monitoring,
            config.checkpoint,
            config.clock,
            config.seed,
            config.gate,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        executor: Arc<dyn Executor>,
        retry: RetryPolicy,
        memoize: bool,
        monitoring: ObsConfig,
        checkpoint: Option<Arc<ckpt::Journal>>,
        clock: simtest::ClockRef,
        seed: Option<u64>,
        gate: Option<Arc<dyn DispatchGate>>,
    ) -> Arc<Self> {
        let log = Arc::new(MonitoringLog::with_clock_and_cap(
            clock.clone(),
            monitoring.events_cap,
        ));
        executor.attach_monitoring(log.clone());
        let obs = Arc::new(Observability::new(monitoring));
        if obs.is_enabled() {
            // Layers with no handle to a kernel (expression cache, tool
            // dispatch, providers) record against the process-global
            // instance; export folds its metrics into this run's trace.
            obs::global().set_enabled(true);
        }
        executor.attach_observability(obs.clone());
        let metrics = DfkMetrics {
            submitted: obs.counter(names::DFK_SUBMITTED),
            retries: obs.counter(names::DFK_RETRIES),
            memo_hits: obs.counter(names::MEMO_HITS),
            memo_misses: obs.counter(names::MEMO_MISSES),
            outstanding: obs.gauge(names::DFK_OUTSTANDING),
        };
        let ckpt = checkpoint.map(|journal| CkptState {
            journal,
            seeded: Mutex::new(std::collections::HashSet::new()),
            steps: Mutex::new(std::collections::HashMap::new()),
            appended: AtomicUsize::new(0),
            replayed: AtomicUsize::new(0),
            append_metric: obs.counter(names::CKPT_APPEND),
            replay_metric: obs.counter(names::CKPT_REPLAYED),
        });
        Arc::new(Self {
            executor,
            retry,
            // Checkpointing is durable memoization: a journal implies the
            // memo table, or replays would have nowhere to land.
            memoize: memoize || ckpt.is_some(),
            memo: ShardedMemo::new(),
            next_id: AtomicU64::new(1),
            outstanding: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            all_done: Condvar::new(),
            log,
            obs,
            metrics,
            ckpt,
            clock,
            rng: Mutex::new(match seed {
                Some(s) => simtest::SimRng::seeded(s),
                None => simtest::SimRng::from_entropy(),
            }),
            gate,
            run_ckpts: Mutex::new(std::collections::HashMap::new()),
        })
    }

    /// The executor in use.
    pub fn executor(&self) -> &Arc<dyn Executor> {
        &self.executor
    }

    /// Monitoring log for this kernel.
    pub fn monitoring(&self) -> &MonitoringLog {
        &self.log
    }

    /// This run's observability instance (spans, metrics, lineage).
    pub fn observability(&self) -> &Arc<Observability> {
        &self.obs
    }

    /// Number of tasks not yet in a terminal state.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Seed the memo table from journal records loaded on resume. Records
    /// whose result fails to parse are skipped (counted as the second
    /// element of the return value); callers have already applied the
    /// stale-hash and missing-file invalidation rules. Later memo hits on
    /// seeded keys are counted as *replays*, not plain memo hits.
    ///
    /// No-op (all records "invalid") when the kernel has no checkpoint
    /// journal — seeding without one would replay results that nothing
    /// guards.
    pub fn seed_checkpoint(&self, records: &[ckpt::Record]) -> (usize, usize) {
        let Some(ckpt) = &self.ckpt else {
            return (0, records.len());
        };
        let mut seeded = 0usize;
        let mut invalid = 0usize;
        for rec in records {
            match ckpt::invalidate::parse_result(&rec.result) {
                Ok(value) => {
                    let label: Arc<str> = Arc::from(rec.label.as_str());
                    ckpt.seeded.lock().insert((label.clone(), rec.fingerprint));
                    self.memo.insert(label, rec.fingerprint, value);
                    seeded += 1;
                }
                Err(_) => invalid += 1,
            }
        }
        (seeded, invalid)
    }

    /// Record that a task originated from a CWL workflow step, so its
    /// journal record carries the step id. No-op without a checkpoint.
    pub fn bind_step(&self, id: TaskId, step: &str) {
        if let Some(ckpt) = &self.ckpt {
            ckpt.steps.lock().insert(id.0, step.to_string());
        }
    }

    /// Checkpoint activity so far, when checkpointing is configured.
    pub fn checkpoint_stats(&self) -> Option<CkptStats> {
        self.ckpt.as_ref().map(|c| CkptStats {
            appended: c.appended.load(Ordering::Relaxed),
            replayed: c.replayed.load(Ordering::Relaxed),
        })
    }

    // ---- multi-run service support -------------------------------------

    /// Attach a per-run checkpoint journal for a service run. Completions
    /// of tasks tagged with this run id append here (with their
    /// namespace-mixed fingerprints); the legacy single-journal path is
    /// untouched. Tagged tasks always compute fingerprints, so a run
    /// journal works even on a kernel built without `memoize`.
    pub fn attach_run_journal(&self, run: u64, journal: Arc<ckpt::Journal>) {
        self.run_ckpts.lock().insert(
            run,
            Arc::new(RunCkpt {
                journal,
                seeded: Mutex::new(std::collections::HashSet::new()),
                appended: AtomicUsize::new(0),
                replayed: AtomicUsize::new(0),
                append_metric: self.obs.counter(names::CKPT_APPEND),
                replay_metric: self.obs.counter(names::CKPT_REPLAYED),
            }),
        );
    }

    /// Seed the shared memo table from a resumed run journal (the per-run
    /// analogue of [`DataFlowKernel::seed_checkpoint`]). Record
    /// fingerprints are already namespace-mixed, so hits land only on
    /// tasks tagged with the same workflow namespace. Returns
    /// `(seeded, invalid)`; no-op when `run` has no attached journal.
    pub fn seed_run_checkpoint(&self, run: u64, records: &[ckpt::Record]) -> (usize, usize) {
        let Some(rc) = self.run_ckpt(run) else {
            return (0, records.len());
        };
        let mut seeded = 0usize;
        let mut invalid = 0usize;
        for rec in records {
            match ckpt::invalidate::parse_result(&rec.result) {
                Ok(value) => {
                    let label: Arc<str> = Arc::from(rec.label.as_str());
                    rc.seeded.lock().insert((label.clone(), rec.fingerprint));
                    self.memo.insert(label, rec.fingerprint, value);
                    seeded += 1;
                }
                Err(_) => invalid += 1,
            }
        }
        (seeded, invalid)
    }

    /// Checkpoint activity for one service run, when its journal is
    /// attached.
    pub fn run_checkpoint_stats(&self, run: u64) -> Option<CkptStats> {
        self.run_ckpt(run).map(|c| CkptStats {
            appended: c.appended.load(Ordering::Relaxed),
            replayed: c.replayed.load(Ordering::Relaxed),
        })
    }

    /// Flush and detach a service run's journal, returning its final
    /// stats. The run's memo entries stay — cross-run dedupe is the point
    /// of the shared table.
    pub fn detach_run_journal(&self, run: u64) -> Option<CkptStats> {
        let rc = self.run_ckpts.lock().remove(&run)?;
        if let Err(e) = rc.journal.flush() {
            eprintln!("warning: {e}");
        }
        Some(CkptStats {
            appended: rc.appended.load(Ordering::Relaxed),
            replayed: rc.replayed.load(Ordering::Relaxed),
        })
    }

    fn run_ckpt(&self, run: u64) -> Option<Arc<RunCkpt>> {
        self.run_ckpts.lock().get(&run).cloned()
    }

    /// The checkpoint journal, when configured.
    pub fn checkpoint_journal(&self) -> Option<&Arc<ckpt::Journal>> {
        self.ckpt.as_ref().map(|c| &c.journal)
    }

    /// Invoke an app: returns immediately with a future. The task launches
    /// once every future among `args` has completed; any failed dependency
    /// fails this task without launching it.
    pub fn submit(self: &Arc<Self>, label: &str, args: Vec<AppArg>, body: AppBody) -> AppFuture {
        self.submit_bound(label, None, args, body)
    }

    /// `submit`, with the originating CWL step id bound before the task can
    /// launch. Binding after `submit` returns races the worker: a fast task
    /// could journal its completion record before the submitting thread gets
    /// to `bind_step`, dropping the step id from the record.
    pub fn submit_bound(
        self: &Arc<Self>,
        label: &str,
        step: Option<&str>,
        args: Vec<AppArg>,
        body: AppBody,
    ) -> AppFuture {
        self.submit_inner(label, step, args, body, None)
    }

    /// `submit_bound`, tagged with the service run the task belongs to.
    /// Tagged tasks always fingerprint their inputs (namespace-mixed so
    /// distinct workflows never collide), journal completions to the run's
    /// attached journal, and — when the kernel has a [`DispatchGate`] —
    /// dispatch through it instead of straight to the executor.
    pub fn submit_tagged(
        self: &Arc<Self>,
        label: &str,
        step: Option<&str>,
        args: Vec<AppArg>,
        body: AppBody,
        tag: RunTag,
    ) -> AppFuture {
        self.submit_inner(label, step, args, body, Some(tag))
    }

    fn submit_inner(
        self: &Arc<Self>,
        label: &str,
        step: Option<&str>,
        args: Vec<AppArg>,
        body: AppBody,
        tag: Option<RunTag>,
    ) -> AppFuture {
        let id = TaskId(self.next_id.fetch_add(1, Ordering::Relaxed));
        if let Some(step) = step {
            self.bind_step(id, step);
        }
        let (fut, promise) = promise_pair(id);
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        self.log.record(id, TaskEventKind::Submitted, label);
        // The Submit span is this task's trace root; its id is valid as a
        // parent from the moment it opens, so spans from a synchronous
        // launch below nest correctly.
        let submit_span = self.obs.start_span(SpanKind::Submit, id.0, 0, label);
        if self.obs.is_enabled() {
            self.obs.lineage_submit(id.0, label);
            if let Some(step) = step {
                self.obs.lineage_bind_step(id.0, step);
            }
            if let Some(tag) = &tag {
                self.obs.lineage_bind_run(id.0, &tag.lineage_name());
            }
            self.metrics.submitted.incr();
            self.metrics.outstanding.add(1);
        }

        let deps: Vec<AppFuture> = args.iter().filter_map(AppArg::dependency).collect();
        let task = Arc::new(TaskInner {
            id,
            label: Arc::from(label),
            body,
            args,
            retries_left: AtomicUsize::new(self.retry.max_retries),
            promise: Mutex::new(Some(promise)),
            root_span: submit_span.id(),
            step: step.map(str::to_string),
            tag,
            gated: std::sync::atomic::AtomicBool::new(false),
        });

        if deps.is_empty() {
            self.launch(task);
        } else {
            // Counter starts at the dependency count; the launch fires on
            // the thread that resolves the final dependency.
            let remaining = Arc::new(AtomicUsize::new(deps.len()));
            for dep in deps {
                let remaining = remaining.clone();
                let dfk = self.clone();
                let task = task.clone();
                dep.on_complete(move |_| {
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        dfk.launch(task);
                    }
                });
            }
        }
        self.obs.finish_span(submit_span);
        fut
    }

    /// Invoke a command app: `build` turns resolved input values into a
    /// [`CommandSpec`]; `outputs` are files the command will produce, each
    /// returned as a [`DataFuture`] (Parsl's `bash_app(outputs=[...])`).
    pub fn submit_command(
        self: &Arc<Self>,
        label: &str,
        args: Vec<AppArg>,
        build: impl Fn(&[Value]) -> Result<CommandSpec, TaskError> + Send + Sync + 'static,
        outputs: Vec<PathBuf>,
    ) -> (AppFuture, Vec<DataFuture>) {
        let body = CommandApp::new(build);
        let fut = self.submit(label, args, body);
        let data = outputs
            .into_iter()
            .map(|p| DataFuture::new(File::new(p), fut.clone()))
            .collect();
        (fut, data)
    }

    /// Dependencies are met: materialize inputs and start the first attempt
    /// (or fail fast on upstream failure).
    fn launch(self: &Arc<Self>, task: Arc<TaskInner>) {
        let mut vals = Vec::with_capacity(task.args.len());
        for arg in &task.args {
            match arg.materialize() {
                Ok(v) => vals.push(v),
                Err(e) => {
                    self.finish(&task, Err(e));
                    return;
                }
            }
        }
        self.log
            .record(task.id, TaskEventKind::Launched, &task.label);
        // Memoization: a prior success with the same label and inputs
        // short-circuits execution entirely. The fingerprint (which
        // serializes every input value) is computed exactly once and
        // reused for the memo insert when the attempt succeeds. Tagged
        // tasks always fingerprint (their run journal needs the key) and
        // mix in the run's memo namespace, so distinct workflows sharing
        // the kernel can never collide on a key while identical workflows
        // still dedupe across runs.
        let fingerprint = if self.memoize || task.tag.is_some() {
            let base = fingerprint_inputs(&vals);
            Some(match &task.tag {
                Some(tag) => ckpt::fnv1a(base, &tag.memo_ns.to_le_bytes()),
                None => base,
            })
        } else {
            None
        };
        if let Some(fp) = fingerprint {
            let lookup =
                self.obs
                    .start_span(SpanKind::MemoLookup, task.id.0, task.root_span, &task.label);
            let cached = self.memo.get(&task.label, fp);
            self.obs.finish_span(lookup);
            if let Some(cached) = cached {
                self.log
                    .record(task.id, TaskEventKind::Memoized, &task.label);
                // A hit on a journal-seeded key is a *replay*: the crashed
                // run finished this task and the resume is skipping it.
                // Tagged tasks consult their own run's seeded set.
                let seeded_hit = |c: &Mutex<std::collections::HashSet<(Arc<str>, u64)>>| {
                    c.lock().contains(&(task.label.clone(), fp))
                };
                let replayed = match &task.tag {
                    Some(tag) => self
                        .run_ckpt(tag.run)
                        .map(|c| {
                            let hit = seeded_hit(&c.seeded);
                            if hit {
                                c.replayed.fetch_add(1, Ordering::Relaxed);
                                c.replay_metric.incr();
                            }
                            hit
                        })
                        .unwrap_or(false),
                    None => self
                        .ckpt
                        .as_ref()
                        .map(|c| {
                            let hit = seeded_hit(&c.seeded);
                            if hit {
                                c.replayed.fetch_add(1, Ordering::Relaxed);
                                c.replay_metric.incr();
                            }
                            hit
                        })
                        .unwrap_or(false),
                };
                if self.obs.is_enabled() {
                    self.metrics.memo_hits.incr();
                    self.obs.lineage_complete(
                        task.id.0,
                        if replayed { "replayed" } else { "memoized" },
                    );
                }
                self.finish(&task, Ok((*cached).clone()));
                return;
            }
            if self.obs.is_enabled() {
                self.metrics.memo_misses.incr();
            }
        }
        // Tagged tasks go through the dispatch gate (when one is
        // configured) so the fair-share scheduler decides when this run's
        // work reaches the executor. Untagged tasks dispatch directly.
        let vals = Arc::new(vals);
        match (&self.gate, task.tag.is_some()) {
            (Some(gate), true) => gate.ready(GatedLaunch {
                dfk: self.clone(),
                task,
                vals,
                fingerprint,
            }),
            _ => self.attempt(task, vals, fingerprint),
        }
    }

    /// Run one execution attempt on the executor; retry on failure while
    /// budget remains, honouring the policy's backoff schedule.
    /// `fingerprint` is the precomputed input fingerprint when memoization
    /// is on (`None` otherwise) — computed once in [`Self::launch`].
    fn attempt(
        self: &Arc<Self>,
        task: Arc<TaskInner>,
        vals: Arc<Vec<Value>>,
        fingerprint: Option<u64>,
    ) {
        let (attempt_fut, attempt_promise) = promise_pair(task.id);
        let body = task.body.clone();
        // The completion callback needs `vals` only to relaunch a failed
        // attempt; with no retry budget the body's reference is the last
        // one and the callback captures nothing.
        let vals_for_retry = (self.retry.max_retries > 0).then(|| vals.clone());
        // The Dispatch span covers the executor hand-off; executor-side
        // spans (enqueue, recv, exec, result) parent onto it via the
        // payload's trace context.
        let dispatch =
            self.obs
                .start_span(SpanKind::Dispatch, task.id.0, task.root_span, &task.label);
        self.obs.lineage_dispatch(task.id.0);
        self.executor.submit(TaskPayload {
            id: task.id,
            body: Arc::new(move || body(&vals)),
            promise: attempt_promise.clone(),
            ctx: SpanCtx {
                lineage: task.id.0,
                parent: dispatch.id(),
            },
        });
        self.obs.finish_span(dispatch);
        // Walltime watchdog: race the executor with a timer holding a
        // clone of the attempt promise — first completion wins, so a
        // finished task makes the watchdog's completion a no-op.
        if let Some(walltime) = self.retry.walltime {
            let watched = attempt_fut.clone();
            let dfk = self.clone();
            let task = task.clone();
            let _ = std::thread::Builder::new()
                .name(format!("walltime-{}", task.id))
                .spawn(move || {
                    if watched.result_timeout(walltime).is_none() {
                        dfk.log
                            .record(task.id, TaskEventKind::TimedOut, &task.label);
                        dfk.obs.instant_span(
                            SpanKind::TimedOut,
                            task.id.0,
                            task.root_span,
                            &task.label,
                        );
                        attempt_promise.complete(Err(TaskError::Timeout(walltime)));
                    }
                });
        }
        let dfk = self.clone();
        attempt_fut.on_complete(move |result| match result {
            Ok(value) => {
                if let Some(fp) = fingerprint {
                    dfk.memo.insert(task.label.clone(), fp, value.clone());
                    // Durable completion record. Journal failures degrade
                    // to a warning — losing checkpoint coverage must not
                    // fail a task that actually succeeded. Tagged tasks
                    // journal to their run's journal; untagged tasks to
                    // the kernel-wide one.
                    match &task.tag {
                        Some(tag) => {
                            if let Some(rc) = dfk.run_ckpt(tag.run) {
                                let record = ckpt::Record {
                                    label: task.label.to_string(),
                                    fingerprint: fp,
                                    step: task.step.clone(),
                                    result: yamlite::to_string_flow(value),
                                };
                                match rc.journal.append(&record) {
                                    Ok(()) => {
                                        rc.appended.fetch_add(1, Ordering::Relaxed);
                                        rc.append_metric.incr();
                                    }
                                    Err(e) => eprintln!("warning: {e}"),
                                }
                            }
                        }
                        None => {
                            if let Some(ckpt) = &dfk.ckpt {
                                let record = ckpt::Record {
                                    label: task.label.to_string(),
                                    fingerprint: fp,
                                    step: ckpt.steps.lock().get(&task.id.0).cloned(),
                                    result: yamlite::to_string_flow(value),
                                };
                                match ckpt.journal.append(&record) {
                                    Ok(()) => {
                                        ckpt.appended.fetch_add(1, Ordering::Relaxed);
                                        ckpt.append_metric.incr();
                                    }
                                    Err(e) => eprintln!("warning: {e}"),
                                }
                            }
                        }
                    }
                }
                dfk.finish(&task, result.clone())
            }
            Err(e) => {
                // Dependency failures are final — re-running cannot change
                // the upstream outcome — and shutdown means there is
                // nothing left to run on. Execution failures (including
                // timeouts and lost executors) retry.
                let retryable =
                    !matches!(e, TaskError::DependencyFailed { .. } | TaskError::Shutdown);
                match task
                    .retries_left
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                        if retryable {
                            n.checked_sub(1)
                        } else {
                            None
                        }
                    }) {
                    Ok(prev) => {
                        dfk.log.record(task.id, TaskEventKind::Retried, &task.label);
                        if dfk.obs.is_enabled() {
                            dfk.obs.instant_span(
                                SpanKind::Retry,
                                task.id.0,
                                task.root_span,
                                &task.label,
                            );
                            dfk.metrics.retries.incr();
                        }
                        let vals = vals_for_retry
                            .clone()
                            .expect("retry granted only when max_retries > 0");
                        let retry_index = dfk.retry.max_retries - prev + 1;
                        let delay = dfk
                            .retry
                            .backoff_for_seeded(retry_index, &mut dfk.rng.lock());
                        if delay.is_zero() {
                            dfk.attempt(task.clone(), vals, fingerprint);
                        } else {
                            let dfk = dfk.clone();
                            let task = task.clone();
                            let _ = std::thread::Builder::new()
                                .name(format!("backoff-{}", task.id))
                                .spawn(move || {
                                    dfk.clock.sleep(delay);
                                    dfk.attempt(task, vals, fingerprint);
                                });
                        }
                    }
                    Err(_) => dfk.finish(&task, result.clone()),
                }
            }
        });
    }

    /// Resolve the task's public future and update accounting.
    fn finish(&self, task: &TaskInner, result: TaskResult) {
        let kind = if result.is_ok() {
            TaskEventKind::Completed
        } else {
            TaskEventKind::Failed
        };
        self.log.record(task.id, kind, &task.label);
        if self.obs.is_enabled() {
            // Memoized tasks recorded their (sticky) outcome in `launch`.
            let outcome = if result.is_ok() {
                "completed"
            } else {
                "failed"
            };
            self.obs.lineage_complete(task.id.0, outcome);
            self.metrics.outstanding.add(-1);
        }
        if let Some(promise) = task.promise.lock().take() {
            promise.complete(result);
        }
        // A gate-launched task owes the gate exactly one `finished` — after
        // the promise resolved, so dependents enqueued by the completion
        // callbacks are already queued when the freed slot is re-filled.
        if task.gated.swap(false, Ordering::AcqRel) {
            if let (Some(gate), Some(tag)) = (&self.gate, &task.tag) {
                gate.finished(tag);
            }
        }
        // Zero-transition protocol: only the finisher that drops the count
        // to zero takes the lock, so the common case is one atomic RMW.
        // Taking `done_lock` before notifying closes the race with a waiter
        // that observed a non-zero count and is about to sleep.
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done_lock.lock();
            self.all_done.notify_all();
        }
    }

    /// Block until every submitted task reaches a terminal state.
    pub fn wait_all(&self) {
        let mut guard = self.done_lock.lock();
        while self.outstanding.load(Ordering::Acquire) > 0 {
            self.all_done.wait(&mut guard);
        }
    }

    /// Wait for all tasks, then stop the executor and export the trace
    /// (when monitoring is configured with an export path).
    pub fn shutdown(&self) {
        self.wait_all();
        self.executor.shutdown();
        // Make periodic-mode journal appends durable before declaring the
        // run finished (TaskExit mode already synced each one).
        if let Some(ckpt) = &self.ckpt {
            if let Err(e) = ckpt.journal.flush() {
                eprintln!("warning: {e}");
            }
        }
        if let Err(e) = self.obs.export() {
            eprintln!("warning: trace export failed: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::FnApp;
    use std::time::Duration;

    fn dfk() -> Arc<DataFlowKernel> {
        DataFlowKernel::new(Config::local_threads(4))
    }

    fn add_app() -> AppBody {
        FnApp::new(|vals| {
            let mut total = 0i64;
            for v in vals {
                total += v
                    .as_int()
                    .ok_or_else(|| TaskError::failed(format!("non-int input {v:?}")))?;
            }
            Ok(Value::Int(total))
        })
    }

    #[test]
    fn simple_chain() {
        let dfk = dfk();
        let a = dfk.submit(
            "a",
            vec![AppArg::value(1i64), AppArg::value(2i64)],
            add_app(),
        );
        let b = dfk.submit(
            "b",
            vec![AppArg::future(&a), AppArg::value(10i64)],
            add_app(),
        );
        assert_eq!(b.result().unwrap(), Value::Int(13));
        dfk.shutdown();
    }

    #[test]
    fn diamond_dependencies() {
        let dfk = dfk();
        let root = dfk.submit("root", vec![AppArg::value(1i64)], add_app());
        let left = dfk.submit(
            "l",
            vec![AppArg::future(&root), AppArg::value(10i64)],
            add_app(),
        );
        let right = dfk.submit(
            "r",
            vec![AppArg::future(&root), AppArg::value(100i64)],
            add_app(),
        );
        let join = dfk.submit(
            "join",
            vec![AppArg::future(&left), AppArg::future(&right)],
            add_app(),
        );
        assert_eq!(join.result().unwrap(), Value::Int(112));
        dfk.shutdown();
    }

    #[test]
    fn failure_propagates_without_running_dependents() {
        let dfk = dfk();
        let boom = dfk.submit(
            "boom",
            vec![],
            FnApp::new(|_| Err(TaskError::failed("explosion"))),
        );
        let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ran2 = ran.clone();
        let dependent = dfk.submit(
            "dep",
            vec![AppArg::future(&boom)],
            FnApp::new(move |_| {
                ran2.store(true, Ordering::SeqCst);
                Ok(Value::Null)
            }),
        );
        match dependent.result() {
            Err(TaskError::DependencyFailed { reason, .. }) => {
                assert!(reason.contains("explosion"))
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!ran.load(Ordering::SeqCst), "dependent body must not run");
        dfk.shutdown();
        let s = dfk.monitoring().summary();
        assert_eq!(s.failed, 2);
    }

    #[test]
    fn retries_eventually_succeed() {
        let dfk = DataFlowKernel::new(Config::local_threads(2).with_retries(3));
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts2 = attempts.clone();
        let fut = dfk.submit(
            "flaky",
            vec![],
            FnApp::new(move |_| {
                if attempts2.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(TaskError::failed("transient"))
                } else {
                    Ok(Value::str("finally"))
                }
            }),
        );
        assert_eq!(fut.result().unwrap(), Value::str("finally"));
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        assert_eq!(dfk.monitoring().summary().retried, 2);
        dfk.shutdown();
    }

    #[test]
    fn retries_exhaust() {
        let dfk = DataFlowKernel::new(Config::local_threads(2).with_retries(2));
        let fut = dfk.submit(
            "always-bad",
            vec![],
            FnApp::new(|_| Err(TaskError::failed("no"))),
        );
        assert!(fut.result().is_err());
        assert_eq!(dfk.monitoring().summary().retried, 2);
        dfk.shutdown();
    }

    #[test]
    fn dependency_failure_is_not_retried() {
        let dfk = DataFlowKernel::new(Config::local_threads(2).with_retries(5));
        let boom = dfk.submit("boom", vec![], FnApp::new(|_| Err(TaskError::failed("x"))));
        let dep = dfk.submit("dep", vec![AppArg::future(&boom)], add_app());
        assert!(dep.result().is_err());
        // Only the root task retried; the dependent failed exactly once.
        assert_eq!(dfk.monitoring().summary().retried, 5);
        dfk.shutdown();
    }

    #[test]
    fn submit_command_produces_data_futures() {
        let dir = std::env::temp_dir().join(format!("parsl-dfk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("echoed.txt");
        let dfk = dfk();
        let out2 = out.clone();
        let (fut, outputs) = dfk.submit_command(
            "echo",
            vec![AppArg::value("payload")],
            move |vals| {
                Ok(CommandSpec {
                    argv: vec!["echo".into(), vals[0].to_display_string()],
                    stdout: Some(out2.clone()),
                    ..Default::default()
                })
            },
            vec![out.clone()],
        );
        let produced = outputs[0].result().unwrap();
        assert!(produced.exists());
        assert_eq!(std::fs::read_to_string(&out).unwrap(), "payload\n");
        assert_eq!(fut.result().unwrap()["exit_code"].as_int(), Some(0));
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn data_future_chains_tasks() {
        let dir = std::env::temp_dir().join(format!("parsl-chain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let first_out = dir.join("first.txt");
        let dfk = dfk();
        let fo = first_out.clone();
        let (_f1, outs1) = dfk.submit_command(
            "produce",
            vec![],
            move |_| {
                Ok(CommandSpec {
                    argv: vec!["echo".into(), "chained-content".into()],
                    stdout: Some(fo.clone()),
                    ..Default::default()
                })
            },
            vec![first_out.clone()],
        );
        // Second task consumes the DataFuture: materializes as the path.
        let consume = dfk.submit(
            "consume",
            vec![AppArg::data(&outs1[0])],
            FnApp::new(|vals| {
                let path = vals[0]
                    .as_str()
                    .ok_or_else(|| TaskError::failed("no path"))?;
                let text = std::fs::read_to_string(path).map_err(TaskError::failed)?;
                Ok(Value::str(text.trim()))
            }),
        );
        assert_eq!(consume.result().unwrap(), Value::str("chained-content"));
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wait_all_blocks_until_done() {
        let dfk = dfk();
        for _ in 0..6 {
            dfk.submit(
                "sleepy",
                vec![],
                FnApp::new(|_| {
                    std::thread::sleep(Duration::from_millis(20));
                    Ok(Value::Null)
                }),
            );
        }
        dfk.wait_all();
        assert_eq!(dfk.outstanding(), 0);
        assert_eq!(dfk.monitoring().summary().completed, 6);
        dfk.shutdown();
    }

    #[test]
    fn many_tasks_fan_out() {
        let dfk = dfk();
        let futs: Vec<AppFuture> = (0..200)
            .map(|i| dfk.submit("w", vec![AppArg::value(i as i64)], add_app()))
            .collect();
        let total: i64 = futs
            .iter()
            .map(|f| f.result().unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, (0..200).sum::<i64>());
        dfk.shutdown();
    }

    #[test]
    fn memoization_skips_repeat_executions() {
        let dfk = DataFlowKernel::new(Config::local_threads(2).with_memoization());
        let executions = Arc::new(AtomicUsize::new(0));
        let body = {
            let executions = executions.clone();
            FnApp::new(move |vals: &[Value]| {
                executions.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Int(vals[0].as_int().unwrap() * 2))
            })
        };
        let a = dfk.submit("dbl", vec![AppArg::value(21i64)], body.clone());
        assert_eq!(a.result().unwrap(), Value::Int(42));
        // Same label + same inputs → memo hit, body not re-run.
        let b = dfk.submit("dbl", vec![AppArg::value(21i64)], body.clone());
        assert_eq!(b.result().unwrap(), Value::Int(42));
        // Different inputs → executes.
        let c = dfk.submit("dbl", vec![AppArg::value(5i64)], body.clone());
        assert_eq!(c.result().unwrap(), Value::Int(10));
        // Different label, same inputs → executes.
        let d = dfk.submit("other", vec![AppArg::value(21i64)], body);
        assert_eq!(d.result().unwrap(), Value::Int(42));
        assert_eq!(executions.load(Ordering::SeqCst), 3);
        assert_eq!(dfk.monitoring().summary().memoized, 1);
        dfk.shutdown();
    }

    #[test]
    fn memoization_ignores_failures_and_respects_future_inputs() {
        let dfk = DataFlowKernel::new(Config::local_threads(2).with_memoization());
        let attempts = Arc::new(AtomicUsize::new(0));
        let flaky = {
            let attempts = attempts.clone();
            FnApp::new(move |_: &[Value]| {
                if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    Err(TaskError::failed("first try fails"))
                } else {
                    Ok(Value::str("ok"))
                }
            })
        };
        // First submission fails — failures are not cached.
        assert!(dfk
            .submit("flaky", vec![AppArg::value(1i64)], flaky.clone())
            .result()
            .is_err());
        // Second submission with the same inputs re-executes and succeeds.
        assert_eq!(
            dfk.submit("flaky", vec![AppArg::value(1i64)], flaky.clone())
                .result()
                .unwrap(),
            Value::str("ok")
        );
        // Third is a memo hit of the success.
        assert_eq!(
            dfk.submit("flaky", vec![AppArg::value(1i64)], flaky)
                .result()
                .unwrap(),
            Value::str("ok")
        );
        assert_eq!(attempts.load(Ordering::SeqCst), 2);

        // Future-valued inputs memoize on the *resolved* value.
        let lit = dfk.submit("src", vec![], FnApp::new(|_| Ok(Value::Int(9))));
        let runs = Arc::new(AtomicUsize::new(0));
        let body = {
            let runs = runs.clone();
            FnApp::new(move |vals: &[Value]| {
                runs.fetch_add(1, Ordering::SeqCst);
                Ok(vals[0].clone())
            })
        };
        let via_future = dfk.submit("sel", vec![AppArg::future(&lit)], body.clone());
        assert_eq!(via_future.result().unwrap(), Value::Int(9));
        let via_literal = dfk.submit("sel", vec![AppArg::value(9i64)], body);
        assert_eq!(via_literal.result().unwrap(), Value::Int(9));
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "resolved-value memo must hit"
        );
        dfk.shutdown();
    }

    #[test]
    fn memoization_off_by_default() {
        let dfk = dfk();
        let runs = Arc::new(AtomicUsize::new(0));
        let body = {
            let runs = runs.clone();
            FnApp::new(move |_: &[Value]| {
                runs.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Null)
            })
        };
        dfk.submit("x", vec![], body.clone()).result().unwrap();
        dfk.submit("x", vec![], body).result().unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        dfk.shutdown();
    }

    #[test]
    fn checkpoint_appends_then_replays_without_reexecution() {
        let dir = std::env::temp_dir().join(format!("parsl-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dfk-roundtrip.ckpt");
        let _ = std::fs::remove_file(&path);
        let header = ckpt::Header {
            version: 1,
            run_hash: 42,
            label: "dfk-test".into(),
        };

        // First run: completions land in the journal.
        let journal =
            Arc::new(ckpt::Journal::create(&path, &header, ckpt::SyncMode::TaskExit).unwrap());
        let dfk = DataFlowKernel::new(Config::local_threads(2).with_checkpoint(journal));
        let a = dfk.submit("a", vec![AppArg::value(1i64)], add_app());
        let b = dfk.submit(
            "b",
            vec![AppArg::future(&a), AppArg::value(10i64)],
            add_app(),
        );
        assert_eq!(b.result().unwrap(), Value::Int(11));
        dfk.shutdown();
        let stats = dfk.checkpoint_stats().unwrap();
        assert_eq!(
            stats,
            CkptStats {
                appended: 2,
                replayed: 0
            }
        );

        // Second run resumes the journal: same submissions replay from the
        // seeded memo table; bodies never execute, nothing re-appends.
        let (journal, loaded) = ckpt::Journal::resume(&path, ckpt::SyncMode::TaskExit).unwrap();
        assert_eq!(loaded.records.len(), 2);
        let dfk = DataFlowKernel::new(Config::local_threads(2).with_checkpoint(Arc::new(journal)));
        assert_eq!(dfk.seed_checkpoint(&loaded.records), (2, 0));
        let executions = Arc::new(AtomicUsize::new(0));
        let body = {
            let executions = executions.clone();
            FnApp::new(move |_: &[Value]| {
                executions.fetch_add(1, Ordering::SeqCst);
                panic!("journaled task must not re-execute");
            })
        };
        let a = dfk.submit("a", vec![AppArg::value(1i64)], body.clone());
        let b = dfk.submit("b", vec![AppArg::future(&a), AppArg::value(10i64)], body);
        assert_eq!(b.result().unwrap(), Value::Int(11));
        dfk.shutdown();
        assert_eq!(executions.load(Ordering::SeqCst), 0);
        let stats = dfk.checkpoint_stats().unwrap();
        assert_eq!(
            stats,
            CkptStats {
                appended: 0,
                replayed: 2
            }
        );
        assert_eq!(ckpt::load(&path).unwrap().records.len(), 2);
    }

    #[test]
    fn backoff_delays_retries() {
        let policy = RetryPolicy {
            max_retries: 2,
            initial_backoff: Duration::from_millis(40),
            multiplier: 1.0,
            max_backoff: Duration::from_secs(1),
            jitter_frac: 0.0,
            walltime: None,
        };
        let dfk = DataFlowKernel::new(Config::local_threads(2).with_retry_policy(policy));
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts2 = attempts.clone();
        let start = std::time::Instant::now();
        let fut = dfk.submit(
            "flaky",
            vec![],
            FnApp::new(move |_| {
                if attempts2.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(TaskError::failed("transient"))
                } else {
                    Ok(Value::Null)
                }
            }),
        );
        fut.result().unwrap();
        // Two retries, each preceded by a 40ms (no-jitter) backoff.
        assert!(
            start.elapsed() >= Duration::from_millis(80),
            "{:?}",
            start.elapsed()
        );
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        dfk.shutdown();
    }

    #[test]
    fn walltime_kills_runaway_attempt() {
        let dfk =
            DataFlowKernel::new(Config::local_threads(2).with_walltime(Duration::from_millis(40)));
        let fut = dfk.submit(
            "runaway",
            vec![],
            FnApp::new(|_| {
                std::thread::sleep(Duration::from_millis(400));
                Ok(Value::Null)
            }),
        );
        match fut.result() {
            Err(TaskError::Timeout(d)) => assert_eq!(d, Duration::from_millis(40)),
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert_eq!(dfk.monitoring().summary().timed_out, 1);
        dfk.shutdown();
    }

    #[test]
    fn walltime_spares_fast_tasks() {
        let dfk =
            DataFlowKernel::new(Config::local_threads(2).with_walltime(Duration::from_secs(5)));
        let fut = dfk.submit("quick", vec![], FnApp::new(|_| Ok(Value::Int(1))));
        assert_eq!(fut.result().unwrap(), Value::Int(1));
        assert_eq!(dfk.monitoring().summary().timed_out, 0);
        dfk.shutdown();
    }

    #[test]
    fn timed_out_attempt_is_retried() {
        let policy = RetryPolicy {
            max_retries: 1,
            walltime: Some(Duration::from_millis(60)),
            ..RetryPolicy::default()
        };
        let dfk = DataFlowKernel::new(Config::local_threads(2).with_retry_policy(policy));
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts2 = attempts.clone();
        let fut = dfk.submit(
            "slow-then-fast",
            vec![],
            FnApp::new(move |_| {
                if attempts2.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Ok(Value::str("made it"))
            }),
        );
        assert_eq!(fut.result().unwrap(), Value::str("made it"));
        assert_eq!(dfk.monitoring().summary().timed_out, 1);
        dfk.shutdown();
    }

    /// An executor that loses its first submission to a synthetic node
    /// failure, then behaves normally.
    struct LosesFirstTask {
        inner: Arc<ThreadPoolExecutor>,
        tripped: std::sync::atomic::AtomicBool,
    }

    impl Executor for LosesFirstTask {
        fn submit(&self, task: TaskPayload) {
            if !self.tripped.swap(true, Ordering::SeqCst) {
                task.promise
                    .complete(Err(TaskError::ExecutorLost("synthetic node loss".into())));
                return;
            }
            self.inner.submit(task);
        }
        fn label(&self) -> &str {
            "loses-first"
        }
        fn worker_count(&self) -> usize {
            self.inner.worker_count()
        }
        fn shutdown(&self) {
            self.inner.shutdown();
        }
    }

    #[test]
    fn executor_lost_is_retried_but_dependency_failure_is_not() {
        let flaky = Arc::new(LosesFirstTask {
            inner: ThreadPoolExecutor::new("inner", 2),
            tripped: std::sync::atomic::AtomicBool::new(false),
        });
        let dfk = DataFlowKernel::with_executor(flaky, Config::local_threads(0).with_retries(2));
        // First submission is lost with ExecutorLost → retried → succeeds.
        let survivor = dfk.submit("survivor", vec![], FnApp::new(|_| Ok(Value::Int(7))));
        assert_eq!(survivor.result().unwrap(), Value::Int(7));
        assert_eq!(dfk.monitoring().summary().retried, 1);
        // A dependency failure must fail immediately, consuming no retries.
        let boom = dfk.submit("boom", vec![], FnApp::new(|_| Err(TaskError::failed("x"))));
        let dep = dfk.submit("dep", vec![AppArg::future(&boom)], add_app());
        match dep.result() {
            Err(TaskError::DependencyFailed { .. }) => {}
            other => panic!("expected DependencyFailed, got {other:?}"),
        }
        // boom itself retried (2), dep did not (0), survivor retried once.
        assert_eq!(dfk.monitoring().summary().retried, 3);
        dfk.shutdown();
    }

    /// A gate that parks every ready task until the test releases it, and
    /// counts finished callbacks.
    struct ParkingGate {
        parked: Mutex<Vec<GatedLaunch>>,
        finished: AtomicUsize,
    }

    impl DispatchGate for ParkingGate {
        fn ready(&self, launch: GatedLaunch) {
            self.parked.lock().push(launch);
        }
        fn finished(&self, _tag: &RunTag) {
            self.finished.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tag(run: u64, ns: u64) -> RunTag {
        RunTag {
            run,
            tenant: Arc::from("t"),
            memo_ns: ns,
        }
    }

    #[test]
    fn gate_holds_tagged_tasks_until_released() {
        let gate = Arc::new(ParkingGate {
            parked: Mutex::new(Vec::new()),
            finished: AtomicUsize::new(0),
        });
        let dfk = DataFlowKernel::new(Config::local_threads(2).with_gate(gate.clone() as Arc<_>));
        let gated = dfk.submit_tagged("g", None, vec![AppArg::value(1i64)], add_app(), tag(1, 7));
        // Untagged tasks bypass the gate entirely.
        let free = dfk.submit("free", vec![AppArg::value(2i64)], add_app());
        assert_eq!(free.result().unwrap(), Value::Int(2));
        assert!(gated.peek().is_none(), "gated task must not run unreleased");
        let parked: Vec<_> = std::mem::take(&mut *gate.parked.lock());
        assert_eq!(parked.len(), 1);
        assert_eq!(parked[0].tag().run, 1);
        for l in parked {
            l.launch();
        }
        assert_eq!(gated.result().unwrap(), Value::Int(1));
        assert_eq!(gate.finished.load(Ordering::SeqCst), 1);
        // Aborted tasks fail without executing and without a finished().
        let doomed = dfk.submit_tagged("d", None, vec![], add_app(), tag(1, 7));
        let parked: Vec<_> = std::mem::take(&mut *gate.parked.lock());
        for l in parked {
            l.abort("run cancelled");
        }
        assert!(doomed.result().is_err());
        assert_eq!(gate.finished.load(Ordering::SeqCst), 1);
        dfk.shutdown();
    }

    #[test]
    fn memo_namespaces_isolate_workflows_but_dedupe_within_one() {
        let dfk = dfk();
        let runs = Arc::new(AtomicUsize::new(0));
        let body = {
            let runs = runs.clone();
            FnApp::new(move |vals: &[Value]| {
                runs.fetch_add(1, Ordering::SeqCst);
                Ok(vals[0].clone())
            })
        };
        // Same label+inputs, same namespace (two runs of one workflow):
        // the second is a memo hit even though the kernel has memoize off —
        // tagged tasks always fingerprint.
        let a = dfk.submit_tagged(
            "t",
            None,
            vec![AppArg::value(5i64)],
            body.clone(),
            tag(1, 99),
        );
        assert_eq!(a.result().unwrap(), Value::Int(5));
        let b = dfk.submit_tagged(
            "t",
            None,
            vec![AppArg::value(5i64)],
            body.clone(),
            tag(2, 99),
        );
        assert_eq!(b.result().unwrap(), Value::Int(5));
        assert_eq!(runs.load(Ordering::SeqCst), 1, "same namespace must dedupe");
        // Different namespace (a different workflow): must re-execute.
        let c = dfk.submit_tagged("t", None, vec![AppArg::value(5i64)], body, tag(3, 100));
        assert_eq!(c.result().unwrap(), Value::Int(5));
        assert_eq!(
            runs.load(Ordering::SeqCst),
            2,
            "foreign namespace must miss"
        );
        dfk.shutdown();
    }

    #[test]
    fn per_run_journals_append_and_replay_independently() {
        let dir = std::env::temp_dir().join(format!("parsl-runckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run7.ckpt");
        let _ = std::fs::remove_file(&path);
        let header = ckpt::Header {
            version: 1,
            run_hash: 77,
            label: "run-7".into(),
        };

        // First daemon incarnation: run 7's completions land in its own
        // journal; an untagged task journals nowhere.
        let dfk = dfk();
        let journal =
            Arc::new(ckpt::Journal::create(&path, &header, ckpt::SyncMode::TaskExit).unwrap());
        dfk.attach_run_journal(7, journal);
        let a = dfk.submit_tagged(
            "a",
            Some("s1"),
            vec![AppArg::value(1i64)],
            add_app(),
            tag(7, 77),
        );
        assert_eq!(a.result().unwrap(), Value::Int(1));
        dfk.submit("plain", vec![AppArg::value(9i64)], add_app())
            .result()
            .unwrap();
        dfk.wait_all();
        let stats = dfk.detach_run_journal(7).unwrap();
        assert_eq!(
            stats,
            CkptStats {
                appended: 1,
                replayed: 0
            }
        );
        dfk.shutdown();
        let loaded = ckpt::load(&path).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.records[0].step.as_deref(), Some("s1"));

        // Restarted daemon: resume run 7's journal, seed, and the same
        // tagged submission replays without executing.
        let dfk = DataFlowKernel::new(Config::local_threads(4));
        let (journal, loaded) = ckpt::Journal::resume(&path, ckpt::SyncMode::TaskExit).unwrap();
        dfk.attach_run_journal(7, Arc::new(journal));
        assert_eq!(dfk.seed_run_checkpoint(7, &loaded.records), (1, 0));
        let body = FnApp::new(|_: &[Value]| -> Result<Value, TaskError> {
            panic!("journaled task must not re-execute")
        });
        let a = dfk.submit_tagged("a", Some("s1"), vec![AppArg::value(1i64)], body, tag(7, 77));
        assert_eq!(a.result().unwrap(), Value::Int(1));
        dfk.wait_all();
        assert_eq!(
            dfk.run_checkpoint_stats(7).unwrap(),
            CkptStats {
                appended: 0,
                replayed: 1
            }
        );
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn htex_config_end_to_end() {
        use crate::htex::HtexConfig;
        use crate::provider::LocalProvider;
        use gridsim::LatencyModel;
        let config = Config::htex(
            HtexConfig {
                label: "htex-test".into(),
                nodes: 2,
                workers_per_node: 2,
                latency: LatencyModel::in_process(),
                ..HtexConfig::default()
            },
            Arc::new(LocalProvider::new(2)),
        );
        let dfk = DataFlowKernel::new(config);
        let futs: Vec<AppFuture> = (0..10)
            .map(|i| dfk.submit("h", vec![AppArg::value(i as i64)], add_app()))
            .collect();
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(f.result().unwrap(), Value::Int(i as i64));
        }
        dfk.shutdown();
    }
}
