//! Elastic scaling strategy — the piece of Parsl that watches the task
//! backlog and grows the executor's allocation (paper §II-B: providers
//! "enable automatic scaling to match the needs of the workflow at
//! runtime").
//!
//! This implements scale-*out*: a monitor thread samples the HTEX backlog
//! and requests an additional pilot-job block whenever outstanding tasks
//! exceed `tasks_per_worker` × current workers, up to `max_nodes`. Nodes
//! are released together at shutdown (Parsl's default idle-timeout
//! scale-in is out of scope and documented as such).

use crate::htex::HighThroughputExecutor;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Strategy tunables.
#[derive(Debug, Clone)]
pub struct ScalingPolicy {
    /// Never grow beyond this many nodes in total.
    pub max_nodes: usize,
    /// Scale out when backlog exceeds this many tasks per worker.
    pub tasks_per_worker: usize,
    /// Nodes requested per scale-out event.
    pub nodes_per_block: usize,
    /// Sampling interval.
    pub interval: Duration,
}

impl Default for ScalingPolicy {
    fn default() -> Self {
        Self {
            max_nodes: 4,
            tasks_per_worker: 4,
            nodes_per_block: 1,
            interval: Duration::from_millis(20),
        }
    }
}

/// Handle to a running strategy thread. Stop it with [`Strategy::stop`]
/// (also stopped on drop).
pub struct Strategy {
    stop: Arc<AtomicBool>,
    scale_outs: Arc<AtomicUsize>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Strategy {
    /// Start monitoring `htex` under `policy`.
    pub fn start(htex: Arc<HighThroughputExecutor>, policy: ScalingPolicy) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let scale_outs = Arc::new(AtomicUsize::new(0));
        let thread = {
            let stop = stop.clone();
            let scale_outs = scale_outs.clone();
            std::thread::Builder::new()
                .name("parsl-strategy".to_string())
                .spawn(move || {
                    use crate::executor::Executor as _;
                    // Sample on the executor's clock so the strategy runs in
                    // virtual time under the simulation harness.
                    let clock = htex.clock();
                    while !stop.load(Ordering::SeqCst) {
                        clock.sleep(policy.interval);
                        let workers = htex.worker_count().max(1);
                        let backlog = htex.outstanding_tasks();
                        if backlog > workers * policy.tasks_per_worker
                            && htex.manager_count() < policy.max_nodes
                        {
                            let want = policy
                                .nodes_per_block
                                .min(policy.max_nodes - htex.manager_count());
                            if want > 0 && htex.add_block(want).is_ok() {
                                scale_outs.fetch_add(1, Ordering::SeqCst);
                                let obs = htex.observability();
                                if obs.is_enabled() {
                                    obs.counter(obs::names::STRATEGY_SCALE_OUTS).incr();
                                }
                            }
                        }
                    }
                })
                .expect("spawn strategy thread")
        };
        Self {
            stop,
            scale_outs,
            thread: Some(thread),
        }
    }

    /// How many scale-out events have fired.
    pub fn scale_out_events(&self) -> usize {
        self.scale_outs.load(Ordering::SeqCst)
    }

    /// Stop the monitor thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Strategy {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, TaskPayload};
    use crate::future::promise_pair;
    use crate::htex::HtexConfig;
    use crate::provider::SlurmProvider;
    use crate::task::TaskId;
    use gridsim::{BatchScheduler, ClusterSpec, LatencyModel, SchedulerConfig};
    use simtest::Clock as _;
    use yamlite::Value;

    #[test]
    fn scales_out_under_backlog() {
        let sched = BatchScheduler::new(ClusterSpec::small(4, 1), SchedulerConfig::immediate());
        let htex = HighThroughputExecutor::start(
            HtexConfig {
                label: "elastic".into(),
                nodes: 1,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                ..HtexConfig::default()
            },
            Arc::new(SlurmProvider::new(sched.clone())),
        )
        .unwrap();
        assert_eq!(htex.manager_count(), 1);

        let mut strategy = Strategy::start(
            htex.clone(),
            ScalingPolicy {
                max_nodes: 3,
                tasks_per_worker: 2,
                nodes_per_block: 1,
                interval: Duration::from_millis(10),
            },
        );

        // Flood with slow tasks: backlog >> workers.
        let mut futs = Vec::new();
        for i in 0..24 {
            let (fut, promise) = promise_pair(TaskId(i));
            htex.submit(TaskPayload {
                id: TaskId(i),
                body: Arc::new(|| {
                    std::thread::sleep(Duration::from_millis(15));
                    Ok(Value::Null)
                }),
                promise,
                ctx: obs::SpanCtx::NONE,
            });
            futs.push(fut);
        }
        for f in &futs {
            f.result().unwrap();
        }
        strategy.stop();
        assert!(
            htex.manager_count() > 1,
            "strategy never scaled out (managers={})",
            htex.manager_count()
        );
        assert!(htex.manager_count() <= 3, "exceeded max_nodes");
        assert!(strategy.scale_out_events() >= 1);
        htex.shutdown();
        assert_eq!(sched.free_node_count(), 4);
    }

    #[test]
    fn does_not_scale_when_idle() {
        // Virtual clock: fifty strategy ticks of idleness elapse in logical
        // time instead of a wall-clock sleep.
        let vc = simtest::VirtualClock::new();
        let sched = BatchScheduler::new(ClusterSpec::small(3, 1), SchedulerConfig::immediate());
        let htex = HighThroughputExecutor::start(
            HtexConfig {
                label: "idle".into(),
                nodes: 1,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                clock: vc.clone(),
                ..HtexConfig::default()
            },
            Arc::new(SlurmProvider::new(sched)),
        )
        .unwrap();
        let mut strategy = Strategy::start(
            htex.clone(),
            ScalingPolicy {
                interval: Duration::from_millis(5),
                ..Default::default()
            },
        );
        assert!(simtest::wait_until(Duration::from_secs(10), || vc.now()
            >= Duration::from_millis(250)));
        strategy.stop();
        assert_eq!(htex.manager_count(), 1);
        assert_eq!(strategy.scale_out_events(), 0);
        htex.shutdown();
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let sched = BatchScheduler::new(ClusterSpec::small(2, 1), SchedulerConfig::immediate());
        let htex = HighThroughputExecutor::start(
            HtexConfig {
                label: "drop".into(),
                nodes: 1,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                ..HtexConfig::default()
            },
            Arc::new(SlurmProvider::new(sched)),
        )
        .unwrap();
        let mut s = Strategy::start(htex.clone(), ScalingPolicy::default());
        s.stop();
        s.stop();
        drop(s);
        htex.shutdown();
    }
}
