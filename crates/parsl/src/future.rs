//! Completion futures, built the way Rust Atomics & Locks builds blocking
//! primitives: a Mutex-guarded state plus a Condvar for waiters, extended
//! with completion callbacks so the dataflow kernel never polls.

use crate::error::TaskError;
use crate::file::File;
use crate::task::TaskId;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};
use yamlite::Value;

/// The outcome a future resolves to.
pub type TaskResult = Result<Value, TaskError>;

type Callback = Box<dyn FnOnce(&TaskResult) + Send>;

struct FutState {
    result: Option<TaskResult>,
    callbacks: Vec<Callback>,
}

struct Shared {
    state: Mutex<FutState>,
    cond: Condvar,
}

/// The future returned when an app is invoked: tracks the asynchronous
/// execution of the app. Cheap to clone; all clones observe the same result.
#[derive(Clone)]
pub struct AppFuture {
    shared: Arc<Shared>,
    id: TaskId,
}

impl std::fmt::Debug for AppFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let done = self.shared.state.lock().result.is_some();
        f.debug_struct("AppFuture")
            .field("id", &self.id)
            .field("done", &done)
            .finish()
    }
}

/// The write side of an [`AppFuture`]. Completing twice is a logic error and
/// is ignored (first completion wins), matching `concurrent.futures`.
/// Cloneable so a task attempt can be raced by several resolvers (e.g. the
/// executor and a walltime watchdog) — whichever completes first wins.
#[derive(Clone)]
pub struct Promise {
    shared: Arc<Shared>,
}

/// Create a connected future/promise pair for task `id`.
pub fn promise_pair(id: TaskId) -> (AppFuture, Promise) {
    let shared = Arc::new(Shared {
        state: Mutex::new(FutState {
            result: None,
            callbacks: Vec::new(),
        }),
        cond: Condvar::new(),
    });
    (
        AppFuture {
            shared: shared.clone(),
            id,
        },
        Promise { shared },
    )
}

impl Promise {
    /// Resolve the future. Callbacks run inline on the completing thread.
    pub fn complete(self, result: TaskResult) {
        let callbacks = {
            let mut st = self.shared.state.lock();
            if st.result.is_some() {
                return; // first completion wins
            }
            st.result = Some(result);
            std::mem::take(&mut st.callbacks)
        };
        self.shared.cond.notify_all();
        let st = self.shared.state.lock();
        let result_ref = st.result.as_ref().expect("just set");
        // Clone out so callbacks run without holding the lock.
        let snapshot = result_ref.clone();
        drop(st);
        for cb in callbacks {
            cb(&snapshot);
        }
    }
}

impl AppFuture {
    /// The task this future tracks.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Whether the result is available.
    pub fn done(&self) -> bool {
        self.shared.state.lock().result.is_some()
    }

    /// Block until the result is available and return it.
    pub fn result(&self) -> TaskResult {
        let mut st = self.shared.state.lock();
        while st.result.is_none() {
            self.shared.cond.wait(&mut st);
        }
        st.result.clone().expect("checked above")
    }

    /// Block up to `timeout`; `None` when the deadline passes first.
    pub fn result_timeout(&self, timeout: Duration) -> Option<TaskResult> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        while st.result.is_none() {
            if self.shared.cond.wait_until(&mut st, deadline).timed_out() {
                return st.result.clone();
            }
        }
        st.result.clone()
    }

    /// Peek without blocking.
    pub fn peek(&self) -> Option<TaskResult> {
        self.shared.state.lock().result.clone()
    }

    /// Register a completion callback. If the future is already complete the
    /// callback runs immediately on the calling thread.
    pub fn on_complete(&self, cb: impl FnOnce(&TaskResult) + Send + 'static) {
        let mut st = self.shared.state.lock();
        if let Some(r) = st.result.clone() {
            drop(st);
            cb(&r);
        } else {
            st.callbacks.push(Box::new(cb));
        }
    }

    /// A future that is already complete (useful for literals and tests).
    pub fn ready(id: TaskId, result: TaskResult) -> Self {
        let (fut, promise) = promise_pair(id);
        promise.complete(result);
        fut
    }
}

/// Wait for all futures to complete (any outcome). Returns their results in
/// order. Equivalent to `concurrent.futures.wait(..., ALL_COMPLETED)`.
pub fn wait_all(futures: &[AppFuture]) -> Vec<TaskResult> {
    futures.iter().map(AppFuture::result).collect()
}

/// A future for a file an app will produce — Parsl's `DataFuture`. It
/// resolves to the [`File`] once the producing task completes.
#[derive(Clone, Debug)]
pub struct DataFuture {
    /// The file that will exist on success.
    file: File,
    /// The producing task's future.
    parent: AppFuture,
}

impl DataFuture {
    /// Track `file` as an output of the task behind `parent`.
    pub fn new(file: File, parent: AppFuture) -> Self {
        Self { file, parent }
    }

    /// The file path this future will materialize (available immediately —
    /// paths are known before execution, like Parsl's `DataFuture.filepath`).
    pub fn filepath(&self) -> &std::path::Path {
        self.file.path()
    }

    /// The file object (path metadata only; may not exist yet).
    pub fn file(&self) -> &File {
        &self.file
    }

    /// The producing task's future.
    pub fn parent(&self) -> &AppFuture {
        &self.parent
    }

    /// Block until the producing task completes; returns the file on
    /// success.
    pub fn result(&self) -> Result<File, TaskError> {
        self.parent.result()?;
        Ok(self.file.clone())
    }

    /// Whether the producing task has completed.
    pub fn done(&self) -> bool {
        self.parent.done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn complete_then_result() {
        let (fut, promise) = promise_pair(TaskId(1));
        assert!(!fut.done());
        promise.complete(Ok(Value::Int(42)));
        assert!(fut.done());
        assert_eq!(fut.result().unwrap(), Value::Int(42));
        assert_eq!(fut.peek().unwrap().unwrap(), Value::Int(42));
    }

    #[test]
    fn result_blocks_until_complete() {
        let (fut, promise) = promise_pair(TaskId(1));
        let f2 = fut.clone();
        let t = std::thread::spawn(move || f2.result());
        std::thread::sleep(Duration::from_millis(20));
        promise.complete(Ok(Value::str("late")));
        assert_eq!(t.join().unwrap().unwrap(), Value::str("late"));
    }

    #[test]
    fn result_timeout_expires() {
        let (fut, _promise) = promise_pair(TaskId(1));
        let t = Instant::now();
        assert!(fut.result_timeout(Duration::from_millis(30)).is_none());
        assert!(t.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn callbacks_fire_on_completion() {
        let (fut, promise) = promise_pair(TaskId(1));
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let hits = hits.clone();
            fut.on_complete(move |r| {
                assert!(r.is_ok());
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        promise.complete(Ok(Value::Null));
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn callback_after_completion_runs_inline() {
        let fut = AppFuture::ready(TaskId(9), Err(TaskError::failed("x")));
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        fut.on_complete(move |r| {
            assert!(r.is_err());
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn double_complete_first_wins() {
        let (fut, p1) = promise_pair(TaskId(1));
        let p2 = Promise {
            shared: p1.shared.clone(),
        };
        p1.complete(Ok(Value::Int(1)));
        p2.complete(Ok(Value::Int(2)));
        assert_eq!(fut.result().unwrap(), Value::Int(1));
    }

    #[test]
    fn many_waiters_all_wake() {
        let (fut, promise) = promise_pair(TaskId(1));
        let mut threads = Vec::new();
        for _ in 0..8 {
            let f = fut.clone();
            threads.push(std::thread::spawn(move || f.result()));
        }
        std::thread::sleep(Duration::from_millis(10));
        promise.complete(Ok(Value::Int(5)));
        for t in threads {
            assert_eq!(t.join().unwrap().unwrap(), Value::Int(5));
        }
    }

    #[test]
    fn wait_all_collects_in_order() {
        let futs: Vec<AppFuture> = (0..4)
            .map(|i| AppFuture::ready(TaskId(i), Ok(Value::Int(i as i64))))
            .collect();
        let results = wait_all(&futs);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.clone().unwrap(), Value::Int(i as i64));
        }
    }

    #[test]
    fn data_future_resolves_with_parent() {
        let (fut, promise) = promise_pair(TaskId(1));
        let df = DataFuture::new(File::new("/tmp/out.rimg"), fut);
        assert_eq!(df.filepath(), std::path::Path::new("/tmp/out.rimg"));
        assert!(!df.done());
        promise.complete(Ok(Value::Null));
        assert_eq!(
            df.result().unwrap().path(),
            std::path::Path::new("/tmp/out.rimg")
        );
    }

    #[test]
    fn data_future_propagates_failure() {
        let fut = AppFuture::ready(TaskId(2), Err(TaskError::failed("producer died")));
        let df = DataFuture::new(File::new("/tmp/x"), fut);
        assert!(df.result().is_err());
    }
}
