//! The HighThroughputExecutor (HTEX) — Parsl's pilot-job executor and the
//! configuration the paper uses for its three-node runs (Fig. 1a).
//!
//! Architecture mirrored from the Python original:
//!
//! ```text
//! submit side          ┊ network ┊           allocated nodes
//! DataFlowKernel ──► interchange queue ──► manager (node01: N workers)
//!                                     ╰──► manager (node02: N workers)
//!                                     ╰──► manager (node03: N workers)
//! ```
//!
//! Nodes come from a [`Provider`] as pilot jobs (paying batch-queue wait);
//! each granted node gets a *manager* with `workers_per_node` worker threads.
//! A dispatcher thread drains the interchange queue and hands tasks to live
//! managers round-robin in **batches** of up to [`HtexConfig::batch_size`]:
//! each batch crosses the submit-side ↔ manager network boundary as one
//! message, so its modelled dispatch latency is paid once per message
//! rather than once per task (the first worker to pick any task of the
//! batch pays; the rest ride along). Results flow back the same way: each
//! manager runs a reply aggregator that flushes completed tasks in batches,
//! paying the result-path latency once per reply message. The latencies are
//! paid **off the submit thread**, so transfers to different managers
//! pipeline exactly as real network messages do. `batch_size: 1` recovers
//! the unbatched one-message-per-task protocol.
//!
//! Fault tolerance, mirrored from Parsl's interchange/manager heartbeats:
//! every manager runs a heartbeat thread; a monitor on the submit side
//! declares a manager dead when its heartbeat goes stale (or when a
//! [`FaultPlan`] kills its node). The dead manager's in-flight tasks are
//! re-queued to surviving managers — task bodies are `Fn`, not `FnOnce`, so
//! a payload can be re-dispatched — and, when the live-node count drops
//! below [`HtexConfig::min_nodes`], a replacement block is provisioned
//! through the provider. If every node is lost and no replacement can be
//! obtained, pending tasks fail with [`TaskError::ExecutorLost`].
//!
//! Elasticity: [`HighThroughputExecutor::add_block`] provisions additional
//! nodes at runtime; [`crate::strategy`] automates this the way Parsl's
//! scaling strategy does.

use crate::error::TaskError;
use crate::executor::{Executor, TaskPayload};
use crate::monitoring::{MonitoringLog, TaskEventKind};
use crate::provider::{NodeHandle, Provider};
use crate::task::TaskId;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gridsim::{FaultPlan, LatencyModel};
use obs::{names, Observability, SpanKind};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// How often idle workers wake to check whether their manager died.
const WORKER_POLL: Duration = Duration::from_millis(10);

/// HTEX configuration.
pub struct HtexConfig {
    /// Executor label.
    pub label: String,
    /// How many nodes to request from the provider at start.
    pub nodes: usize,
    /// Worker threads per node (0 = one per core).
    pub workers_per_node: usize,
    /// Network model between submit side and managers.
    pub latency: LatencyModel,
    /// How often managers heartbeat to the submit side.
    pub heartbeat_period: Duration,
    /// Heartbeat staleness after which a manager is declared dead.
    pub heartbeat_threshold: Duration,
    /// Re-provision replacement blocks to keep at least this many live
    /// nodes (0 = never replace lost nodes).
    pub min_nodes: usize,
    /// Scripted node deaths, for fault-injection experiments.
    pub fault_plan: Option<FaultPlan>,
    /// Maximum tasks per interchange↔manager message. Each message pays
    /// the modelled network latency once, so a batch of `k` tasks costs
    /// one dispatch transfer instead of `k`; result replies are batched
    /// symmetrically. `1` = the unbatched one-message-per-task protocol.
    pub batch_size: usize,
    /// Time source for heartbeats, staleness detection, and modelled
    /// latency sleeps. Defaults to the real clock; the simulation harness
    /// swaps in a [`simtest::VirtualClock`] so heartbeat-loss schedules run
    /// in logical time instead of wall time.
    pub clock: simtest::ClockRef,
}

impl Default for HtexConfig {
    fn default() -> Self {
        Self {
            label: "htex".to_string(),
            nodes: 1,
            workers_per_node: 0,
            latency: LatencyModel::in_process(),
            heartbeat_period: Duration::from_millis(25),
            heartbeat_threshold: Duration::from_millis(250),
            min_nodes: 0,
            fault_plan: None,
            batch_size: 8,
            clock: simtest::real_clock(),
        }
    }
}

impl HtexConfig {
    /// The paper's three-node configuration: all cores on every node.
    pub fn paper_three_node() -> Self {
        Self {
            label: "htex".to_string(),
            nodes: 3,
            workers_per_node: 0,
            latency: LatencyModel::cluster_lan(),
            ..Self::default()
        }
    }
}

enum WorkerMsg {
    Task {
        seq: u64,
        payload: TaskPayload,
        finished: Arc<AtomicBool>,
        /// Shared by every task of one interchange→manager message; the
        /// first worker to claim it pays the message's dispatch latency.
        ticket: Arc<AtomicBool>,
    },
    Stop,
}

enum DispatchMsg {
    Task {
        payload: TaskPayload,
        finished: Arc<AtomicBool>,
    },
    Stop,
}

/// Worker → reply-aggregator traffic on one manager.
enum ResultMsg {
    Done {
        seq: u64,
        payload: TaskPayload,
        finished: Arc<AtomicBool>,
        result: crate::future::TaskResult,
    },
    Stop,
}

/// A dispatched task the executor still owes an answer for. The `finished`
/// flag is shared by every dispatch attempt of the same submission, so
/// exactly one attempt claims completion (and the backlog decrement) even
/// when a spuriously-dead manager raced a re-dispatch.
struct TrackedTask {
    payload: TaskPayload,
    finished: Arc<AtomicBool>,
}

/// Submit-side state for one connected manager (≙ one granted node).
struct ManagerState {
    node_name: String,
    tx: Sender<WorkerMsg>,
    /// Last heartbeat, in ms since the executor started.
    last_beat: AtomicU64,
    /// Set when the node is known dead (fault plan or stale heartbeat).
    dead: AtomicBool,
    /// Set by the monitor once this manager's loss has been processed.
    lost_handled: AtomicBool,
    /// Tasks sent to this manager and not yet completed, keyed by a
    /// dispatch sequence number (task ids may repeat across attempts).
    in_flight: Mutex<HashMap<u64, TrackedTask>>,
    /// Workers hand finished tasks to this manager's reply aggregator,
    /// which completes them in batches (one result-latency per batch).
    result_tx: Sender<ResultMsg>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    heartbeat: Mutex<Option<std::thread::JoinHandle<()>>>,
    aggregator: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Held until shutdown so the pilot job is released exactly once,
    /// whether or not the node died.
    node: Mutex<Option<NodeHandle>>,
    worker_count: usize,
}

/// Decrements a counter on drop — keeps the outstanding-task count exact
/// even if something panics between claiming a task and finishing it.
struct OutstandingGuard<'a>(&'a AtomicUsize);

impl Drop for OutstandingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The pilot-job executor.
pub struct HighThroughputExecutor {
    label: String,
    dispatch_tx: Sender<DispatchMsg>,
    managers: Mutex<Vec<Arc<ManagerState>>>,
    provider: Arc<dyn Provider>,
    worker_total: AtomicUsize,
    workers_per_node: usize,
    latency: LatencyModel,
    fault_plan: Option<FaultPlan>,
    heartbeat_period: Duration,
    heartbeat_threshold: Duration,
    min_nodes: usize,
    /// Maximum tasks per interchange↔manager message (≥ 1).
    batch_size: usize,
    /// Tasks submitted minus tasks finished — used by the scaling strategy.
    outstanding: AtomicUsize,
    next_seq: AtomicU64,
    closed: AtomicBool,
    /// Set when every node is lost and no replacement could be provisioned;
    /// pending tasks then fail with [`TaskError::ExecutorLost`].
    failed: AtomicBool,
    /// Time source for heartbeats and staleness detection — real in
    /// production, virtual under the simulation harness.
    clock: simtest::ClockRef,
    log: Mutex<Option<Arc<MonitoringLog>>>,
    /// The run's observability instance, swapped in by
    /// [`Executor::attach_observability`] after the DFK builds it. Shared
    /// (`Arc<Mutex<..>>`) with worker threads spawned before the attach.
    obs: Arc<Mutex<Arc<Observability>>>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl HighThroughputExecutor {
    /// Provision nodes through `provider` and start managers. Blocks until
    /// the pilot job(s) are granted — like Parsl blocking on first tasks
    /// until workers connect.
    pub fn start(config: HtexConfig, provider: Arc<dyn Provider>) -> Result<Arc<Self>, String> {
        let (dispatch_tx, dispatch_rx) = unbounded::<DispatchMsg>();
        let htex = Arc::new(Self {
            label: config.label,
            dispatch_tx,
            managers: Mutex::new(Vec::new()),
            provider,
            worker_total: AtomicUsize::new(0),
            workers_per_node: config.workers_per_node,
            latency: config.latency,
            fault_plan: config.fault_plan,
            heartbeat_period: config.heartbeat_period,
            heartbeat_threshold: config.heartbeat_threshold,
            min_nodes: config.min_nodes,
            batch_size: config.batch_size.max(1),
            outstanding: AtomicUsize::new(0),
            next_seq: AtomicU64::new(1),
            closed: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            clock: config.clock,
            log: Mutex::new(None),
            obs: Arc::new(Mutex::new(Arc::new(Observability::off()))),
            dispatcher: Mutex::new(None),
            monitor: Mutex::new(None),
        });
        htex.add_block(config.nodes)?;
        let me = Arc::downgrade(&htex);
        *htex.dispatcher.lock() = Some(
            std::thread::Builder::new()
                .name(format!("{}-dispatch", htex.label))
                .spawn(move || dispatcher_loop(dispatch_rx, me))
                .map_err(|e| format!("failed to spawn HTEX dispatcher: {e}"))?,
        );
        let me = Arc::downgrade(&htex);
        *htex.monitor.lock() = Some(
            std::thread::Builder::new()
                .name(format!("{}-monitor", htex.label))
                .spawn(move || monitor_loop(me))
                .map_err(|e| format!("failed to spawn HTEX monitor: {e}"))?,
        );
        Ok(htex)
    }

    /// Provision `nodes` additional nodes and connect their managers.
    /// Returns the number of workers added.
    pub fn add_block(self: &Arc<Self>, nodes: usize) -> Result<usize, String> {
        self.add_block_inner(nodes).map(|(added, _)| added)
    }

    fn add_block_inner(self: &Arc<Self>, nodes: usize) -> Result<(usize, Vec<String>), String> {
        let obs = self.obs.lock().clone();
        // Covers the provider round-trip (batch-queue wait included). An
        // unfinished span from an Err return is simply dropped.
        let provision_span = obs.start_span(SpanKind::BlockProvision, 0, 0, &self.label);
        let granted = self.provider.provision(nodes)?;
        obs.finish_span(provision_span);
        if obs.is_enabled() {
            obs.counter(names::HTEX_BLOCKS_ADDED).incr();
        }
        let mut added = 0usize;
        let mut names = Vec::with_capacity(granted.len());
        let mut new_mgrs = Vec::with_capacity(granted.len());
        for node in granted {
            let per_node = if self.workers_per_node == 0 {
                node.cores()
            } else {
                self.workers_per_node
            };
            let node_name = node.spec.name.clone();
            let (tx, rx) = unbounded::<WorkerMsg>();
            let (result_tx, result_rx) = unbounded::<ResultMsg>();
            let mgr = Arc::new(ManagerState {
                node_name: node_name.clone(),
                tx,
                last_beat: AtomicU64::new(self.clock.now().as_millis() as u64),
                dead: AtomicBool::new(false),
                lost_handled: AtomicBool::new(false),
                in_flight: Mutex::new(HashMap::new()),
                result_tx,
                workers: Mutex::new(Vec::new()),
                heartbeat: Mutex::new(None),
                aggregator: Mutex::new(None),
                node: Mutex::new(Some(node)),
                worker_count: per_node,
            });
            {
                let mut workers = mgr.workers.lock();
                for w in 0..per_node {
                    let rx = rx.clone();
                    let mgr = mgr.clone();
                    let latency = self.latency.clone();
                    let plan = self.fault_plan.clone();
                    let obs = self.obs.clone();
                    let clock = self.clock.clone();
                    workers.push(
                        std::thread::Builder::new()
                            .name(format!("{}-{node_name}-w{w}", self.label))
                            .spawn(move || worker_loop(mgr, rx, latency, plan, obs, clock))
                            .map_err(|e| format!("failed to spawn HTEX worker: {e}"))?,
                    );
                }
            }
            {
                let mgr_for_agg = mgr.clone();
                let latency = self.latency.clone();
                let plan = self.fault_plan.clone();
                let cap = self.batch_size;
                let me = Arc::downgrade(self);
                let clock = self.clock.clone();
                *mgr.aggregator.lock() = Some(
                    std::thread::Builder::new()
                        .name(format!("{}-{node_name}-agg", self.label))
                        .spawn(move || {
                            result_loop(mgr_for_agg, result_rx, latency, plan, cap, me, clock)
                        })
                        .map_err(|e| format!("failed to spawn HTEX aggregator: {e}"))?,
                );
            }
            {
                let mgr_for_beat = mgr.clone();
                let plan = self.fault_plan.clone();
                let period = self.heartbeat_period;
                let me = Arc::downgrade(self);
                let clock = self.clock.clone();
                *mgr.heartbeat.lock() = Some(
                    std::thread::Builder::new()
                        .name(format!("{}-{node_name}-hb", self.label))
                        .spawn(move || heartbeat_loop(mgr_for_beat, period, plan, me, clock))
                        .map_err(|e| format!("failed to spawn HTEX heartbeat: {e}"))?,
                );
            }
            added += per_node;
            names.push(node_name);
            new_mgrs.push(mgr);
        }
        // Register under one lock so a block granted while shutdown was
        // draining the registry is caught here (the provision can sit in the
        // batch queue for a long time; shutdown may well finish first).
        {
            let mut registry = self.managers.lock();
            if !self.closed.load(Ordering::SeqCst) {
                registry.extend(new_mgrs.iter().cloned());
                self.worker_total.fetch_add(added, Ordering::SeqCst);
                return Ok((added, names));
            }
        }
        // Shutdown raced this provisioning: tear the block back down.
        for mgr in &new_mgrs {
            for _ in 0..mgr.worker_count {
                let _ = mgr.tx.send(WorkerMsg::Stop);
            }
        }
        let mut nodes = Vec::with_capacity(new_mgrs.len());
        for mgr in new_mgrs {
            for w in mgr.workers.lock().drain(..) {
                let _ = w.join();
            }
            if let Some(hb) = mgr.heartbeat.lock().take() {
                let _ = hb.join();
            }
            let _ = mgr.result_tx.send(ResultMsg::Stop);
            if let Some(agg) = mgr.aggregator.lock().take() {
                let _ = agg.join();
            }
            if let Some(node) = mgr.node.lock().take() {
                nodes.push(node);
            }
        }
        self.provider.release(nodes);
        Err("executor shut down during provisioning".to_string())
    }

    /// Number of live managers (nodes) currently connected.
    pub fn manager_count(&self) -> usize {
        self.managers
            .lock()
            .iter()
            .filter(|m| !m.dead.load(Ordering::SeqCst))
            .count()
    }

    /// Tasks submitted but not yet finished — the backlog signal the
    /// scaling strategy watches.
    pub fn outstanding_tasks(&self) -> usize {
        self.outstanding.load(Ordering::SeqCst)
    }

    /// Names of nodes the monitor has declared dead.
    pub fn lost_nodes(&self) -> Vec<String> {
        self.managers
            .lock()
            .iter()
            .filter(|m| m.dead.load(Ordering::SeqCst))
            .map(|m| m.node_name.clone())
            .collect()
    }

    fn note(&self, task: TaskId, kind: TaskEventKind, label: &str) {
        if let Some(log) = self.log.lock().as_ref() {
            log.record(task, kind, label);
        }
    }

    /// A manager stopped heartbeating (or its node was killed): re-queue
    /// its in-flight tasks and restore capacity if below the floor.
    fn handle_node_loss(self: &Arc<Self>, mgr: &Arc<ManagerState>) {
        self.note(TaskId(0), TaskEventKind::NodeLost, &mgr.node_name);
        let obs = self.obs.lock().clone();
        // The loss event is node-level (lineage 0); each orphan's
        // Redispatched span parents onto it, linking the task's lineage to
        // the loss that forced the re-queue.
        let loss_span = obs.instant_span(SpanKind::NodeLost, 0, 0, &mgr.node_name);
        self.worker_total
            .fetch_sub(mgr.worker_count, Ordering::SeqCst);
        let orphans: Vec<TrackedTask> = {
            let mut in_flight = mgr.in_flight.lock();
            in_flight.drain().map(|(_, t)| t).collect()
        };
        for t in orphans {
            if t.finished.load(Ordering::SeqCst) {
                continue;
            }
            self.note(t.payload.id, TaskEventKind::Redispatched, &mgr.node_name);
            if obs.is_enabled() {
                obs.instant_span(
                    SpanKind::Redispatched,
                    t.payload.ctx.lineage,
                    loss_span,
                    &mgr.node_name,
                );
                obs.counter(names::HTEX_REDISPATCHES).incr();
            }
            let _ = self.dispatch_tx.send(DispatchMsg::Task {
                payload: t.payload,
                finished: t.finished,
            });
        }
        let alive = self.manager_count();
        if alive < self.min_nodes {
            // Provision the replacement off-thread: the request can wait in
            // the batch queue indefinitely (e.g. no spare node until our own
            // dead allocation is returned), and the monitor must keep
            // scanning — and shutdown must not hang joining it.
            let h = self.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("{}-replace", self.label))
                .spawn(move || match h.add_block_inner(1) {
                    Ok((_, names)) => {
                        for name in names {
                            h.note(TaskId(0), TaskEventKind::BlockReplaced, &name);
                        }
                    }
                    Err(_) => {
                        if h.manager_count() == 0 {
                            h.failed.store(true, Ordering::SeqCst);
                        }
                    }
                });
            if spawned.is_err() && alive == 0 {
                self.failed.store(true, Ordering::SeqCst);
            }
        } else if alive == 0 {
            self.failed.store(true, Ordering::SeqCst);
        }
    }

    /// Complete a task the executor gives up on, claiming it so no other
    /// dispatch attempt double-counts the backlog decrement.
    fn fail_task(&self, payload: &TaskPayload, finished: &AtomicBool, err: TaskError) {
        if !finished.swap(true, Ordering::SeqCst) {
            self.outstanding.fetch_sub(1, Ordering::SeqCst);
            payload.promise.clone().complete(Err(err));
        }
    }
}

/// Round-robin batches of tasks from the interchange queue onto live
/// managers. The dispatcher drains up to `batch_size` ready tasks per
/// manager round-trip, so a burst of submissions becomes a handful of
/// messages instead of one per task; the drained set is split evenly
/// across live managers so batching never serializes a workload that
/// could span nodes. When no manager is alive, waits for the monitor to
/// either provision a replacement or declare the executor failed.
fn dispatcher_loop(rx: Receiver<DispatchMsg>, htex: Weak<HighThroughputExecutor>) {
    let mut rr = 0usize;
    let mut stopping = false;
    while !stopping {
        let mut queue: std::collections::VecDeque<(TaskPayload, Arc<AtomicBool>)> =
            std::collections::VecDeque::new();
        match rx.recv() {
            Ok(DispatchMsg::Task { payload, finished }) => queue.push_back((payload, finished)),
            Ok(DispatchMsg::Stop) | Err(_) => return,
        }
        // Greedily drain whatever has already accumulated, up to one full
        // message per live manager.
        let cap = match htex.upgrade() {
            Some(h) => h.batch_size * h.manager_count().max(1),
            None => 1,
        };
        while queue.len() < cap {
            match rx.try_recv() {
                Ok(DispatchMsg::Task { payload, finished }) => queue.push_back((payload, finished)),
                Ok(DispatchMsg::Stop) => {
                    stopping = true;
                    break;
                }
                Err(_) => break,
            }
        }
        while !queue.is_empty() {
            let Some(h) = htex.upgrade() else {
                for (payload, finished) in queue {
                    if !finished.swap(true, Ordering::SeqCst) {
                        payload.promise.complete(Err(TaskError::Shutdown));
                    }
                }
                return;
            };
            let alive: Vec<Arc<ManagerState>> = h
                .managers
                .lock()
                .iter()
                .filter(|m| !m.dead.load(Ordering::SeqCst))
                .cloned()
                .collect();
            if alive.is_empty() {
                if h.closed.load(Ordering::SeqCst) {
                    for (payload, finished) in queue.drain(..) {
                        h.fail_task(&payload, &finished, TaskError::Shutdown);
                    }
                    break;
                }
                if h.failed.load(Ordering::SeqCst) {
                    for (payload, finished) in queue.drain(..) {
                        h.fail_task(
                            &payload,
                            &finished,
                            TaskError::ExecutorLost(
                                "all nodes lost and no replacement could be provisioned"
                                    .to_string(),
                            ),
                        );
                    }
                    break;
                }
                let clock = h.clock.clone();
                drop(h);
                clock.sleep(Duration::from_millis(2));
                continue;
            }
            rr = rr.wrapping_add(1);
            let mgr = alive[rr % alive.len()].clone();
            // This manager's share of the drained batch: an even split,
            // capped at one message's worth.
            let k = queue.len().div_ceil(alive.len()).min(h.batch_size);
            let chunk: Vec<(TaskPayload, Arc<AtomicBool>)> = queue.drain(..k).collect();
            let obs = h.obs.lock().clone();
            if obs.is_enabled() {
                // Batch occupancy: how full each interchange→manager
                // message actually was.
                obs.histogram(names::HTEX_BATCH_OCCUPANCY)
                    .record(chunk.len() as u64);
                for (payload, _) in &chunk {
                    obs.instant_span(
                        SpanKind::BatchEnqueue,
                        payload.ctx.lineage,
                        payload.ctx.parent,
                        &mgr.node_name,
                    );
                }
            }
            // One shared ticket per message: the first worker to pick any
            // task of this chunk pays the dispatch latency, once.
            let ticket = Arc::new(AtomicBool::new(false));
            let mut seqs = Vec::with_capacity(chunk.len());
            {
                let mut in_flight = mgr.in_flight.lock();
                for (payload, finished) in &chunk {
                    let seq = h.next_seq.fetch_add(1, Ordering::SeqCst);
                    in_flight.insert(
                        seq,
                        TrackedTask {
                            payload: payload.clone(),
                            finished: finished.clone(),
                        },
                    );
                    seqs.push(seq);
                }
            }
            let mut send_failed_at = None;
            for (i, (payload, finished)) in chunk.iter().enumerate() {
                let sent = mgr.tx.send(WorkerMsg::Task {
                    seq: seqs[i],
                    payload: payload.clone(),
                    finished: finished.clone(),
                    ticket: ticket.clone(),
                });
                if sent.is_err() {
                    send_failed_at = Some(i);
                    break;
                }
            }
            if let Some(i) = send_failed_at {
                // Manager channel already gone; reclaim the unsent tail and
                // retry elsewhere.
                let mut in_flight = mgr.in_flight.lock();
                for j in i..chunk.len() {
                    if in_flight.remove(&seqs[j]).is_some() {
                        queue.push_front(chunk[j].clone());
                    }
                }
                continue;
            }
            // If the monitor processed this manager's loss between our
            // liveness check and the inserts, its drain may have missed
            // part of the chunk — reclaim those and dispatch elsewhere
            // (entries already absent were claimed by the drain).
            if mgr.lost_handled.load(Ordering::SeqCst) {
                let mut in_flight = mgr.in_flight.lock();
                for (j, seq) in seqs.iter().enumerate() {
                    if in_flight.remove(seq).is_some() {
                        queue.push_back(chunk[j].clone());
                    }
                }
            }
        }
    }
}

/// One worker slot on a node: pull, (maybe) die per the fault plan, run,
/// hand the result to the manager's reply aggregator.
fn worker_loop(
    mgr: Arc<ManagerState>,
    rx: Receiver<WorkerMsg>,
    latency: LatencyModel,
    plan: Option<FaultPlan>,
    obs: Arc<Mutex<Arc<Observability>>>,
    clock: simtest::ClockRef,
) {
    loop {
        let msg = match rx.recv_timeout(WORKER_POLL) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => {
                if mgr.dead.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let (seq, payload, finished, ticket) = match msg {
            WorkerMsg::Task {
                seq,
                payload,
                finished,
                ticket,
            } => (seq, payload, finished, ticket),
            WorkerMsg::Stop => return,
        };
        if mgr.dead.load(Ordering::SeqCst) {
            // The node died with this task queued; it stays in `in_flight`
            // for the monitor to re-dispatch.
            return;
        }
        if let Some(p) = &plan {
            if p.note_task(&mgr.node_name) {
                // The node just died; the task never ran and stays in
                // flight for re-dispatch.
                mgr.dead.store(true, Ordering::SeqCst);
                return;
            }
        }
        // The whole batch crossed the network as one message: the first
        // worker to pick any of its tasks pays the transfer cost (on the
        // worker, so transfers to different managers overlap); the rest of
        // the batch rides along free.
        if !ticket.swap(true, Ordering::SeqCst) {
            latency.pay_dispatch_on(&*clock);
        }
        let obs = obs.lock().clone();
        let result = if obs.is_enabled() {
            let ctx = payload.ctx;
            obs.instant_span(
                SpanKind::ManagerRecv,
                ctx.lineage,
                ctx.parent,
                &mgr.node_name,
            );
            let span = obs.start_span(
                SpanKind::WorkerExec,
                ctx.lineage,
                ctx.parent,
                &mgr.node_name,
            );
            let t0 = obs.now_us();
            let result = crate::executor::run_isolated(&payload.body);
            obs.histogram(names::TASK_EXEC_US)
                .record(obs.now_us().saturating_sub(t0));
            obs.finish_span(span);
            result
        } else {
            crate::executor::run_isolated(&payload.body)
        };
        if plan.as_ref().is_some_and(|p| p.is_dead(&mgr.node_name)) {
            // The node died while the task ran: the result dies with it and
            // the task stays in flight for re-dispatch.
            mgr.dead.store(true, Ordering::SeqCst);
            return;
        }
        // Completion claiming, backlog accounting, and the (batched)
        // result-path latency all happen on the aggregator.
        let _ = mgr.result_tx.send(ResultMsg::Done {
            seq,
            payload,
            finished,
            result,
        });
    }
}

/// One manager's reply aggregator: collects finished tasks from the node's
/// workers and flushes them to the submit side in batches, paying the
/// modelled result-path latency once per reply message instead of once per
/// task. Keeps PR-level fault semantics: a result from a plan-dead node is
/// dropped un-claimed, so its task stays in flight for re-dispatch.
fn result_loop(
    mgr: Arc<ManagerState>,
    rx: Receiver<ResultMsg>,
    latency: LatencyModel,
    plan: Option<FaultPlan>,
    batch_size: usize,
    htex: Weak<HighThroughputExecutor>,
    clock: simtest::ClockRef,
) {
    let mut stop = false;
    while !stop {
        let mut batch: Vec<(u64, TaskPayload, Arc<AtomicBool>, crate::future::TaskResult)> =
            Vec::new();
        match rx.recv_timeout(WORKER_POLL) {
            Ok(ResultMsg::Done {
                seq,
                payload,
                finished,
                result,
            }) => batch.push((seq, payload, finished, result)),
            Ok(ResultMsg::Stop) => stop = true,
            Err(RecvTimeoutError::Timeout) => {
                if !mgr.dead.load(Ordering::SeqCst) {
                    continue;
                }
                // Dead manager: flush what the workers already produced
                // (spurious deaths still deliver), then exit.
                stop = true;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
        loop {
            while batch.len() < batch_size {
                match rx.try_recv() {
                    Ok(ResultMsg::Done {
                        seq,
                        payload,
                        finished,
                        result,
                    }) => batch.push((seq, payload, finished, result)),
                    Ok(ResultMsg::Stop) => {
                        stop = true;
                        break;
                    }
                    Err(_) => break,
                }
            }
            if batch.is_empty() {
                break;
            }
            flush_results(
                &mgr,
                &latency,
                &plan,
                &htex,
                &clock,
                std::mem::take(&mut batch),
            );
            if !stop {
                break;
            }
            // Stopping: keep flushing in message-sized batches until the
            // queue is dry.
        }
    }
}

/// Deliver one reply message's worth of results.
fn flush_results(
    mgr: &ManagerState,
    latency: &LatencyModel,
    plan: &Option<FaultPlan>,
    htex: &Weak<HighThroughputExecutor>,
    clock: &simtest::ClockRef,
    batch: Vec<(u64, TaskPayload, Arc<AtomicBool>, crate::future::TaskResult)>,
) {
    if plan.as_ref().is_some_and(|p| p.is_dead(&mgr.node_name)) {
        // The node died before this reply left it: the results die with it
        // and the tasks stay in flight for the monitor to re-dispatch.
        mgr.dead.store(true, Ordering::SeqCst);
        return;
    }
    let mut completions = Vec::with_capacity(batch.len());
    {
        let mut in_flight = mgr.in_flight.lock();
        for (seq, payload, finished, result) in batch {
            in_flight.remove(&seq);
            if finished.swap(true, Ordering::SeqCst) {
                // Another dispatch attempt of the same submission already
                // completed it (we were spuriously declared dead); discard.
                continue;
            }
            completions.push((payload, result));
        }
    }
    if completions.is_empty() {
        return;
    }
    {
        // Decrement the backlog BEFORE resolving the promises — and via
        // drop guards, so nothing on this path can leak the counter —
        // because `wait_all` callers may observe a completion and
        // immediately read `outstanding_tasks()`.
        let h = htex.upgrade();
        let _outstanding: Vec<OutstandingGuard> = h
            .as_ref()
            .map(|h| {
                completions
                    .iter()
                    .map(|_| OutstandingGuard(&h.outstanding))
                    .collect()
            })
            .unwrap_or_default();
        // One reply message for the whole batch.
        latency.pay_result_on(&**clock);
    }
    if let Some(h) = htex.upgrade() {
        let obs = h.obs.lock().clone();
        if obs.is_enabled() {
            for (payload, _) in &completions {
                obs.instant_span(
                    SpanKind::ResultReturn,
                    payload.ctx.lineage,
                    payload.ctx.parent,
                    &mgr.node_name,
                );
            }
        }
    }
    for (payload, result) in completions {
        // A panicking completion callback must not take the aggregator
        // down (the counter is already settled above).
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            payload.promise.complete(result)
        }));
    }
}

/// Periodically refresh this manager's heartbeat. A dead node stops
/// beating — detection is the monitor's job, as with real HTEX managers.
fn heartbeat_loop(
    mgr: Arc<ManagerState>,
    period: Duration,
    plan: Option<FaultPlan>,
    htex: Weak<HighThroughputExecutor>,
    clock: simtest::ClockRef,
) {
    loop {
        clock.sleep(period);
        let Some(h) = htex.upgrade() else { return };
        if h.closed.load(Ordering::SeqCst) || mgr.dead.load(Ordering::SeqCst) {
            return;
        }
        if plan.as_ref().is_some_and(|p| p.is_dead(&mgr.node_name)) {
            return;
        }
        mgr.last_beat
            .store(clock.now().as_millis() as u64, Ordering::SeqCst);
    }
}

/// Submit-side failure detector: declare managers with stale heartbeats
/// dead and process each loss exactly once.
fn monitor_loop(htex: Weak<HighThroughputExecutor>) {
    loop {
        let Some(h) = htex.upgrade() else { return };
        if h.closed.load(Ordering::SeqCst) {
            return;
        }
        let period = h.heartbeat_period;
        let threshold_ms = h.heartbeat_threshold.as_millis() as u64;
        let clock = h.clock.clone();
        let now_ms = clock.now().as_millis() as u64;
        let managers: Vec<Arc<ManagerState>> = h.managers.lock().clone();
        for mgr in &managers {
            if !mgr.dead.load(Ordering::SeqCst)
                && now_ms.saturating_sub(mgr.last_beat.load(Ordering::SeqCst)) > threshold_ms
            {
                mgr.dead.store(true, Ordering::SeqCst);
                let obs = h.obs.lock().clone();
                if obs.is_enabled() {
                    obs.counter(names::HTEX_HEARTBEAT_MISSES).incr();
                }
            }
            if mgr.dead.load(Ordering::SeqCst) && !mgr.lost_handled.swap(true, Ordering::SeqCst) {
                h.handle_node_loss(mgr);
            }
        }
        drop(h);
        clock.sleep(period);
    }
}

impl Executor for HighThroughputExecutor {
    fn submit(&self, task: TaskPayload) {
        if self.closed.load(Ordering::SeqCst) {
            // Fail fast instead of enqueueing onto a stopped dispatcher —
            // the promise must never be left unresolved.
            task.promise.complete(Err(TaskError::Shutdown));
            return;
        }
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        let finished = Arc::new(AtomicBool::new(false));
        if let Err(send_err) = self.dispatch_tx.send(DispatchMsg::Task {
            payload: task,
            finished,
        }) {
            if let DispatchMsg::Task { payload, finished } = send_err.0 {
                self.fail_task(&payload, &finished, TaskError::Shutdown);
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn worker_count(&self) -> usize {
        self.worker_total.load(Ordering::SeqCst)
    }

    fn shutdown(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = self.dispatch_tx.send(DispatchMsg::Stop);
        if let Some(d) = self.dispatcher.lock().take() {
            let _ = d.join();
        }
        if let Some(m) = self.monitor.lock().take() {
            let _ = m.join();
        }
        let managers: Vec<Arc<ManagerState>> = {
            let mut lock = self.managers.lock();
            lock.drain(..).collect()
        };
        for mgr in &managers {
            for _ in 0..mgr.worker_count {
                let _ = mgr.tx.send(WorkerMsg::Stop);
            }
        }
        let mut nodes = Vec::with_capacity(managers.len());
        for mgr in &managers {
            for w in mgr.workers.lock().drain(..) {
                let _ = w.join();
            }
            if let Some(hb) = mgr.heartbeat.lock().take() {
                let _ = hb.join();
            }
            // Workers are joined, so no more results are coming: stop the
            // aggregator after it drains and delivers what they produced.
            let _ = mgr.result_tx.send(ResultMsg::Stop);
            if let Some(agg) = mgr.aggregator.lock().take() {
                let _ = agg.join();
            }
            // Whatever never ran (queued on a dead or stopping manager)
            // must still resolve.
            for (_, t) in mgr.in_flight.lock().drain() {
                self.fail_task(&t.payload, &t.finished, TaskError::Shutdown);
            }
            // Dead managers' pilot jobs are released too — the provider
            // dedups by job, so sharing a job with live nodes is fine.
            if let Some(node) = mgr.node.lock().take() {
                nodes.push(node);
            }
        }
        self.provider.release(nodes);
    }

    fn attach_monitoring(&self, log: Arc<MonitoringLog>) {
        *self.log.lock() = Some(log);
    }

    fn attach_observability(&self, obs: Arc<Observability>) {
        *self.obs.lock() = obs;
    }
}

impl HighThroughputExecutor {
    /// The observability instance currently attached (a disabled stand-in
    /// until the DFK attaches the run's own).
    pub fn observability(&self) -> Arc<Observability> {
        self.obs.lock().clone()
    }

    /// The executor's time source (real or virtual) — shared with the
    /// scaling strategy so its polling interval runs on the same clock.
    pub fn clock(&self) -> simtest::ClockRef {
        self.clock.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::promise_pair;
    use crate::provider::{LocalProvider, SlurmProvider};
    use gridsim::{BatchScheduler, ClusterSpec, SchedulerConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use yamlite::Value;

    fn no_latency(label: &str, nodes: usize, wpn: usize) -> HtexConfig {
        HtexConfig {
            label: label.to_string(),
            nodes,
            workers_per_node: wpn,
            latency: LatencyModel::in_process(),
            ..HtexConfig::default()
        }
    }

    fn submit_value(htex: &HighThroughputExecutor, i: u64) -> crate::future::AppFuture {
        let (fut, promise) = promise_pair(TaskId(i));
        htex.submit(TaskPayload {
            id: TaskId(i),
            body: Arc::new(move || Ok(Value::Int(i as i64))),
            promise,
            ctx: obs::SpanCtx::NONE,
        });
        fut
    }

    #[test]
    fn runs_tasks_across_nodes() {
        let htex = HighThroughputExecutor::start(
            no_latency("htex", 3, 2),
            Arc::new(LocalProvider::new(2)),
        )
        .unwrap();
        assert_eq!(htex.manager_count(), 3);
        assert_eq!(htex.worker_count(), 6);
        let futs: Vec<_> = (0..12).map(|i| submit_value(&htex, i)).collect();
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(f.result().unwrap(), Value::Int(i as i64));
        }
        assert_eq!(htex.outstanding_tasks(), 0);
        htex.shutdown();
    }

    #[test]
    fn workers_per_node_zero_uses_cores() {
        let htex = HighThroughputExecutor::start(
            no_latency("htex", 2, 0),
            Arc::new(LocalProvider::new(3)),
        )
        .unwrap();
        assert_eq!(htex.worker_count(), 6);
        htex.shutdown();
    }

    #[test]
    fn add_block_scales_out() {
        let sched = BatchScheduler::new(ClusterSpec::small(4, 2), SchedulerConfig::immediate());
        let provider = Arc::new(SlurmProvider::new(sched.clone()));
        let htex = HighThroughputExecutor::start(no_latency("htex", 1, 2), provider).unwrap();
        assert_eq!(htex.worker_count(), 2);
        assert_eq!(sched.free_node_count(), 3);
        let added = htex.add_block(2).unwrap();
        assert_eq!(added, 4);
        assert_eq!(htex.worker_count(), 6);
        assert_eq!(htex.manager_count(), 3);
        assert_eq!(sched.free_node_count(), 1);
        // New workers actually execute tasks.
        let fut = submit_value(&htex, 1);
        fut.result().unwrap();
        htex.shutdown();
        assert_eq!(sched.free_node_count(), 4);
    }

    #[test]
    fn slurm_nodes_released_on_shutdown() {
        let sched = BatchScheduler::new(ClusterSpec::small(3, 2), SchedulerConfig::immediate());
        let provider = Arc::new(SlurmProvider::new(sched.clone()));
        let htex = HighThroughputExecutor::start(no_latency("htex", 2, 1), provider).unwrap();
        assert_eq!(sched.free_node_count(), 1);
        let fut = submit_value(&htex, 1);
        fut.result().unwrap();
        htex.shutdown();
        assert_eq!(sched.free_node_count(), 3);
    }

    #[test]
    fn parallelism_spans_managers() {
        let htex = HighThroughputExecutor::start(
            no_latency("htex", 2, 2),
            Arc::new(LocalProvider::new(2)),
        )
        .unwrap();
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut futs = Vec::new();
        for i in 0..8 {
            let (fut, promise) = promise_pair(TaskId(i));
            let running = running.clone();
            let peak = peak.clone();
            htex.submit(TaskPayload {
                id: TaskId(i),
                body: Arc::new(move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(25));
                    running.fetch_sub(1, Ordering::SeqCst);
                    Ok(Value::Null)
                }),
                promise,
                ctx: obs::SpanCtx::NONE,
            });
            futs.push(fut);
        }
        for f in &futs {
            f.result().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) >= 3, "peak {peak:?}");
        htex.shutdown();
    }

    #[test]
    fn oversubscribed_provider_fails_start() {
        let sched = BatchScheduler::new(ClusterSpec::small(2, 2), SchedulerConfig::immediate());
        let provider = Arc::new(SlurmProvider::new(sched));
        assert!(HighThroughputExecutor::start(no_latency("htex", 5, 1), provider).is_err());
    }

    #[test]
    fn outstanding_counts_backlog() {
        let htex = HighThroughputExecutor::start(
            no_latency("htex", 1, 1),
            Arc::new(LocalProvider::new(1)),
        )
        .unwrap();
        let gate = Arc::new(parking_lot::Mutex::new(()));
        let held = gate.lock();
        let mut futs = Vec::new();
        for i in 0..4 {
            let (fut, promise) = promise_pair(TaskId(i));
            let gate = gate.clone();
            htex.submit(TaskPayload {
                id: TaskId(i),
                body: Arc::new(move || {
                    let _g = gate.lock();
                    Ok(Value::Null)
                }),
                promise,
                ctx: obs::SpanCtx::NONE,
            });
            futs.push(fut);
        }
        assert!(
            simtest::wait_until(Duration::from_secs(5), || htex.outstanding_tasks() >= 3),
            "{}",
            htex.outstanding_tasks()
        );
        drop(held);
        for f in &futs {
            f.result().unwrap();
        }
        assert_eq!(htex.outstanding_tasks(), 0);
        htex.shutdown();
    }

    #[test]
    fn submit_after_shutdown_fails_fast() {
        let htex = HighThroughputExecutor::start(
            no_latency("htex", 1, 1),
            Arc::new(LocalProvider::new(1)),
        )
        .unwrap();
        htex.shutdown();
        let (fut, promise) = promise_pair(TaskId(1));
        htex.submit(TaskPayload {
            id: TaskId(1),
            body: Arc::new(|| Ok(Value::Int(1))),
            promise,
            ctx: obs::SpanCtx::NONE,
        });
        match fut.result_timeout(Duration::from_secs(2)) {
            Some(Err(TaskError::Shutdown)) => {}
            other => panic!("expected fast Shutdown error, got {other:?}"),
        }
    }

    #[test]
    fn node_kill_redispatches_in_flight_tasks() {
        // Two single-worker nodes; localhost/0 dies after executing one
        // task, stranding whatever was queued or running on it.
        let plan = FaultPlan::new().kill_after_tasks("localhost/0", 1);
        let log = Arc::new(MonitoringLog::new());
        let htex = HighThroughputExecutor::start(
            HtexConfig {
                label: "htex".to_string(),
                nodes: 2,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                fault_plan: Some(plan.clone()),
                ..HtexConfig::default()
            },
            Arc::new(LocalProvider::new(1)),
        )
        .unwrap();
        htex.attach_monitoring(log.clone());
        let futs: Vec<_> = (1..=10).map(|i| submit_value(&htex, i)).collect();
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(
                f.result_timeout(Duration::from_secs(10))
                    .expect("task hung after node kill")
                    .unwrap(),
                Value::Int(i as i64 + 1)
            );
        }
        assert!(plan.is_dead("localhost/0"));
        // The monitor notices the death within a heartbeat or two.
        assert!(simtest::wait_until(Duration::from_secs(5), || htex
            .manager_count()
            == 1));
        assert_eq!(htex.manager_count(), 1);
        assert_eq!(htex.lost_nodes(), vec!["localhost/0".to_string()]);
        let summary = log.summary();
        assert_eq!(summary.node_lost, 1);
        assert_eq!(htex.outstanding_tasks(), 0);
        htex.shutdown();
    }

    #[test]
    fn silent_node_detected_by_stale_heartbeat() {
        // kill_now stops the heartbeat without any task arriving: only the
        // staleness threshold can detect this death.
        let plan = FaultPlan::new().kill_now("localhost/1");
        let log = Arc::new(MonitoringLog::new());
        let htex = HighThroughputExecutor::start(
            HtexConfig {
                label: "htex".to_string(),
                nodes: 2,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                fault_plan: Some(plan),
                heartbeat_period: Duration::from_millis(10),
                heartbeat_threshold: Duration::from_millis(100),
                ..HtexConfig::default()
            },
            Arc::new(LocalProvider::new(1)),
        )
        .unwrap();
        htex.attach_monitoring(log.clone());
        assert!(simtest::wait_until(Duration::from_secs(5), || htex
            .manager_count()
            == 1));
        assert_eq!(htex.manager_count(), 1);
        assert_eq!(log.summary().node_lost, 1);
        // The surviving node still executes work.
        let fut = submit_value(&htex, 1);
        assert_eq!(
            fut.result_timeout(Duration::from_secs(5)).unwrap().unwrap(),
            Value::Int(1)
        );
        htex.shutdown();
    }

    #[test]
    fn min_nodes_floor_replaces_lost_block() {
        // 3-node cluster, HTEX holds 2 with a floor of 2; when node01 dies
        // a replacement block must be provisioned from the spare node.
        let sched = BatchScheduler::new(ClusterSpec::small(3, 1), SchedulerConfig::immediate());
        let provider = Arc::new(SlurmProvider::new(sched.clone()));
        let plan = FaultPlan::new().kill_after_tasks("node01", 1);
        let log = Arc::new(MonitoringLog::new());
        let htex = HighThroughputExecutor::start(
            HtexConfig {
                label: "htex".to_string(),
                nodes: 2,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                fault_plan: Some(plan),
                min_nodes: 2,
                ..HtexConfig::default()
            },
            provider,
        )
        .unwrap();
        htex.attach_monitoring(log.clone());
        let futs: Vec<_> = (1..=8).map(|i| submit_value(&htex, i)).collect();
        for f in &futs {
            f.result_timeout(Duration::from_secs(10))
                .expect("task hung")
                .unwrap();
        }
        log.wait_for_events(Duration::from_secs(5), |events| {
            crate::monitoring::TaskSummary::from_events(events).blocks_replaced > 0
        });
        let summary = log.summary();
        assert_eq!(summary.node_lost, 1);
        assert_eq!(summary.blocks_replaced, 1);
        assert_eq!(htex.manager_count(), 2);
        htex.shutdown();
        // Both the dead node's pilot job and the live ones are released.
        assert_eq!(sched.free_node_count(), 3);
    }

    #[test]
    fn replacement_starved_of_nodes_does_not_hang_shutdown() {
        // 2-node cluster fully held by the executor with a floor of 2: when
        // node01 dies there is no spare node, so the replacement request
        // waits in the batch queue indefinitely. Tasks must still finish on
        // the survivor and shutdown must return promptly — the monitor must
        // never be the thread blocked on provisioning.
        let sched = BatchScheduler::new(ClusterSpec::small(2, 1), SchedulerConfig::immediate());
        let provider = Arc::new(SlurmProvider::new(sched.clone()));
        let plan = FaultPlan::new().kill_after_tasks("node01", 1);
        let htex = HighThroughputExecutor::start(
            HtexConfig {
                label: "htex".to_string(),
                nodes: 2,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                fault_plan: Some(plan),
                min_nodes: 2,
                ..HtexConfig::default()
            },
            provider,
        )
        .unwrap();
        let futs: Vec<_> = (1..=8).map(|i| submit_value(&htex, i)).collect();
        for f in &futs {
            f.result_timeout(Duration::from_secs(10))
                .expect("task hung")
                .unwrap();
        }
        let started = std::time::Instant::now();
        htex.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown stalled behind the starved replacement request"
        );
        // Both allocations come back; if the queued replacement was granted
        // after shutdown, the closed executor tears it down again.
        assert!(simtest::wait_until(Duration::from_secs(5), || sched
            .free_node_count()
            == 2));
        assert_eq!(sched.free_node_count(), 2);
    }

    #[test]
    fn all_nodes_lost_fails_pending_tasks() {
        // One node, no replacement floor: losing it must fail pending
        // tasks with ExecutorLost rather than hanging them.
        let plan = FaultPlan::new().kill_after_tasks("localhost/0", 0);
        let htex = HighThroughputExecutor::start(
            HtexConfig {
                label: "htex".to_string(),
                nodes: 1,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                fault_plan: Some(plan),
                ..HtexConfig::default()
            },
            Arc::new(LocalProvider::new(1)),
        )
        .unwrap();
        let fut = submit_value(&htex, 1);
        match fut.result_timeout(Duration::from_secs(10)) {
            Some(Err(TaskError::ExecutorLost(_))) => {}
            other => panic!("expected ExecutorLost, got {other:?}"),
        }
        assert_eq!(htex.outstanding_tasks(), 0);
        htex.shutdown();
    }
}
