//! The HighThroughputExecutor (HTEX) — Parsl's pilot-job executor and the
//! configuration the paper uses for its three-node runs (Fig. 1a).
//!
//! Architecture mirrored from the Python original:
//!
//! ```text
//! submit side          ┊ network ┊           allocated nodes
//! DataFlowKernel ──► interchange queue ──► manager (node01: N workers)
//!                                     ╰──► manager (node02: N workers)
//!                                     ╰──► manager (node03: N workers)
//! ```
//!
//! Nodes come from a [`Provider`] as pilot jobs (paying batch-queue wait);
//! each granted node gets a *manager* with `workers_per_node` worker threads.
//! Workers pull from a shared interchange queue (ideal load balancing, which
//! HTEX approximates in practice) and pay a modelled per-task dispatch
//! latency — the cost of crossing the submit-side ↔ manager network
//! boundary. The latency is paid **on the worker**, so dispatches pipeline
//! exactly as real network transfers do.
//!
//! Elasticity: [`HighThroughputExecutor::add_block`] provisions additional
//! nodes at runtime; [`crate::strategy`] automates this the way Parsl's
//! scaling strategy does.

use crate::executor::{Executor, TaskPayload};
use crate::provider::{NodeHandle, Provider};
use crossbeam::channel::{unbounded, Receiver, Sender};
use gridsim::LatencyModel;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// HTEX configuration.
pub struct HtexConfig {
    /// Executor label.
    pub label: String,
    /// How many nodes to request from the provider at start.
    pub nodes: usize,
    /// Worker threads per node (0 = one per core).
    pub workers_per_node: usize,
    /// Network model between submit side and managers.
    pub latency: LatencyModel,
}

impl HtexConfig {
    /// The paper's three-node configuration: all cores on every node.
    pub fn paper_three_node() -> Self {
        Self {
            label: "htex".to_string(),
            nodes: 3,
            workers_per_node: 0,
            latency: LatencyModel::cluster_lan(),
        }
    }
}

enum Msg {
    Task(TaskPayload),
    Stop,
}

struct ManagerInfo {
    node: NodeHandle,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// The pilot-job executor.
pub struct HighThroughputExecutor {
    label: String,
    tx: Sender<Msg>,
    rx: Receiver<Msg>,
    managers: Mutex<Vec<ManagerInfo>>,
    provider: Arc<dyn Provider>,
    worker_total: AtomicUsize,
    workers_per_node: usize,
    latency: LatencyModel,
    /// Tasks submitted minus tasks picked up — used by the scaling strategy.
    outstanding: AtomicUsize,
}

impl HighThroughputExecutor {
    /// Provision nodes through `provider` and start managers. Blocks until
    /// the pilot job(s) are granted — like Parsl blocking on first tasks
    /// until workers connect.
    pub fn start(
        config: HtexConfig,
        provider: Arc<dyn Provider>,
    ) -> Result<Arc<Self>, String> {
        let (tx, rx) = unbounded::<Msg>();
        let htex = Arc::new(Self {
            label: config.label,
            tx,
            rx,
            managers: Mutex::new(Vec::new()),
            provider,
            worker_total: AtomicUsize::new(0),
            workers_per_node: config.workers_per_node,
            latency: config.latency,
            outstanding: AtomicUsize::new(0),
        });
        htex.add_block(config.nodes)?;
        Ok(htex)
    }

    /// Provision `nodes` additional nodes and connect their managers.
    /// Returns the number of workers added.
    pub fn add_block(self: &Arc<Self>, nodes: usize) -> Result<usize, String> {
        let granted = self.provider.provision(nodes)?;
        let mut added = 0usize;
        let mut managers = self.managers.lock();
        for node in granted {
            let per_node = if self.workers_per_node == 0 {
                node.cores()
            } else {
                self.workers_per_node
            };
            let mut workers = Vec::with_capacity(per_node);
            for w in 0..per_node {
                let rx = self.rx.clone();
                let latency = self.latency.clone();
                let name = format!("{}-{}-w{w}", self.label, node.spec.name);
                let me = Arc::downgrade(self);
                workers.push(
                    std::thread::Builder::new()
                        .name(name)
                        .spawn(move || worker_loop(rx, latency, me))
                        .map_err(|e| format!("failed to spawn HTEX worker: {e}"))?,
                );
            }
            added += per_node;
            managers.push(ManagerInfo { node, workers });
        }
        self.worker_total.fetch_add(added, Ordering::SeqCst);
        Ok(added)
    }

    /// Number of managers (nodes) currently connected.
    pub fn manager_count(&self) -> usize {
        self.managers.lock().len()
    }

    /// Tasks submitted but not yet finished — the backlog signal the
    /// scaling strategy watches.
    pub fn outstanding_tasks(&self) -> usize {
        self.outstanding.load(Ordering::SeqCst)
    }
}

fn worker_loop(
    rx: Receiver<Msg>,
    latency: LatencyModel,
    htex: std::sync::Weak<HighThroughputExecutor>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Task(task) => {
                // Pay the network dispatch cost on the worker so transfers
                // to different workers overlap (pipelined dispatch).
                latency.pay_dispatch();
                let promise = task.promise;
                let body = task.body;
                let result = crate::executor::run_isolated(body);
                latency.pay_result();
                promise.complete(result);
                if let Some(h) = htex.upgrade() {
                    h.outstanding.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Msg::Stop => break,
        }
    }
}

impl Executor for HighThroughputExecutor {
    fn submit(&self, task: TaskPayload) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        let _ = self.tx.send(Msg::Task(task));
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn worker_count(&self) -> usize {
        self.worker_total.load(Ordering::SeqCst)
    }

    fn shutdown(&self) {
        let total = self.worker_total.load(Ordering::SeqCst);
        for _ in 0..total {
            let _ = self.tx.send(Msg::Stop);
        }
        let mut managers = self.managers.lock();
        let mut nodes = Vec::with_capacity(managers.len());
        for mut m in managers.drain(..) {
            for w in m.workers.drain(..) {
                let _ = w.join();
            }
            nodes.push(m.node);
        }
        self.provider.release(nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::promise_pair;
    use crate::provider::{LocalProvider, SlurmProvider};
    use crate::task::TaskId;
    use gridsim::{BatchScheduler, ClusterSpec, SchedulerConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;
    use yamlite::Value;

    fn no_latency(label: &str, nodes: usize, wpn: usize) -> HtexConfig {
        HtexConfig {
            label: label.to_string(),
            nodes,
            workers_per_node: wpn,
            latency: LatencyModel::in_process(),
        }
    }

    #[test]
    fn runs_tasks_across_nodes() {
        let htex = HighThroughputExecutor::start(
            no_latency("htex", 3, 2),
            Arc::new(LocalProvider::new(2)),
        )
        .unwrap();
        assert_eq!(htex.manager_count(), 3);
        assert_eq!(htex.worker_count(), 6);
        let mut futs = Vec::new();
        for i in 0..12 {
            let (fut, promise) = promise_pair(TaskId(i));
            htex.submit(TaskPayload {
                id: TaskId(i),
                body: Box::new(move || Ok(Value::Int(i as i64))),
                promise,
            });
            futs.push(fut);
        }
        for (i, f) in futs.iter().enumerate() {
            assert_eq!(f.result().unwrap(), Value::Int(i as i64));
        }
        assert_eq!(htex.outstanding_tasks(), 0);
        htex.shutdown();
    }

    #[test]
    fn workers_per_node_zero_uses_cores() {
        let htex = HighThroughputExecutor::start(
            no_latency("htex", 2, 0),
            Arc::new(LocalProvider::new(3)),
        )
        .unwrap();
        assert_eq!(htex.worker_count(), 6);
        htex.shutdown();
    }

    #[test]
    fn add_block_scales_out() {
        let sched = BatchScheduler::new(ClusterSpec::small(4, 2), SchedulerConfig::immediate());
        let provider = Arc::new(SlurmProvider::new(sched.clone()));
        let htex = HighThroughputExecutor::start(no_latency("htex", 1, 2), provider).unwrap();
        assert_eq!(htex.worker_count(), 2);
        assert_eq!(sched.free_node_count(), 3);
        let added = htex.add_block(2).unwrap();
        assert_eq!(added, 4);
        assert_eq!(htex.worker_count(), 6);
        assert_eq!(htex.manager_count(), 3);
        assert_eq!(sched.free_node_count(), 1);
        // New workers actually execute tasks.
        let (fut, promise) = promise_pair(TaskId(1));
        htex.submit(TaskPayload {
            id: TaskId(1),
            body: Box::new(|| Ok(Value::Null)),
            promise,
        });
        fut.result().unwrap();
        htex.shutdown();
        assert_eq!(sched.free_node_count(), 4);
    }

    #[test]
    fn slurm_nodes_released_on_shutdown() {
        let sched = BatchScheduler::new(ClusterSpec::small(3, 2), SchedulerConfig::immediate());
        let provider = Arc::new(SlurmProvider::new(sched.clone()));
        let htex =
            HighThroughputExecutor::start(no_latency("htex", 2, 1), provider).unwrap();
        assert_eq!(sched.free_node_count(), 1);
        let (fut, promise) = promise_pair(TaskId(1));
        htex.submit(TaskPayload {
            id: TaskId(1),
            body: Box::new(|| Ok(Value::Null)),
            promise,
        });
        fut.result().unwrap();
        htex.shutdown();
        assert_eq!(sched.free_node_count(), 3);
    }

    #[test]
    fn parallelism_spans_managers() {
        let htex = HighThroughputExecutor::start(
            no_latency("htex", 2, 2),
            Arc::new(LocalProvider::new(2)),
        )
        .unwrap();
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut futs = Vec::new();
        for i in 0..8 {
            let (fut, promise) = promise_pair(TaskId(i));
            let running = running.clone();
            let peak = peak.clone();
            htex.submit(TaskPayload {
                id: TaskId(i),
                body: Box::new(move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(25));
                    running.fetch_sub(1, Ordering::SeqCst);
                    Ok(Value::Null)
                }),
                promise,
            });
            futs.push(fut);
        }
        for f in &futs {
            f.result().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) >= 3, "peak {peak:?}");
        htex.shutdown();
    }

    #[test]
    fn oversubscribed_provider_fails_start() {
        let sched = BatchScheduler::new(ClusterSpec::small(2, 2), SchedulerConfig::immediate());
        let provider = Arc::new(SlurmProvider::new(sched));
        assert!(HighThroughputExecutor::start(no_latency("htex", 5, 1), provider).is_err());
    }

    #[test]
    fn outstanding_counts_backlog() {
        let htex = HighThroughputExecutor::start(
            no_latency("htex", 1, 1),
            Arc::new(LocalProvider::new(1)),
        )
        .unwrap();
        let gate = Arc::new(parking_lot::Mutex::new(()));
        let held = gate.lock();
        let mut futs = Vec::new();
        for i in 0..4 {
            let (fut, promise) = promise_pair(TaskId(i));
            let gate = gate.clone();
            htex.submit(TaskPayload {
                id: TaskId(i),
                body: Box::new(move || {
                    let _g = gate.lock();
                    Ok(Value::Null)
                }),
                promise,
            });
            futs.push(fut);
        }
        std::thread::sleep(Duration::from_millis(30));
        assert!(htex.outstanding_tasks() >= 3, "{}", htex.outstanding_tasks());
        drop(held);
        for f in &futs {
            f.result().unwrap();
        }
        assert_eq!(htex.outstanding_tasks(), 0);
        htex.shutdown();
    }
}
