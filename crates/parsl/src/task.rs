//! Task identity and lifecycle states.

use std::fmt;

/// Unique id of a task within one DataFlowKernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Lifecycle of a task, mirroring Parsl's task state machine (collapsed to
/// the states that matter for a synchronous-runtime reconstruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Submitted; waiting for dependencies.
    Pending,
    /// Dependencies met; handed to the executor.
    Launched,
    /// Executing on a worker.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an error (after exhausting retries).
    Failed,
}

impl TaskState {
    /// Whether this is a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, TaskState::Done | TaskState::Failed)
    }
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskState::Pending => "pending",
            TaskState::Launched => "launched",
            TaskState::Running => "running",
            TaskState::Done => "done",
            TaskState::Failed => "failed",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_classification() {
        assert!(!TaskState::Pending.is_terminal());
        assert!(!TaskState::Launched.is_terminal());
        assert!(!TaskState::Running.is_terminal());
        assert!(TaskState::Done.is_terminal());
        assert!(TaskState::Failed.is_terminal());
    }

    #[test]
    fn display() {
        assert_eq!(TaskId(7).to_string(), "task7");
        assert_eq!(TaskState::Running.to_string(), "running");
    }
}
