//! `parsl` — a Rust reconstruction of the Parsl parallel programming
//! library (Babuji et al., HPDC '19), the execution substrate of the
//! Parsl+CWL paper.
//!
//! The Python original lets developers annotate functions as *apps*; calling
//! an app returns a *future*, and passing one app's future into another app
//! implicitly builds a dataflow graph that the *DataFlowKernel* maps onto an
//! *executor* backed by compute *providers*. This crate reproduces that
//! architecture:
//!
//! * [`AppFuture`]/[`DataFuture`] — completion futures built on
//!   Mutex + Condvar with completion callbacks (no polling anywhere);
//! * [`DataFlowKernel`] — dependency tracking via callback-driven counters,
//!   failure propagation, retries, and a monitoring log;
//! * [`Executor`] implementations:
//!   [`ThreadPoolExecutor`] (the paper's
//!   single-node configuration) and
//!   [`HighThroughputExecutor`] — the
//!   pilot-job model with an interchange, per-node managers, and
//!   a modelled network dispatch cost;
//! * [`Provider`] implementations: [`LocalProvider`]
//!   and [`SlurmProvider`] (pilot jobs through the
//!   simulated [`gridsim`] batch scheduler);
//! * [`apps`] — `FnApp` (python_app analogue) and `CommandApp` (bash_app
//!   analogue, executing real subprocesses with stdout/stderr redirection).
//!
//! # Quickstart
//!
//! ```
//! use parsl::{DataFlowKernel, Config, AppArg};
//! use std::sync::Arc;
//! use yamlite::Value;
//!
//! let dfk = DataFlowKernel::new(Config::local_threads(4));
//! let double = Arc::new(|args: &[Value]| {
//!     Ok(Value::Int(args[0].as_int().unwrap() * 2))
//! });
//! let a = dfk.submit("double", vec![AppArg::value(21i64)], double.clone());
//! let b = dfk.submit("double", vec![AppArg::future(&a)], double);
//! assert_eq!(b.result().unwrap(), Value::Int(84));
//! dfk.shutdown();
//! ```

pub mod apps;
pub mod config;
pub mod dfk;
pub mod error;
pub mod executor;
pub mod file;
pub mod future;
pub mod htex;
pub mod monitoring;
pub mod provider;
pub mod strategy;
pub mod task;

pub use apps::{run_command, AppBody, CommandApp, CommandSpec, FnApp};
pub use config::{Capacity, Config, ExecutorChoice, RetryPolicy};
pub use dfk::{AppArg, CkptStats, DataFlowKernel, DispatchGate, GatedLaunch, RunTag};
pub use error::TaskError;
pub use executor::{Executor, TaskBody, TaskPayload, ThreadPoolExecutor};
pub use file::File;
pub use future::{AppFuture, DataFuture, Promise};
pub use htex::{HighThroughputExecutor, HtexConfig};
pub use monitoring::{FaultSummary, MonitoringLog, TaskEvent, TaskEventKind};
pub use provider::{LocalProvider, NodeHandle, Provider, SlurmProvider};
pub use strategy::{ScalingPolicy, Strategy};
pub use task::{TaskId, TaskState};

// Re-export the observability surface callers need to configure and read
// traces without depending on `obs` directly.
pub use obs::{ObsConfig, Observability, SpanCtx, SpanKind, SpanRecord};
