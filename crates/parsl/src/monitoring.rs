//! Task-lifecycle monitoring — a lightweight stand-in for Parsl's
//! monitoring database: an in-memory, thread-safe event log the bench
//! harness and tests can query.

use crate::task::{TaskId, TaskState};
use obs::RunClock;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// What happened to a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskEventKind {
    Submitted,
    Launched,
    Completed,
    Failed,
    Retried,
    /// Completed from the memo table without executing.
    Memoized,
    /// The node hosting this manager stopped heartbeating; the event's
    /// `label` names the lost node (task id is the sentinel `TaskId(0)`).
    NodeLost,
    /// An in-flight task from a lost node was re-queued to survivors.
    Redispatched,
    /// An attempt exceeded its configured walltime.
    TimedOut,
    /// A replacement block was provisioned after node loss; `label` names
    /// the replacement node (task id is the sentinel `TaskId(0)`).
    BlockReplaced,
}

/// One monitoring record.
#[derive(Debug, Clone)]
pub struct TaskEvent {
    pub task: TaskId,
    pub kind: TaskEventKind,
    /// Time since the log was created.
    pub at: Duration,
    /// Task label (app name), or the node name for node-level events.
    pub label: String,
}

/// Aggregated counts per final state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskSummary {
    pub submitted: usize,
    pub completed: usize,
    pub failed: usize,
    pub retried: usize,
    pub memoized: usize,
    pub node_lost: usize,
    pub redispatched: usize,
    pub timed_out: usize,
    pub blocks_replaced: usize,
}

impl TaskSummary {
    /// Aggregate an event slice — usable inside
    /// [`MonitoringLog::wait_for_events`] predicates, where the log's own
    /// accessors would re-entrantly take the events lock.
    pub fn from_events(events: &[TaskEvent]) -> Self {
        let mut s = TaskSummary::default();
        for e in events {
            match e.kind {
                TaskEventKind::Submitted => s.submitted += 1,
                TaskEventKind::Completed => s.completed += 1,
                TaskEventKind::Failed => s.failed += 1,
                TaskEventKind::Retried => s.retried += 1,
                TaskEventKind::Memoized => s.memoized += 1,
                TaskEventKind::NodeLost => s.node_lost += 1,
                TaskEventKind::Redispatched => s.redispatched += 1,
                TaskEventKind::TimedOut => s.timed_out += 1,
                TaskEventKind::BlockReplaced => s.blocks_replaced += 1,
                TaskEventKind::Launched => {}
            }
        }
        s
    }
}

/// Aggregated fault-handling view of a run — the numbers the paper's
/// fault-injection experiment reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Nodes declared dead by the heartbeat monitor.
    pub nodes_lost: Vec<String>,
    /// Tasks re-queued off dead nodes.
    pub tasks_redispatched: usize,
    /// Attempts killed by the walltime watchdog.
    pub tasks_timed_out: usize,
    /// Replacement blocks provisioned to restore capacity.
    pub blocks_replaced: usize,
    /// Attempts retried by the dataflow kernel.
    pub retries: usize,
}

impl FaultSummary {
    /// Aggregate an event slice (see [`TaskSummary::from_events`]).
    pub fn from_events(events: &[TaskEvent]) -> Self {
        let mut s = FaultSummary::default();
        for e in events {
            match e.kind {
                TaskEventKind::NodeLost => s.nodes_lost.push(e.label.clone()),
                TaskEventKind::Redispatched => s.tasks_redispatched += 1,
                TaskEventKind::TimedOut => s.tasks_timed_out += 1,
                TaskEventKind::BlockReplaced => s.blocks_replaced += 1,
                TaskEventKind::Retried => s.retries += 1,
                _ => {}
            }
        }
        s
    }
}

/// The retained event window plus running aggregates that stay exact
/// after eviction. The ring bounds only per-event *detail*; every counter
/// and timestamp a summary reads is folded in at record time.
struct EventRing {
    ring: VecDeque<TaskEvent>,
    cap: usize,
    /// Events evicted from the front of the ring so far.
    dropped: usize,
    summary: TaskSummary,
    faults: FaultSummary,
    /// Timestamp of the very first event (evicted or not), for makespan.
    first_at: Option<Duration>,
    /// Latest terminal (Completed/Failed) timestamp, for makespan.
    last_terminal_at: Option<Duration>,
}

impl EventRing {
    fn push(&mut self, event: TaskEvent) {
        self.first_at.get_or_insert(event.at);
        if matches!(event.kind, TaskEventKind::Completed | TaskEventKind::Failed) {
            self.last_terminal_at = Some(event.at);
        }
        fold_summary(&mut self.summary, &event);
        fold_faults(&mut self.faults, &event);
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }
}

fn fold_summary(s: &mut TaskSummary, e: &TaskEvent) {
    match e.kind {
        TaskEventKind::Submitted => s.submitted += 1,
        TaskEventKind::Completed => s.completed += 1,
        TaskEventKind::Failed => s.failed += 1,
        TaskEventKind::Retried => s.retried += 1,
        TaskEventKind::Memoized => s.memoized += 1,
        TaskEventKind::NodeLost => s.node_lost += 1,
        TaskEventKind::Redispatched => s.redispatched += 1,
        TaskEventKind::TimedOut => s.timed_out += 1,
        TaskEventKind::BlockReplaced => s.blocks_replaced += 1,
        TaskEventKind::Launched => {}
    }
}

fn fold_faults(s: &mut FaultSummary, e: &TaskEvent) {
    match e.kind {
        TaskEventKind::NodeLost => s.nodes_lost.push(e.label.clone()),
        TaskEventKind::Redispatched => s.tasks_redispatched += 1,
        TaskEventKind::TimedOut => s.tasks_timed_out += 1,
        TaskEventKind::BlockReplaced => s.blocks_replaced += 1,
        TaskEventKind::Retried => s.retries += 1,
        _ => {}
    }
}

/// The in-memory event log.
///
/// Timestamps come from a [`RunClock`] anchored at log creation — a
/// monotonic clock, never wall time — and are read while holding the
/// events lock, so `at` values are non-decreasing in log order even when
/// many threads record concurrently.
///
/// Storage is a bounded ring (see [`obs::DEFAULT_EVENTS_CAP`]): a
/// long-lived daemon does not grow without bound. [`MonitoringLog::summary`],
/// [`MonitoringLog::fault_summary`], and [`MonitoringLog::makespan`] stay
/// exact past the cap because their inputs are folded in at record time;
/// only per-event detail older than the window is dropped.
pub struct MonitoringLog {
    clock: RunClock,
    events: Mutex<EventRing>,
    /// Notified on every `record` while a waiter is registered, so tests
    /// and shutdown paths can wait for a condition instead of
    /// sleep-polling.
    recorded: Condvar,
    /// Threads currently blocked in [`MonitoringLog::wait_for_events`].
    /// `record` skips the condvar notify when this is zero — with the
    /// std-backed condvar a notify is a syscall even with no waiters,
    /// which is most of the per-event cost on the dispatch hot path.
    waiters: std::sync::atomic::AtomicUsize,
}

impl Default for MonitoringLog {
    fn default() -> Self {
        Self::new()
    }
}

impl MonitoringLog {
    /// An empty log; timestamps are relative to this call.
    pub fn new() -> Self {
        Self::with_clock(simtest::real_clock())
    }

    /// An empty log stamped from an explicit time source (a virtual clock
    /// under simulation).
    pub fn with_clock(clock: simtest::ClockRef) -> Self {
        Self::with_clock_and_cap(clock, obs::DEFAULT_EVENTS_CAP)
    }

    /// An empty log with an explicit retained-event cap (minimum 1).
    pub fn with_clock_and_cap(clock: simtest::ClockRef, cap: usize) -> Self {
        Self {
            clock: RunClock::with_clock(clock),
            events: Mutex::new(EventRing {
                ring: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
                summary: TaskSummary::default(),
                faults: FaultSummary::default(),
                first_at: None,
                last_terminal_at: None,
            }),
            recorded: Condvar::new(),
            waiters: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Append an event.
    pub fn record(&self, task: TaskId, kind: TaskEventKind, label: &str) {
        let mut events = self.events.lock();
        // Read the clock under the lock: the RunClock is monotone across
        // completed readings, so serialized reads are sorted in push order.
        let at = self.clock.now();
        events.push(TaskEvent {
            task,
            kind,
            at,
            label: label.to_string(),
        });
        drop(events);
        // The waiter count is raised under the events lock, so a waiter
        // that missed this event is visible here by the time the lock is
        // released — no lost wakeups.
        if self.waiters.load(std::sync::atomic::Ordering::SeqCst) > 0 {
            self.recorded.notify_all();
        }
    }

    /// Snapshot of the retained event window (all events so far unless the
    /// ring cap evicted older ones — see [`MonitoringLog::events_dropped`]).
    pub fn events(&self) -> Vec<TaskEvent> {
        self.events.lock().ring.iter().cloned().collect()
    }

    /// Events evicted from the retained window so far.
    pub fn events_dropped(&self) -> usize {
        self.events.lock().dropped
    }

    /// The retained-event cap this log was built with.
    pub fn events_cap(&self) -> usize {
        self.events.lock().cap
    }

    /// Deadline-bounded condition wait over the event log: blocks until
    /// `pred` holds for the events recorded so far, waking on every new
    /// record, and gives up after `timeout` (real time). Returns the final
    /// value of `pred`.
    ///
    /// This is the synchronization primitive integration tests use instead
    /// of sleep-and-poll: no fixed sleeps, no lost wakeups (the predicate
    /// is re-evaluated under the same lock `record` takes), and a hard
    /// upper bound on how long a failing run can hang.
    pub fn wait_for_events(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&[TaskEvent]) -> bool,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        let mut events = self.events.lock();
        // Registered under the lock: any `record` that runs after this
        // point sees the waiter once it releases the lock and notifies.
        self.waiters
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let result = loop {
            if pred(events.ring.make_contiguous()) {
                break true;
            }
            if self.recorded.wait_until(&mut events, deadline).timed_out() {
                break pred(events.ring.make_contiguous());
            }
        };
        self.waiters
            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        result
    }

    /// Aggregate counts. Exact even after ring eviction: folded in at
    /// record time, not recomputed from the retained window.
    pub fn summary(&self) -> TaskSummary {
        self.events.lock().summary.clone()
    }

    /// The fault-handling story of the run, for experiment reports.
    pub fn fault_summary(&self) -> FaultSummary {
        self.events.lock().faults.clone()
    }

    /// Observed makespan: time from first submit to last completion event.
    pub fn makespan(&self) -> Option<Duration> {
        let events = self.events.lock();
        let first = events.first_at?;
        let last = events.last_terminal_at?;
        Some(last.saturating_sub(first))
    }
}

/// Final state derived from an event sequence (helper for tests/tools).
pub fn final_state(events: &[TaskEvent], task: TaskId) -> Option<TaskState> {
    let mut state = None;
    for e in events.iter().filter(|e| e.task == task) {
        state = Some(match e.kind {
            TaskEventKind::Submitted => TaskState::Pending,
            TaskEventKind::Launched
            | TaskEventKind::Retried
            | TaskEventKind::Memoized
            | TaskEventKind::Redispatched
            | TaskEventKind::TimedOut => TaskState::Launched,
            TaskEventKind::Completed => TaskState::Done,
            TaskEventKind::Failed => TaskState::Failed,
            // Node-level events carry a sentinel task id; they do not
            // change any task's state.
            TaskEventKind::NodeLost | TaskEventKind::BlockReplaced => continue,
        });
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let log = MonitoringLog::new();
        log.record(TaskId(1), TaskEventKind::Submitted, "a");
        log.record(TaskId(1), TaskEventKind::Launched, "a");
        log.record(TaskId(1), TaskEventKind::Completed, "a");
        log.record(TaskId(2), TaskEventKind::Submitted, "b");
        log.record(TaskId(2), TaskEventKind::Failed, "b");
        let s = log.summary();
        assert_eq!(
            s,
            TaskSummary {
                submitted: 2,
                completed: 1,
                failed: 1,
                ..TaskSummary::default()
            }
        );
        assert_eq!(log.events().len(), 5);
    }

    #[test]
    fn final_states() {
        let log = MonitoringLog::new();
        log.record(TaskId(1), TaskEventKind::Submitted, "a");
        log.record(TaskId(1), TaskEventKind::Retried, "a");
        log.record(TaskId(1), TaskEventKind::Completed, "a");
        let events = log.events();
        assert_eq!(final_state(&events, TaskId(1)), Some(TaskState::Done));
        assert_eq!(final_state(&events, TaskId(9)), None);
    }

    #[test]
    fn fault_events_summarized() {
        let log = MonitoringLog::new();
        log.record(TaskId(0), TaskEventKind::NodeLost, "node01");
        log.record(TaskId(3), TaskEventKind::Redispatched, "stage");
        log.record(TaskId(4), TaskEventKind::Redispatched, "stage");
        log.record(TaskId(5), TaskEventKind::TimedOut, "slow");
        log.record(TaskId(0), TaskEventKind::BlockReplaced, "node04");
        log.record(TaskId(3), TaskEventKind::Retried, "stage");
        let s = log.summary();
        assert_eq!(s.node_lost, 1);
        assert_eq!(s.redispatched, 2);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.blocks_replaced, 1);
        let fs = log.fault_summary();
        assert_eq!(fs.nodes_lost, vec!["node01".to_string()]);
        assert_eq!(fs.tasks_redispatched, 2);
        assert_eq!(fs.tasks_timed_out, 1);
        assert_eq!(fs.blocks_replaced, 1);
        assert_eq!(fs.retries, 1);
    }

    #[test]
    fn node_events_do_not_set_task_state() {
        let log = MonitoringLog::new();
        log.record(TaskId(0), TaskEventKind::NodeLost, "node01");
        log.record(TaskId(1), TaskEventKind::Submitted, "a");
        log.record(TaskId(1), TaskEventKind::Redispatched, "a");
        let events = log.events();
        assert_eq!(final_state(&events, TaskId(0)), None);
        assert_eq!(final_state(&events, TaskId(1)), Some(TaskState::Launched));
    }

    /// Regression: timestamps must be monotonic within a run. Events are
    /// stamped from a run-anchored monotonic clock read under the events
    /// lock, so `at` can never go backwards in log order — even with many
    /// threads racing to record.
    #[test]
    fn timestamps_never_go_backwards_across_threads() {
        use std::sync::Arc;
        let log = Arc::new(MonitoringLog::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        log.record(TaskId(t * 1000 + i), TaskEventKind::Submitted, "race");
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let events = log.events();
        assert_eq!(events.len(), 8 * 250);
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "event timestamps went backwards"
        );
    }

    #[test]
    fn makespan_spans_first_to_last() {
        // Virtual clock: the elapsed time between records is exact logical
        // time, not a wall-clock sleep the scheduler may stretch.
        let vc = simtest::VirtualClock::new();
        vc.set_auto(false);
        let log = MonitoringLog::with_clock(vc.clone());
        log.record(TaskId(1), TaskEventKind::Submitted, "a");
        vc.advance(Duration::from_millis(15));
        log.record(TaskId(1), TaskEventKind::Completed, "a");
        assert_eq!(log.makespan().unwrap(), Duration::from_millis(15));
        let empty = MonitoringLog::new();
        assert!(empty.makespan().is_none());
    }

    /// Satellite: the event ring must bound retained detail at the cap
    /// while every summary counter (and makespan) stays exact — a
    /// week-long daemon cannot grow the log without bound.
    #[test]
    fn ring_caps_retained_events_but_counters_stay_exact() {
        let log = MonitoringLog::with_clock_and_cap(simtest::real_clock(), 16);
        assert_eq!(log.events_cap(), 16);
        for i in 0..100u64 {
            log.record(TaskId(i), TaskEventKind::Submitted, "s");
            log.record(TaskId(i), TaskEventKind::Completed, "s");
        }
        log.record(TaskId(999), TaskEventKind::Failed, "tail");
        let retained = log.events();
        assert_eq!(retained.len(), 16, "ring must hold exactly the cap");
        assert_eq!(log.events_dropped(), 201 - 16);
        // The newest events survive; the oldest were evicted.
        assert_eq!(retained.last().unwrap().task, TaskId(999));
        assert!(retained.iter().all(|e| e.task.0 >= 92));
        // Aggregates are exact despite eviction.
        let s = log.summary();
        assert_eq!(s.submitted, 100);
        assert_eq!(s.completed, 100);
        assert_eq!(s.failed, 1);
        assert!(log.makespan().is_some());
        // A cap of zero is clamped to one retained event.
        let tiny = MonitoringLog::with_clock_and_cap(simtest::real_clock(), 0);
        tiny.record(TaskId(1), TaskEventKind::Submitted, "a");
        tiny.record(TaskId(2), TaskEventKind::Submitted, "b");
        assert_eq!(tiny.events().len(), 1);
        assert_eq!(tiny.summary().submitted, 2);
    }

    #[test]
    fn wait_for_events_wakes_on_record() {
        use std::sync::Arc;
        let log = Arc::new(MonitoringLog::new());
        let writer = log.clone();
        let t = std::thread::spawn(move || {
            for i in 0..3 {
                writer.record(TaskId(i), TaskEventKind::Completed, "w");
            }
        });
        assert!(log.wait_for_events(Duration::from_secs(5), |ev| {
            TaskSummary::from_events(ev).completed == 3
        }));
        t.join().unwrap();
        // A predicate that can never hold returns false at the deadline.
        assert!(!log.wait_for_events(Duration::from_millis(20), |ev| ev.len() > 100));
    }
}
