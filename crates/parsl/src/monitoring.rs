//! Task-lifecycle monitoring — a lightweight stand-in for Parsl's
//! monitoring database: an in-memory, thread-safe event log the bench
//! harness and tests can query.

use crate::task::{TaskId, TaskState};
use obs::RunClock;
use parking_lot::Mutex;
use std::time::Duration;

/// What happened to a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskEventKind {
    Submitted,
    Launched,
    Completed,
    Failed,
    Retried,
    /// Completed from the memo table without executing.
    Memoized,
    /// The node hosting this manager stopped heartbeating; the event's
    /// `label` names the lost node (task id is the sentinel `TaskId(0)`).
    NodeLost,
    /// An in-flight task from a lost node was re-queued to survivors.
    Redispatched,
    /// An attempt exceeded its configured walltime.
    TimedOut,
    /// A replacement block was provisioned after node loss; `label` names
    /// the replacement node (task id is the sentinel `TaskId(0)`).
    BlockReplaced,
}

/// One monitoring record.
#[derive(Debug, Clone)]
pub struct TaskEvent {
    pub task: TaskId,
    pub kind: TaskEventKind,
    /// Time since the log was created.
    pub at: Duration,
    /// Task label (app name), or the node name for node-level events.
    pub label: String,
}

/// Aggregated counts per final state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskSummary {
    pub submitted: usize,
    pub completed: usize,
    pub failed: usize,
    pub retried: usize,
    pub memoized: usize,
    pub node_lost: usize,
    pub redispatched: usize,
    pub timed_out: usize,
    pub blocks_replaced: usize,
}

/// Aggregated fault-handling view of a run — the numbers the paper's
/// fault-injection experiment reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Nodes declared dead by the heartbeat monitor.
    pub nodes_lost: Vec<String>,
    /// Tasks re-queued off dead nodes.
    pub tasks_redispatched: usize,
    /// Attempts killed by the walltime watchdog.
    pub tasks_timed_out: usize,
    /// Replacement blocks provisioned to restore capacity.
    pub blocks_replaced: usize,
    /// Attempts retried by the dataflow kernel.
    pub retries: usize,
}

/// The in-memory event log.
///
/// Timestamps come from a [`RunClock`] anchored at log creation — a
/// monotonic clock, never wall time — and are read while holding the
/// events lock, so `at` values are non-decreasing in log order even when
/// many threads record concurrently.
pub struct MonitoringLog {
    clock: RunClock,
    events: Mutex<Vec<TaskEvent>>,
}

impl Default for MonitoringLog {
    fn default() -> Self {
        Self::new()
    }
}

impl MonitoringLog {
    /// An empty log; timestamps are relative to this call.
    pub fn new() -> Self {
        Self {
            clock: RunClock::new(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Append an event.
    pub fn record(&self, task: TaskId, kind: TaskEventKind, label: &str) {
        let mut events = self.events.lock();
        // Read the clock under the lock: the RunClock is monotone across
        // completed readings, so serialized reads are sorted in push order.
        let at = self.clock.now();
        events.push(TaskEvent {
            task,
            kind,
            at,
            label: label.to_string(),
        });
    }

    /// Snapshot of all events so far.
    pub fn events(&self) -> Vec<TaskEvent> {
        self.events.lock().clone()
    }

    /// Aggregate counts.
    pub fn summary(&self) -> TaskSummary {
        let events = self.events.lock();
        let mut s = TaskSummary::default();
        for e in events.iter() {
            match e.kind {
                TaskEventKind::Submitted => s.submitted += 1,
                TaskEventKind::Completed => s.completed += 1,
                TaskEventKind::Failed => s.failed += 1,
                TaskEventKind::Retried => s.retried += 1,
                TaskEventKind::Memoized => s.memoized += 1,
                TaskEventKind::NodeLost => s.node_lost += 1,
                TaskEventKind::Redispatched => s.redispatched += 1,
                TaskEventKind::TimedOut => s.timed_out += 1,
                TaskEventKind::BlockReplaced => s.blocks_replaced += 1,
                TaskEventKind::Launched => {}
            }
        }
        s
    }

    /// The fault-handling story of the run, for experiment reports.
    pub fn fault_summary(&self) -> FaultSummary {
        let events = self.events.lock();
        let mut s = FaultSummary::default();
        for e in events.iter() {
            match e.kind {
                TaskEventKind::NodeLost => s.nodes_lost.push(e.label.clone()),
                TaskEventKind::Redispatched => s.tasks_redispatched += 1,
                TaskEventKind::TimedOut => s.tasks_timed_out += 1,
                TaskEventKind::BlockReplaced => s.blocks_replaced += 1,
                TaskEventKind::Retried => s.retries += 1,
                _ => {}
            }
        }
        s
    }

    /// Observed makespan: time from first submit to last completion event.
    pub fn makespan(&self) -> Option<Duration> {
        let events = self.events.lock();
        let first = events.first()?.at;
        let last = events
            .iter()
            .filter(|e| matches!(e.kind, TaskEventKind::Completed | TaskEventKind::Failed))
            .map(|e| e.at)
            .max()?;
        Some(last.saturating_sub(first))
    }
}

/// Final state derived from an event sequence (helper for tests/tools).
pub fn final_state(events: &[TaskEvent], task: TaskId) -> Option<TaskState> {
    let mut state = None;
    for e in events.iter().filter(|e| e.task == task) {
        state = Some(match e.kind {
            TaskEventKind::Submitted => TaskState::Pending,
            TaskEventKind::Launched
            | TaskEventKind::Retried
            | TaskEventKind::Memoized
            | TaskEventKind::Redispatched
            | TaskEventKind::TimedOut => TaskState::Launched,
            TaskEventKind::Completed => TaskState::Done,
            TaskEventKind::Failed => TaskState::Failed,
            // Node-level events carry a sentinel task id; they do not
            // change any task's state.
            TaskEventKind::NodeLost | TaskEventKind::BlockReplaced => continue,
        });
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let log = MonitoringLog::new();
        log.record(TaskId(1), TaskEventKind::Submitted, "a");
        log.record(TaskId(1), TaskEventKind::Launched, "a");
        log.record(TaskId(1), TaskEventKind::Completed, "a");
        log.record(TaskId(2), TaskEventKind::Submitted, "b");
        log.record(TaskId(2), TaskEventKind::Failed, "b");
        let s = log.summary();
        assert_eq!(
            s,
            TaskSummary {
                submitted: 2,
                completed: 1,
                failed: 1,
                ..TaskSummary::default()
            }
        );
        assert_eq!(log.events().len(), 5);
    }

    #[test]
    fn final_states() {
        let log = MonitoringLog::new();
        log.record(TaskId(1), TaskEventKind::Submitted, "a");
        log.record(TaskId(1), TaskEventKind::Retried, "a");
        log.record(TaskId(1), TaskEventKind::Completed, "a");
        let events = log.events();
        assert_eq!(final_state(&events, TaskId(1)), Some(TaskState::Done));
        assert_eq!(final_state(&events, TaskId(9)), None);
    }

    #[test]
    fn fault_events_summarized() {
        let log = MonitoringLog::new();
        log.record(TaskId(0), TaskEventKind::NodeLost, "node01");
        log.record(TaskId(3), TaskEventKind::Redispatched, "stage");
        log.record(TaskId(4), TaskEventKind::Redispatched, "stage");
        log.record(TaskId(5), TaskEventKind::TimedOut, "slow");
        log.record(TaskId(0), TaskEventKind::BlockReplaced, "node04");
        log.record(TaskId(3), TaskEventKind::Retried, "stage");
        let s = log.summary();
        assert_eq!(s.node_lost, 1);
        assert_eq!(s.redispatched, 2);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.blocks_replaced, 1);
        let fs = log.fault_summary();
        assert_eq!(fs.nodes_lost, vec!["node01".to_string()]);
        assert_eq!(fs.tasks_redispatched, 2);
        assert_eq!(fs.tasks_timed_out, 1);
        assert_eq!(fs.blocks_replaced, 1);
        assert_eq!(fs.retries, 1);
    }

    #[test]
    fn node_events_do_not_set_task_state() {
        let log = MonitoringLog::new();
        log.record(TaskId(0), TaskEventKind::NodeLost, "node01");
        log.record(TaskId(1), TaskEventKind::Submitted, "a");
        log.record(TaskId(1), TaskEventKind::Redispatched, "a");
        let events = log.events();
        assert_eq!(final_state(&events, TaskId(0)), None);
        assert_eq!(final_state(&events, TaskId(1)), Some(TaskState::Launched));
    }

    /// Regression: timestamps must be monotonic within a run. Events are
    /// stamped from a run-anchored monotonic clock read under the events
    /// lock, so `at` can never go backwards in log order — even with many
    /// threads racing to record.
    #[test]
    fn timestamps_never_go_backwards_across_threads() {
        use std::sync::Arc;
        let log = Arc::new(MonitoringLog::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        log.record(TaskId(t * 1000 + i), TaskEventKind::Submitted, "race");
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let events = log.events();
        assert_eq!(events.len(), 8 * 250);
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "event timestamps went backwards"
        );
    }

    #[test]
    fn makespan_spans_first_to_last() {
        let log = MonitoringLog::new();
        log.record(TaskId(1), TaskEventKind::Submitted, "a");
        std::thread::sleep(Duration::from_millis(15));
        log.record(TaskId(1), TaskEventKind::Completed, "a");
        assert!(log.makespan().unwrap() >= Duration::from_millis(10));
        let empty = MonitoringLog::new();
        assert!(empty.makespan().is_none());
    }
}
