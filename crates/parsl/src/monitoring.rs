//! Task-lifecycle monitoring — a lightweight stand-in for Parsl's
//! monitoring database: an in-memory, thread-safe event log the bench
//! harness and tests can query.

use crate::task::{TaskId, TaskState};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// What happened to a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskEventKind {
    Submitted,
    Launched,
    Completed,
    Failed,
    Retried,
    /// Completed from the memo table without executing.
    Memoized,
}

/// One monitoring record.
#[derive(Debug, Clone)]
pub struct TaskEvent {
    pub task: TaskId,
    pub kind: TaskEventKind,
    /// Time since the log was created.
    pub at: Duration,
    /// Task label (app name).
    pub label: String,
}

/// Aggregated counts per final state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskSummary {
    pub submitted: usize,
    pub completed: usize,
    pub failed: usize,
    pub retried: usize,
    pub memoized: usize,
}

/// The in-memory event log.
pub struct MonitoringLog {
    start: Instant,
    events: Mutex<Vec<TaskEvent>>,
}

impl Default for MonitoringLog {
    fn default() -> Self {
        Self::new()
    }
}

impl MonitoringLog {
    /// An empty log; timestamps are relative to this call.
    pub fn new() -> Self {
        Self { start: Instant::now(), events: Mutex::new(Vec::new()) }
    }

    /// Append an event.
    pub fn record(&self, task: TaskId, kind: TaskEventKind, label: &str) {
        self.events.lock().push(TaskEvent {
            task,
            kind,
            at: self.start.elapsed(),
            label: label.to_string(),
        });
    }

    /// Snapshot of all events so far.
    pub fn events(&self) -> Vec<TaskEvent> {
        self.events.lock().clone()
    }

    /// Aggregate counts.
    pub fn summary(&self) -> TaskSummary {
        let events = self.events.lock();
        let mut s = TaskSummary::default();
        for e in events.iter() {
            match e.kind {
                TaskEventKind::Submitted => s.submitted += 1,
                TaskEventKind::Completed => s.completed += 1,
                TaskEventKind::Failed => s.failed += 1,
                TaskEventKind::Retried => s.retried += 1,
                TaskEventKind::Memoized => s.memoized += 1,
                TaskEventKind::Launched => {}
            }
        }
        s
    }

    /// Observed makespan: time from first submit to last completion event.
    pub fn makespan(&self) -> Option<Duration> {
        let events = self.events.lock();
        let first = events.first()?.at;
        let last = events
            .iter()
            .filter(|e| matches!(e.kind, TaskEventKind::Completed | TaskEventKind::Failed))
            .map(|e| e.at)
            .max()?;
        Some(last.saturating_sub(first))
    }
}

/// Final state derived from an event sequence (helper for tests/tools).
pub fn final_state(events: &[TaskEvent], task: TaskId) -> Option<TaskState> {
    let mut state = None;
    for e in events.iter().filter(|e| e.task == task) {
        state = Some(match e.kind {
            TaskEventKind::Submitted => TaskState::Pending,
            TaskEventKind::Launched | TaskEventKind::Retried | TaskEventKind::Memoized => {
                TaskState::Launched
            }
            TaskEventKind::Completed => TaskState::Done,
            TaskEventKind::Failed => TaskState::Failed,
        });
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let log = MonitoringLog::new();
        log.record(TaskId(1), TaskEventKind::Submitted, "a");
        log.record(TaskId(1), TaskEventKind::Launched, "a");
        log.record(TaskId(1), TaskEventKind::Completed, "a");
        log.record(TaskId(2), TaskEventKind::Submitted, "b");
        log.record(TaskId(2), TaskEventKind::Failed, "b");
        let s = log.summary();
        assert_eq!(
            s,
            TaskSummary { submitted: 2, completed: 1, failed: 1, retried: 0, memoized: 0 }
        );
        assert_eq!(log.events().len(), 5);
    }

    #[test]
    fn final_states() {
        let log = MonitoringLog::new();
        log.record(TaskId(1), TaskEventKind::Submitted, "a");
        log.record(TaskId(1), TaskEventKind::Retried, "a");
        log.record(TaskId(1), TaskEventKind::Completed, "a");
        let events = log.events();
        assert_eq!(final_state(&events, TaskId(1)), Some(TaskState::Done));
        assert_eq!(final_state(&events, TaskId(9)), None);
    }

    #[test]
    fn makespan_spans_first_to_last() {
        let log = MonitoringLog::new();
        log.record(TaskId(1), TaskEventKind::Submitted, "a");
        std::thread::sleep(Duration::from_millis(15));
        log.record(TaskId(1), TaskEventKind::Completed, "a");
        assert!(log.makespan().unwrap() >= Duration::from_millis(10));
        let empty = MonitoringLog::new();
        assert!(empty.makespan().is_none());
    }
}
