//! Task failure representation.

use crate::task::TaskId;
use std::fmt;

/// Why a task did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The app body returned an error.
    Failed(String),
    /// A dependency of this task failed; carries the dependency chain.
    DependencyFailed {
        /// The failed upstream task.
        dep: TaskId,
        /// The upstream failure, flattened to text.
        reason: String,
    },
    /// The app body panicked.
    Panicked(String),
    /// The kernel or executor was shut down before the task ran.
    Shutdown,
    /// The attempt exceeded its configured walltime.
    Timeout(std::time::Duration),
    /// The executor lost the workers holding this task (e.g. every node
    /// died) and could not recover capacity to re-run it.
    ExecutorLost(String),
}

impl TaskError {
    /// Build a `Failed` from anything printable.
    pub fn failed(msg: impl fmt::Display) -> Self {
        TaskError::Failed(msg.to_string())
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Failed(m) => write!(f, "task failed: {m}"),
            TaskError::DependencyFailed { dep, reason } => {
                write!(f, "dependency {dep} failed: {reason}")
            }
            TaskError::Panicked(m) => write!(f, "task panicked: {m}"),
            TaskError::Shutdown => write!(f, "executor shut down before task ran"),
            TaskError::Timeout(d) => write!(f, "task exceeded walltime of {d:?}"),
            TaskError::ExecutorLost(m) => write!(f, "executor lost: {m}"),
        }
    }
}

impl std::error::Error for TaskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(TaskError::failed("boom").to_string(), "task failed: boom");
        assert_eq!(
            TaskError::DependencyFailed {
                dep: TaskId(3),
                reason: "x".into()
            }
            .to_string(),
            "dependency task3 failed: x"
        );
        assert!(TaskError::Shutdown.to_string().contains("shut down"));
        assert!(TaskError::Timeout(std::time::Duration::from_secs(2))
            .to_string()
            .contains("walltime"));
        assert!(TaskError::ExecutorLost("node01 died".into())
            .to_string()
            .contains("node01 died"));
    }
}
