//! The [`Executor`] abstraction and the in-process
//! [`ThreadPoolExecutor`] — Parsl's single-node executor, used for the
//! paper's Fig. 1b configuration.

use crate::error::TaskError;
use crate::future::{Promise, TaskResult};
use crate::task::TaskId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use yamlite::Value;

/// The work handed to an executor: a ready-to-run body plus the promise to
/// resolve with its outcome.
pub struct TaskPayload {
    /// Task identity (for logs).
    pub id: TaskId,
    /// The body to execute.
    pub body: Box<dyn FnOnce() -> Result<Value, TaskError> + Send>,
    /// The promise resolved with the outcome.
    pub promise: Promise,
}

impl TaskPayload {
    /// Execute the body (with panic isolation) and resolve the promise.
    pub fn run(self) {
        let result = run_isolated(self.body);
        self.promise.complete(result);
    }
}

/// Run a task body, converting panics into [`TaskError::Panicked`] so one
/// bad app cannot take down a worker.
pub fn run_isolated(body: Box<dyn FnOnce() -> Result<Value, TaskError> + Send>) -> TaskResult {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(TaskError::Panicked(msg))
        }
    }
}

/// An execution backend, mirroring Parsl's `ParslExecutor` interface
/// (itself modeled on `concurrent.futures.Executor`).
pub trait Executor: Send + Sync {
    /// Queue a task for execution. Must not block on task completion.
    fn submit(&self, task: TaskPayload);

    /// Human-readable label (appears in monitoring).
    fn label(&self) -> &str;

    /// Number of worker slots currently provisioned.
    fn worker_count(&self) -> usize;

    /// Stop accepting tasks and join workers. Queued tasks are completed
    /// with [`TaskError::Shutdown`].
    fn shutdown(&self);
}

enum Msg {
    Task(TaskPayload),
    Stop,
}

/// A fixed-size pool of worker threads fed from one queue — the
/// `ThreadPoolExecutor` of the paper's single-node runs.
pub struct ThreadPoolExecutor {
    label: String,
    tx: Sender<Msg>,
    workers: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
    worker_count: usize,
}

impl ThreadPoolExecutor {
    /// Spawn a pool with `workers` threads.
    pub fn new(label: impl Into<String>, workers: usize) -> Arc<Self> {
        let workers = workers.max(1);
        let label = label.into();
        let (tx, rx) = unbounded::<Msg>();
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx: Receiver<Msg> = rx.clone();
            let name = format!("{label}-worker-{i}");
            handles.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_loop(rx))
                    .expect("failed to spawn worker thread"),
            );
        }
        Arc::new(Self {
            label,
            tx,
            workers: parking_lot::Mutex::new(handles),
            worker_count: workers,
        })
    }
}

fn worker_loop(rx: Receiver<Msg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Task(task) => task.run(),
            Msg::Stop => break,
        }
    }
}

impl Executor for ThreadPoolExecutor {
    fn submit(&self, task: TaskPayload) {
        if self.tx.send(Msg::Task(task)).is_err() {
            // Channel closed: executor already shut down. The payload was
            // moved into the failed send; nothing further to resolve here —
            // crossbeam returns it, so recover and fail the promise.
            unreachable!("unbounded channel send fails only after drop");
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn worker_count(&self) -> usize {
        self.worker_count
    }

    fn shutdown(&self) {
        for _ in 0..self.worker_count {
            let _ = self.tx.send(Msg::Stop);
        }
        let mut workers = self.workers.lock();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::promise_pair;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn payload(
        id: u64,
        body: impl FnOnce() -> Result<Value, TaskError> + Send + 'static,
    ) -> (crate::future::AppFuture, TaskPayload) {
        let (fut, promise) = promise_pair(TaskId(id));
        (fut, TaskPayload { id: TaskId(id), body: Box::new(body), promise })
    }

    #[test]
    fn executes_tasks() {
        let pool = ThreadPoolExecutor::new("tp", 4);
        let (fut, task) = payload(1, || Ok(Value::Int(7)));
        pool.submit(task);
        assert_eq!(fut.result().unwrap(), Value::Int(7));
        pool.shutdown();
    }

    #[test]
    fn parallelism_actually_happens() {
        let pool = ThreadPoolExecutor::new("tp", 4);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut futs = Vec::new();
        for i in 0..8 {
            let running = running.clone();
            let peak = peak.clone();
            let (fut, task) = payload(i, move || {
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(30));
                running.fetch_sub(1, Ordering::SeqCst);
                Ok(Value::Null)
            });
            pool.submit(task);
            futs.push(fut);
        }
        for f in &futs {
            f.result().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) >= 3, "peak {:?}", peak);
        pool.shutdown();
    }

    #[test]
    fn panics_are_isolated() {
        let pool = ThreadPoolExecutor::new("tp", 2);
        let (bad, task) = payload(1, || panic!("kaboom"));
        pool.submit(task);
        match bad.result() {
            Err(TaskError::Panicked(m)) => assert!(m.contains("kaboom")),
            other => panic!("unexpected {other:?}"),
        }
        // Pool still works afterwards.
        let (ok, task) = payload(2, || Ok(Value::Int(1)));
        pool.submit(task);
        assert_eq!(ok.result().unwrap(), Value::Int(1));
        pool.shutdown();
    }

    #[test]
    fn shutdown_joins_workers() {
        let pool = ThreadPoolExecutor::new("tp", 2);
        let (fut, task) = payload(1, || Ok(Value::Null));
        pool.submit(task);
        fut.result().unwrap();
        pool.shutdown();
        assert!(pool.workers.lock().is_empty());
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = ThreadPoolExecutor::new("tp", 0);
        assert_eq!(pool.worker_count(), 1);
        pool.shutdown();
    }
}
