//! The [`Executor`] abstraction and the in-process
//! [`ThreadPoolExecutor`] — Parsl's single-node executor, used for the
//! paper's Fig. 1b configuration.

use crate::error::TaskError;
use crate::future::{Promise, TaskResult};
use crate::monitoring::MonitoringLog;
use crate::task::TaskId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use obs::{names, Observability, SpanCtx, SpanKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use yamlite::Value;

/// A task body. `Arc<dyn Fn>` rather than `Box<dyn FnOnce>` so a payload
/// can be cloned and re-dispatched when the worker holding it is lost —
/// the foundation of HTEX fault tolerance.
pub type TaskBody = Arc<dyn Fn() -> Result<Value, TaskError> + Send + Sync>;

/// The work handed to an executor: a ready-to-run body plus the promise to
/// resolve with its outcome. Cloneable so a lost dispatch can be retried on
/// a surviving worker (the shared promise makes double completion a no-op —
/// first completion wins).
#[derive(Clone)]
pub struct TaskPayload {
    /// Task identity (for logs).
    pub id: TaskId,
    /// The body to execute.
    pub body: TaskBody,
    /// The promise resolved with the outcome.
    pub promise: Promise,
    /// Trace context: the lineage id and the dispatch span executor-side
    /// spans hang off. [`SpanCtx::NONE`] when monitoring is off.
    pub ctx: SpanCtx,
}

impl TaskPayload {
    /// Execute the body (with panic isolation) and resolve the promise.
    pub fn run(self) {
        let result = run_isolated(&self.body);
        self.promise.complete(result);
    }
}

/// Run a task body, converting panics into [`TaskError::Panicked`] so one
/// bad app cannot take down a worker.
pub fn run_isolated(body: &TaskBody) -> TaskResult {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body())) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(TaskError::Panicked(msg))
        }
    }
}

/// An execution backend, mirroring Parsl's `ParslExecutor` interface
/// (itself modeled on `concurrent.futures.Executor`).
pub trait Executor: Send + Sync {
    /// Queue a task for execution. Must not block on task completion.
    /// After [`Executor::shutdown`], implementations must fail the task's
    /// promise with [`TaskError::Shutdown`] instead of accepting it.
    fn submit(&self, task: TaskPayload);

    /// Human-readable label (appears in monitoring).
    fn label(&self) -> &str;

    /// Number of worker slots currently provisioned.
    fn worker_count(&self) -> usize;

    /// Stop accepting tasks and join workers. Queued tasks are completed
    /// with [`TaskError::Shutdown`].
    fn shutdown(&self);

    /// Attach a monitoring log for executor-level events (node loss,
    /// re-dispatch). Default: no executor-level events.
    fn attach_monitoring(&self, _log: Arc<MonitoringLog>) {}

    /// Attach the run's observability instance so the executor can record
    /// spans and metrics. Default: the executor records nothing.
    fn attach_observability(&self, _obs: Arc<Observability>) {}
}

enum Msg {
    Task(TaskPayload),
    Stop,
}

/// A fixed-size pool of worker threads fed from one queue — the
/// `ThreadPoolExecutor` of the paper's single-node runs.
pub struct ThreadPoolExecutor {
    label: String,
    tx: Sender<Msg>,
    workers: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
    worker_count: usize,
    closed: AtomicBool,
    obs: Arc<parking_lot::Mutex<Arc<Observability>>>,
}

impl ThreadPoolExecutor {
    /// Spawn a pool with `workers` threads.
    pub fn new(label: impl Into<String>, workers: usize) -> Arc<Self> {
        let workers = workers.max(1);
        let label = label.into();
        let (tx, rx) = unbounded::<Msg>();
        let obs = Arc::new(parking_lot::Mutex::new(Arc::new(Observability::off())));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx: Receiver<Msg> = rx.clone();
            let obs = obs.clone();
            let name = format!("{label}-worker-{i}");
            handles.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_loop(rx, obs))
                    .expect("failed to spawn worker thread"),
            );
        }
        Arc::new(Self {
            label,
            tx,
            workers: parking_lot::Mutex::new(handles),
            worker_count: workers,
            closed: AtomicBool::new(false),
            obs,
        })
    }
}

fn worker_loop(rx: Receiver<Msg>, obs: Arc<parking_lot::Mutex<Arc<Observability>>>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Task(task) => {
                let obs = obs.lock().clone();
                if obs.is_enabled() {
                    let ctx = task.ctx;
                    let span = obs.start_span(
                        SpanKind::WorkerExec,
                        ctx.lineage,
                        ctx.parent,
                        "thread-pool",
                    );
                    let start = obs.now_us();
                    task.run();
                    obs.histogram(names::TASK_EXEC_US)
                        .record(obs.now_us().saturating_sub(start));
                    obs.finish_span(span);
                } else {
                    task.run();
                }
            }
            Msg::Stop => break,
        }
    }
}

impl Executor for ThreadPoolExecutor {
    fn submit(&self, task: TaskPayload) {
        if self.closed.load(Ordering::SeqCst) {
            // Fail fast: a submit after shutdown must not leave the caller
            // blocked forever on a promise nobody will resolve.
            task.promise.complete(Err(TaskError::Shutdown));
            return;
        }
        if let Err(send_err) = self.tx.send(Msg::Task(task)) {
            // Lost the race with shutdown; recover the payload from the
            // failed send and resolve its promise.
            if let Msg::Task(task) = send_err.0 {
                task.promise.complete(Err(TaskError::Shutdown));
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn worker_count(&self) -> usize {
        self.worker_count
    }

    fn shutdown(&self) {
        self.closed.store(true, Ordering::SeqCst);
        for _ in 0..self.worker_count {
            let _ = self.tx.send(Msg::Stop);
        }
        let mut workers = self.workers.lock();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn attach_observability(&self, obs: Arc<Observability>) {
        *self.obs.lock() = obs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::promise_pair;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn payload(
        id: u64,
        body: impl Fn() -> Result<Value, TaskError> + Send + Sync + 'static,
    ) -> (crate::future::AppFuture, TaskPayload) {
        let (fut, promise) = promise_pair(TaskId(id));
        (
            fut,
            TaskPayload {
                id: TaskId(id),
                body: Arc::new(body),
                promise,
                ctx: SpanCtx::NONE,
            },
        )
    }

    #[test]
    fn executes_tasks() {
        let pool = ThreadPoolExecutor::new("tp", 4);
        let (fut, task) = payload(1, || Ok(Value::Int(7)));
        pool.submit(task);
        assert_eq!(fut.result().unwrap(), Value::Int(7));
        pool.shutdown();
    }

    #[test]
    fn parallelism_actually_happens() {
        let pool = ThreadPoolExecutor::new("tp", 4);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut futs = Vec::new();
        for i in 0..8 {
            let running = running.clone();
            let peak = peak.clone();
            let (fut, task) = payload(i, move || {
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(30));
                running.fetch_sub(1, Ordering::SeqCst);
                Ok(Value::Null)
            });
            pool.submit(task);
            futs.push(fut);
        }
        for f in &futs {
            f.result().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) >= 3, "peak {:?}", peak);
        pool.shutdown();
    }

    #[test]
    fn panics_are_isolated() {
        let pool = ThreadPoolExecutor::new("tp", 2);
        let (bad, task) = payload(1, || panic!("kaboom"));
        pool.submit(task);
        match bad.result() {
            Err(TaskError::Panicked(m)) => assert!(m.contains("kaboom")),
            other => panic!("unexpected {other:?}"),
        }
        // Pool still works afterwards.
        let (ok, task) = payload(2, || Ok(Value::Int(1)));
        pool.submit(task);
        assert_eq!(ok.result().unwrap(), Value::Int(1));
        pool.shutdown();
    }

    #[test]
    fn shutdown_joins_workers() {
        let pool = ThreadPoolExecutor::new("tp", 2);
        let (fut, task) = payload(1, || Ok(Value::Null));
        pool.submit(task);
        fut.result().unwrap();
        pool.shutdown();
        assert!(pool.workers.lock().is_empty());
    }

    #[test]
    fn submit_after_shutdown_fails_fast() {
        let pool = ThreadPoolExecutor::new("tp", 2);
        pool.shutdown();
        let (fut, task) = payload(1, || Ok(Value::Int(1)));
        pool.submit(task);
        // The promise must resolve promptly with Shutdown, not hang.
        match fut.result_timeout(Duration::from_secs(2)) {
            Some(Err(TaskError::Shutdown)) => {}
            other => panic!("expected fast Shutdown error, got {other:?}"),
        }
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = ThreadPoolExecutor::new("tp", 0);
        assert_eq!(pool.worker_count(), 1);
        pool.shutdown();
    }
}
