//! Parsl's `File` abstraction: a location-transparent handle to a file that
//! apps exchange. In the Python original, `File` hides protocol/staging
//! differences (local, FTP, Globus); here all execution is node-local, so
//! the type carries path metadata and existence checks, keeping the same
//! API shape the CWL bridge expects.
//!
//! When the data plane has seen the file, a `File` also carries its
//! content digest: `size()` and `checksum()` answer from the digest index
//! without touching the filesystem. Identity (`Eq`/`Hash`) stays
//! path-based — the digest is metadata about the path's content, not part
//! of which file the handle names.

use datastore::Digest;
use std::path::{Path, PathBuf};

/// A file handle exchanged between apps.
#[derive(Debug, Clone)]
pub struct File {
    path: PathBuf,
    digest: Option<Digest>,
}

impl PartialEq for File {
    fn eq(&self, other: &Self) -> bool {
        self.path == other.path
    }
}

impl Eq for File {}

impl std::hash::Hash for File {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.path.hash(state);
    }
}

impl File {
    /// Wrap a path.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            digest: None,
        }
    }

    /// Wrap a path with a known content digest.
    pub fn with_digest(path: impl Into<PathBuf>, digest: Digest) -> Self {
        Self {
            path: path.into(),
            digest: Some(digest),
        }
    }

    /// The underlying path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The content digest: the one the handle carries, else whatever the
    /// process-global digest index knows about the path right now.
    pub fn digest(&self) -> Option<Digest> {
        self.digest
            .or_else(|| datastore::index::global().lookup_current(&self.path))
    }

    /// The CWL-style checksum string (`xxh64:<hex>`), if the content has
    /// been digested by the data plane.
    pub fn checksum(&self) -> Option<String> {
        self.digest().map(|d| d.checksum())
    }

    /// The file name portion (CWL's `basename`).
    pub fn basename(&self) -> String {
        self.path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default()
    }

    /// Basename without the final extension (CWL's `nameroot`).
    pub fn nameroot(&self) -> String {
        self.path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default()
    }

    /// The final extension including the dot (CWL's `nameext`).
    pub fn nameext(&self) -> String {
        self.path
            .extension()
            .map(|s| format!(".{}", s.to_string_lossy()))
            .unwrap_or_default()
    }

    /// Whether the file currently exists on disk.
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Size in bytes, served from the digest when known (None when the
    /// file is missing and undigested).
    pub fn size(&self) -> Option<u64> {
        if let Some(d) = self.digest {
            return Some(d.len);
        }
        std::fs::metadata(&self.path).ok().map(|m| m.len())
    }

    /// Render as a CWL File object value (`class: File`, path, basename…).
    pub fn to_cwl_value(&self) -> yamlite::Value {
        let mut m = yamlite::Map::new();
        m.insert("class", "File");
        m.insert("path", self.path.to_string_lossy().into_owned());
        m.insert("basename", self.basename());
        m.insert("nameroot", self.nameroot());
        m.insert("nameext", self.nameext());
        if let Some(size) = self.size() {
            m.insert("size", size as i64);
        }
        if let Some(checksum) = self.checksum() {
            m.insert("checksum", checksum);
        }
        yamlite::Value::Map(m)
    }
}

impl std::fmt::Display for File {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.path.display())
    }
}

impl From<&str> for File {
    fn from(s: &str) -> Self {
        File::new(s)
    }
}

impl From<PathBuf> for File {
    fn from(p: PathBuf) -> Self {
        File::new(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_parts() {
        let f = File::new("/data/images/photo.tar.gz");
        assert_eq!(f.basename(), "photo.tar.gz");
        assert_eq!(f.nameroot(), "photo.tar");
        assert_eq!(f.nameext(), ".gz");
    }

    #[test]
    fn no_extension() {
        let f = File::new("/data/README");
        assert_eq!(f.basename(), "README");
        assert_eq!(f.nameroot(), "README");
        assert_eq!(f.nameext(), "");
    }

    #[test]
    fn existence_and_size() {
        let dir = std::env::temp_dir().join(format!("parsl-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.txt");
        let f = File::new(&p);
        assert!(!f.exists());
        std::fs::write(&p, b"hello").unwrap();
        assert!(f.exists());
        assert_eq!(f.size(), Some(5));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn digest_serves_size_and_checksum() {
        let d = Digest::of_bytes(b"pixels");
        let f = File::with_digest("/data/never-read.rimg", d);
        // Size and checksum come from the digest, no filesystem access.
        assert_eq!(f.size(), Some(6));
        assert_eq!(f.checksum(), Some(d.checksum()));
        // Identity stays path-based.
        assert_eq!(f, File::new("/data/never-read.rimg"));

        // An index-recorded file serves its checksum through plain handles.
        let dir = std::env::temp_dir().join(format!("parsl-file-d-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("indexed.bin");
        std::fs::write(&p, b"indexed contents").unwrap();
        let canonical = p.canonicalize().unwrap();
        let meta = std::fs::metadata(&canonical).unwrap();
        let d2 = Digest::of_bytes(b"indexed contents");
        datastore::index::global().record(&canonical, &meta, d2);
        assert_eq!(File::new(&p).checksum(), Some(d2.checksum()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cwl_value_shape() {
        let f = File::new("/a/b.png");
        let v = f.to_cwl_value();
        assert_eq!(v["class"].as_str(), Some("File"));
        assert_eq!(v["path"].as_str(), Some("/a/b.png"));
        assert_eq!(v["basename"].as_str(), Some("b.png"));
        assert_eq!(v["nameext"].as_str(), Some(".png"));
    }
}
