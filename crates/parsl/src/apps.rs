//! App bodies: `FnApp` (Parsl's `python_app` analogue — any Rust closure)
//! and command execution (`bash_app` analogue — a real subprocess with
//! stdout/stderr redirection), which is what CWL CommandLineTools compile to.

use crate::error::TaskError;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::Arc;
use yamlite::{Map, Value};

/// The executable body of an app: resolved input values in, value out.
pub type AppBody = Arc<dyn Fn(&[Value]) -> Result<Value, TaskError> + Send + Sync>;

/// Wrap a closure as an app body (`python_app` analogue).
pub struct FnApp;

impl FnApp {
    /// Build an [`AppBody`] from a plain closure.
    #[allow(clippy::new_ret_no_self)] // deliberately returns the shared body type
    pub fn new<F>(f: F) -> AppBody
    where
        F: Fn(&[Value]) -> Result<Value, TaskError> + Send + Sync + 'static,
    {
        Arc::new(f)
    }
}

/// A fully resolved command invocation (`bash_app` analogue).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommandSpec {
    /// Program followed by its arguments.
    pub argv: Vec<String>,
    /// Redirect stdout to this file.
    pub stdout: Option<PathBuf>,
    /// Redirect stderr to this file.
    pub stderr: Option<PathBuf>,
    /// Working directory.
    pub cwd: Option<PathBuf>,
    /// Extra environment variables.
    pub env: Vec<(String, String)>,
}

impl CommandSpec {
    /// A spec running `argv` in the current directory.
    pub fn new(argv: Vec<String>) -> Self {
        Self {
            argv,
            ..Default::default()
        }
    }

    /// Render as a shell-like string (for logs).
    pub fn render(&self) -> String {
        let mut s = self
            .argv
            .iter()
            .map(|a| {
                if a.contains(' ') || a.is_empty() {
                    format!("'{a}'")
                } else {
                    a.clone()
                }
            })
            .collect::<Vec<_>>()
            .join(" ");
        if let Some(o) = &self.stdout {
            s.push_str(&format!(" > {}", o.display()));
        }
        if let Some(e) = &self.stderr {
            s.push_str(&format!(" 2> {}", e.display()));
        }
        s
    }
}

/// Execute a command spec as a real subprocess. Returns a map:
/// `{exit_code, command, stdout?, stderr?}` (streams appear inline when not
/// redirected to files). Non-zero exit becomes [`TaskError::Failed`] with
/// the tail of stderr, like Parsl's bash_app.
pub fn run_command(spec: &CommandSpec) -> Result<Value, TaskError> {
    let Some(program) = spec.argv.first() else {
        return Err(TaskError::failed("empty command line"));
    };
    let mut cmd = Command::new(program);
    cmd.args(&spec.argv[1..]);
    if let Some(cwd) = &spec.cwd {
        cmd.current_dir(cwd);
    }
    for (k, v) in &spec.env {
        cmd.env(k, v);
    }
    match &spec.stdout {
        Some(path) => {
            let f = std::fs::File::create(path)
                .map_err(|e| TaskError::failed(format!("cannot create stdout {path:?}: {e}")))?;
            cmd.stdout(Stdio::from(f));
        }
        None => {
            cmd.stdout(Stdio::piped());
        }
    }
    match &spec.stderr {
        Some(path) => {
            let f = std::fs::File::create(path)
                .map_err(|e| TaskError::failed(format!("cannot create stderr {path:?}: {e}")))?;
            cmd.stderr(Stdio::from(f));
        }
        None => {
            cmd.stderr(Stdio::piped());
        }
    }
    let output = cmd
        .output()
        .map_err(|e| TaskError::failed(format!("cannot spawn {program:?}: {e}")))?;

    let code = output.status.code().unwrap_or(-1);
    let stdout_text = String::from_utf8_lossy(&output.stdout).into_owned();
    let stderr_text = String::from_utf8_lossy(&output.stderr).into_owned();

    if !output.status.success() {
        let detail = if let Some(stderr_path) = &spec.stderr {
            format!("see {}", stderr_path.display())
        } else {
            let tail: String = stderr_text
                .chars()
                .rev()
                .take(400)
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            tail
        };
        return Err(TaskError::failed(format!(
            "command {:?} exited with code {code}: {detail}",
            spec.render()
        )));
    }

    let mut m = Map::new();
    m.insert("exit_code", code as i64);
    m.insert("command", spec.render());
    if spec.stdout.is_none() && !stdout_text.is_empty() {
        m.insert("stdout", stdout_text);
    }
    if spec.stderr.is_none() && !stderr_text.is_empty() {
        m.insert("stderr", stderr_text);
    }
    Ok(Value::Map(m))
}

/// An app body that builds a [`CommandSpec`] from resolved inputs and runs
/// it — the shape the CWL bridge produces.
pub struct CommandApp;

impl CommandApp {
    /// Build an [`AppBody`] from a spec-builder closure.
    #[allow(clippy::new_ret_no_self)] // deliberately returns the shared body type
    pub fn new<F>(build: F) -> AppBody
    where
        F: Fn(&[Value]) -> Result<CommandSpec, TaskError> + Send + Sync + 'static,
    {
        Arc::new(move |vals| {
            let spec = build(vals)?;
            run_command(&spec)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("parsl-apps-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn run_echo_captures_stdout() {
        let spec = CommandSpec::new(vec!["echo".into(), "hello".into(), "world".into()]);
        let v = run_command(&spec).unwrap();
        assert_eq!(v["exit_code"].as_int(), Some(0));
        assert_eq!(v["stdout"].as_str(), Some("hello world\n"));
    }

    #[test]
    fn run_echo_redirects_stdout() {
        let dir = tmpdir("redir");
        let out = dir.join("hello.txt");
        let spec = CommandSpec {
            argv: vec!["echo".into(), "redirected".into()],
            stdout: Some(out.clone()),
            ..Default::default()
        };
        let v = run_command(&spec).unwrap();
        assert!(v.get("stdout").is_none());
        assert_eq!(std::fs::read_to_string(&out).unwrap(), "redirected\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nonzero_exit_fails() {
        let spec = CommandSpec::new(vec!["false".into()]);
        let err = run_command(&spec).unwrap_err();
        assert!(matches!(err, TaskError::Failed(_)));
        assert!(err.to_string().contains("exited with code 1"), "{err}");
    }

    #[test]
    fn missing_program_fails() {
        let spec = CommandSpec::new(vec!["definitely-not-a-program-xyz".into()]);
        let err = run_command(&spec).unwrap_err();
        assert!(err.to_string().contains("cannot spawn"), "{err}");
        assert!(run_command(&CommandSpec::default()).is_err());
    }

    #[test]
    fn env_and_cwd_apply() {
        let dir = tmpdir("env");
        let spec = CommandSpec {
            argv: vec!["sh".into(), "-c".into(), "echo $PARSL_TEST_VAR; pwd".into()],
            env: vec![("PARSL_TEST_VAR".into(), "marker42".into())],
            cwd: Some(dir.clone()),
            ..Default::default()
        };
        let v = run_command(&spec).unwrap();
        let out = v["stdout"].as_str().unwrap();
        assert!(out.contains("marker42"));
        assert!(out.contains(dir.file_name().unwrap().to_str().unwrap()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn render_quotes_spaces() {
        let spec = CommandSpec {
            argv: vec!["echo".into(), "two words".into()],
            stdout: Some("/tmp/o".into()),
            ..Default::default()
        };
        assert_eq!(spec.render(), "echo 'two words' > /tmp/o");
    }

    #[test]
    fn command_app_body() {
        let body = CommandApp::new(|vals| {
            Ok(CommandSpec::new(vec![
                "echo".into(),
                vals[0].to_display_string(),
            ]))
        });
        let v = body(&[Value::str("from-body")]).unwrap();
        assert_eq!(v["stdout"].as_str(), Some("from-body\n"));
    }

    #[test]
    fn fn_app_body() {
        let body = FnApp::new(|vals| Ok(Value::Int(vals.iter().filter_map(|v| v.as_int()).sum())));
        assert_eq!(
            body(&[Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(5)
        );
    }
}
