//! DataFlowKernel configuration.

use crate::htex::HtexConfig;
use crate::provider::Provider;
use rand::Rng;
use std::sync::Arc;
use std::time::Duration;

/// Which executor the kernel runs tasks on.
pub enum ExecutorChoice {
    /// In-process thread pool (the paper's single-node configuration).
    ThreadPool {
        /// Worker thread count.
        workers: usize,
    },
    /// The pilot-job HighThroughputExecutor over a provider.
    Htex {
        /// Executor settings.
        config: HtexConfig,
        /// Source of compute nodes.
        provider: Arc<dyn Provider>,
    },
}

/// How failed attempts are retried — Parsl's `retries=` plus an
/// exponential-backoff schedule and an optional per-attempt walltime.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Re-run a failed task up to this many times before giving up.
    pub max_retries: usize,
    /// Delay before the first retry (0 = retry immediately).
    pub initial_backoff: Duration,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Randomize each delay by ±this fraction, de-synchronizing retry
    /// storms after a node loss.
    pub jitter_frac: f64,
    /// Kill an attempt that runs longer than this with
    /// [`crate::error::TaskError::Timeout`] (None = unlimited).
    pub walltime: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 0,
            initial_backoff: Duration::ZERO,
            multiplier: 2.0,
            max_backoff: Duration::from_secs(30),
            jitter_frac: 0.1,
            walltime: None,
        }
    }
}

impl RetryPolicy {
    /// `n` retries, no backoff — Parsl's plain `retries=n`.
    pub fn retries(n: usize) -> Self {
        Self {
            max_retries: n,
            ..Self::default()
        }
    }

    /// The jittered delay before retry number `retry_index` (1-based):
    /// `initial_backoff * multiplier^(retry_index-1)`, capped at
    /// `max_backoff`, then scaled by a random factor in
    /// `[1-jitter_frac, 1+jitter_frac]`.
    pub fn backoff_for(&self, retry_index: usize) -> Duration {
        if self.initial_backoff.is_zero() || retry_index == 0 {
            return Duration::ZERO;
        }
        let growth = self
            .multiplier
            .max(1.0)
            .powi(retry_index.saturating_sub(1) as i32);
        let base =
            (self.initial_backoff.as_secs_f64() * growth).min(self.max_backoff.as_secs_f64());
        let jitter = if self.jitter_frac > 0.0 {
            1.0 + rand::thread_rng().gen_range(-self.jitter_frac..self.jitter_frac)
        } else {
            1.0
        };
        Duration::from_secs_f64((base * jitter).max(0.0))
    }
}

/// Kernel configuration (a small subset of Parsl's `Config`).
pub struct Config {
    /// Executor choice.
    pub executor: ExecutorChoice,
    /// Retry, backoff, and walltime behaviour.
    pub retry: RetryPolicy,
    /// App memoization (Parsl's `memoize=True`): a task whose label and
    /// resolved input values match a previously *successful* task returns
    /// the cached result without re-executing.
    pub memoize: bool,
    /// Label for logs.
    pub label: String,
    /// Observability: span/metric/lineage recording and trace export
    /// (disabled by default — every record path stays a single branch).
    pub monitoring: obs::ObsConfig,
}

impl Config {
    /// Local thread pool with `workers` threads, no retries.
    pub fn local_threads(workers: usize) -> Self {
        Self {
            executor: ExecutorChoice::ThreadPool { workers },
            retry: RetryPolicy::default(),
            memoize: false,
            label: "local".to_string(),
            monitoring: obs::ObsConfig::default(),
        }
    }

    /// HTEX over a provider.
    pub fn htex(config: HtexConfig, provider: Arc<dyn Provider>) -> Self {
        Self {
            executor: ExecutorChoice::Htex { config, provider },
            retry: RetryPolicy::default(),
            memoize: false,
            label: "htex".to_string(),
            monitoring: obs::ObsConfig::default(),
        }
    }

    /// Set the retry count (keeping the rest of the policy).
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retry.max_retries = retries;
        self
    }

    /// Replace the whole retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Set a per-attempt walltime limit.
    pub fn with_walltime(mut self, walltime: Duration) -> Self {
        self.retry.walltime = Some(walltime);
        self
    }

    /// Enable app memoization.
    pub fn with_memoization(mut self) -> Self {
        self.memoize = true;
        self
    }

    /// Configure observability (spans, metrics, lineage, trace export).
    pub fn with_monitoring(mut self, monitoring: obs::ObsConfig) -> Self {
        self.monitoring = monitoring;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = Config::local_threads(8).with_retries(2);
        assert_eq!(c.retry.max_retries, 2);
        assert!(matches!(
            c.executor,
            ExecutorChoice::ThreadPool { workers: 8 }
        ));
        let c = Config::local_threads(1).with_walltime(Duration::from_secs(5));
        assert_eq!(c.retry.walltime, Some(Duration::from_secs(5)));
        let c = Config::local_threads(1).with_monitoring(obs::ObsConfig::on());
        assert!(c.monitoring.enabled);
        assert!(!Config::local_threads(1).monitoring.enabled);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            max_retries: 5,
            initial_backoff: Duration::from_millis(100),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(350),
            jitter_frac: 0.0,
            walltime: None,
        };
        assert_eq!(policy.backoff_for(1), Duration::from_millis(100));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(200));
        // 400ms caps to 350ms.
        assert_eq!(policy.backoff_for(3), Duration::from_millis(350));
        assert_eq!(policy.backoff_for(10), Duration::from_millis(350));
    }

    #[test]
    fn backoff_jitter_stays_in_band() {
        let policy = RetryPolicy {
            max_retries: 1,
            initial_backoff: Duration::from_millis(100),
            multiplier: 1.0,
            max_backoff: Duration::from_secs(1),
            jitter_frac: 0.25,
            walltime: None,
        };
        for _ in 0..100 {
            let d = policy.backoff_for(1);
            assert!(d >= Duration::from_millis(75), "{d:?}");
            assert!(d <= Duration::from_millis(125), "{d:?}");
        }
    }

    #[test]
    fn zero_backoff_is_immediate() {
        let policy = RetryPolicy::retries(3);
        assert_eq!(policy.backoff_for(1), Duration::ZERO);
        assert_eq!(policy.backoff_for(3), Duration::ZERO);
    }
}
