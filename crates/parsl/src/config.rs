//! DataFlowKernel configuration.

use crate::htex::HtexConfig;
use crate::provider::Provider;
use std::sync::Arc;

/// Which executor the kernel runs tasks on.
pub enum ExecutorChoice {
    /// In-process thread pool (the paper's single-node configuration).
    ThreadPool {
        /// Worker thread count.
        workers: usize,
    },
    /// The pilot-job HighThroughputExecutor over a provider.
    Htex {
        /// Executor settings.
        config: HtexConfig,
        /// Source of compute nodes.
        provider: Arc<dyn Provider>,
    },
}

/// Kernel configuration (a small subset of Parsl's `Config`).
pub struct Config {
    /// Executor choice.
    pub executor: ExecutorChoice,
    /// How many times to re-run a failed task before giving up.
    pub retries: usize,
    /// App memoization (Parsl's `memoize=True`): a task whose label and
    /// resolved input values match a previously *successful* task returns
    /// the cached result without re-executing.
    pub memoize: bool,
    /// Label for logs.
    pub label: String,
}

impl Config {
    /// Local thread pool with `workers` threads, no retries.
    pub fn local_threads(workers: usize) -> Self {
        Self {
            executor: ExecutorChoice::ThreadPool { workers },
            retries: 0,
            memoize: false,
            label: "local".to_string(),
        }
    }

    /// HTEX over a provider.
    pub fn htex(config: HtexConfig, provider: Arc<dyn Provider>) -> Self {
        Self {
            executor: ExecutorChoice::Htex { config, provider },
            retries: 0,
            memoize: false,
            label: "htex".to_string(),
        }
    }

    /// Set the retry count.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Enable app memoization.
    pub fn with_memoization(mut self) -> Self {
        self.memoize = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = Config::local_threads(8).with_retries(2);
        assert_eq!(c.retries, 2);
        assert!(matches!(c.executor, ExecutorChoice::ThreadPool { workers: 8 }));
    }
}
