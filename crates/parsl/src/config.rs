//! DataFlowKernel configuration.

use crate::htex::HtexConfig;
use crate::provider::Provider;
use rand::Rng;
use std::sync::Arc;
use std::time::Duration;

/// Which executor the kernel runs tasks on.
pub enum ExecutorChoice {
    /// In-process thread pool (the paper's single-node configuration).
    ThreadPool {
        /// Worker thread count.
        workers: usize,
    },
    /// The pilot-job HighThroughputExecutor over a provider.
    Htex {
        /// Executor settings.
        config: HtexConfig,
        /// Source of compute nodes.
        provider: Arc<dyn Provider>,
    },
}

/// How failed attempts are retried — Parsl's `retries=` plus an
/// exponential-backoff schedule and an optional per-attempt walltime.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Re-run a failed task up to this many times before giving up.
    pub max_retries: usize,
    /// Delay before the first retry (0 = retry immediately).
    pub initial_backoff: Duration,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Randomize each delay by ±this fraction, de-synchronizing retry
    /// storms after a node loss.
    pub jitter_frac: f64,
    /// Kill an attempt that runs longer than this with
    /// [`crate::error::TaskError::Timeout`] (None = unlimited).
    pub walltime: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 0,
            initial_backoff: Duration::ZERO,
            multiplier: 2.0,
            max_backoff: Duration::from_secs(30),
            jitter_frac: 0.1,
            walltime: None,
        }
    }
}

impl RetryPolicy {
    /// `n` retries, no backoff — Parsl's plain `retries=n`.
    pub fn retries(n: usize) -> Self {
        Self {
            max_retries: n,
            ..Self::default()
        }
    }

    /// Reject policies that would misbehave at retry time: `jitter_frac`
    /// outside `[0, 1]` (a negative value would make the jitter range
    /// empty, and > 1 could scale a delay negative), non-finite floats,
    /// and a growth factor below zero. Config loaders call this so bad
    /// user YAML fails at load with a clear message instead of panicking
    /// mid-retry-storm.
    pub fn validate(&self) -> Result<(), String> {
        if !self.jitter_frac.is_finite() || !(0.0..=1.0).contains(&self.jitter_frac) {
            return Err(format!(
                "retry.jitter must be a finite fraction in [0, 1], got {}",
                self.jitter_frac
            ));
        }
        if !self.multiplier.is_finite() || self.multiplier < 0.0 {
            return Err(format!(
                "retry.multiplier must be a finite non-negative number, got {}",
                self.multiplier
            ));
        }
        Ok(())
    }

    /// The jittered delay before retry number `retry_index` (1-based):
    /// `initial_backoff * multiplier^(retry_index-1)`, capped at
    /// `max_backoff`, then scaled by a random factor in
    /// `[1-jitter_frac, 1+jitter_frac]` drawn from the thread-local RNG.
    ///
    /// Nondeterministic by design (retry storms across a fleet must
    /// de-synchronize); the kernel itself always goes through
    /// [`Self::backoff_for_seeded`] so a seeded run replays the exact same
    /// backoff schedule.
    pub fn backoff_for(&self, retry_index: usize) -> Duration {
        self.backoff_with(retry_index, |frac| {
            rand::thread_rng().gen_range(-frac..frac)
        })
    }

    /// [`Self::backoff_for`] with the jitter drawn from a seeded RNG:
    /// identical `(policy, seed, call sequence)` ⇒ identical delays, the
    /// property the deterministic simulation harness asserts on.
    pub fn backoff_for_seeded(&self, retry_index: usize, rng: &mut simtest::SimRng) -> Duration {
        self.backoff_with(retry_index, |frac| rng.gen_range_f64(-frac, frac))
    }

    /// Defensive against policies built without [`Self::validate`]: a
    /// non-finite or out-of-range `jitter_frac` is clamped into `[0, 1]`
    /// here rather than handed to the jitter draw (where a negative
    /// fraction makes the range empty — a panic for `thread_rng`).
    fn backoff_with(&self, retry_index: usize, draw: impl FnOnce(f64) -> f64) -> Duration {
        if self.initial_backoff.is_zero() || retry_index == 0 {
            return Duration::ZERO;
        }
        let growth = self
            .multiplier
            .max(1.0)
            .powi(retry_index.saturating_sub(1) as i32);
        let base =
            (self.initial_backoff.as_secs_f64() * growth).min(self.max_backoff.as_secs_f64());
        let frac = if self.jitter_frac.is_finite() {
            self.jitter_frac.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let jitter = if frac > 0.0 { 1.0 + draw(frac) } else { 1.0 };
        let secs = (base * jitter).max(0.0);
        Duration::from_secs_f64(if secs.is_finite() { secs } else { 0.0 })
    }
}

/// Static capacity of a configured executor, introspected *before* any
/// node is provisioned — input to the pre-run feasibility analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capacity {
    /// Nodes the executor will hold (1 for the thread pool).
    pub nodes: usize,
    /// Worker slots per node.
    pub workers_per_node: usize,
    /// Cores a single node offers, when the provider can say statically.
    pub cores_per_node: Option<usize>,
    /// RAM (GiB) a single node offers, when known.
    pub mem_gib_per_node: Option<usize>,
}

impl Capacity {
    /// Total concurrent task slots.
    pub fn total_slots(&self) -> usize {
        self.nodes.max(1) * self.workers_per_node.max(1)
    }
}

/// Kernel configuration (a small subset of Parsl's `Config`).
pub struct Config {
    /// Executor choice.
    pub executor: ExecutorChoice,
    /// Retry, backoff, and walltime behaviour.
    pub retry: RetryPolicy,
    /// App memoization (Parsl's `memoize=True`): a task whose label and
    /// resolved input values match a previously *successful* task returns
    /// the cached result without re-executing.
    pub memoize: bool,
    /// Label for logs.
    pub label: String,
    /// Observability: span/metric/lineage recording and trace export
    /// (disabled by default — every record path stays a single branch).
    pub monitoring: obs::ObsConfig,
    /// Checkpoint journal: when set, every successful non-memoized task
    /// completion is appended to it, and the kernel forces memoization on
    /// (checkpointing *is* durable memoization — Parsl's model). Seed the
    /// memo table from a loaded journal with
    /// [`crate::DataFlowKernel::seed_checkpoint`].
    pub checkpoint: Option<Arc<ckpt::Journal>>,
    /// Time source for every kernel-side sleep and timestamp (retry
    /// backoff, heartbeats, monitoring). The process-wide real clock by
    /// default; a [`simtest::VirtualClock`] under the deterministic
    /// simulation harness. Propagated into the HTEX executor when the
    /// kernel starts it.
    pub clock: simtest::ClockRef,
    /// Seed for the kernel's RNG (retry jitter). `None` (the default)
    /// seeds from entropy; `Some(s)` makes the backoff schedule a pure
    /// function of the seed, for replayable simulation runs.
    pub seed: Option<u64>,
    /// Dispatch gate for multi-run service scheduling: when set, every
    /// *tagged* task whose dependencies are met is offered to the gate
    /// instead of dispatching straight to the executor, so a fair-share
    /// scheduler can decide which run's tasks go next. Untagged tasks
    /// bypass the gate.
    pub gate: Option<Arc<dyn crate::dfk::DispatchGate>>,
}

impl Config {
    /// Local thread pool with `workers` threads, no retries.
    pub fn local_threads(workers: usize) -> Self {
        Self {
            executor: ExecutorChoice::ThreadPool { workers },
            retry: RetryPolicy::default(),
            memoize: false,
            label: "local".to_string(),
            monitoring: obs::ObsConfig::default(),
            checkpoint: None,
            clock: simtest::real_clock(),
            seed: None,
            gate: None,
        }
    }

    /// HTEX over a provider.
    pub fn htex(config: HtexConfig, provider: Arc<dyn Provider>) -> Self {
        Self {
            executor: ExecutorChoice::Htex { config, provider },
            retry: RetryPolicy::default(),
            memoize: false,
            label: "htex".to_string(),
            monitoring: obs::ObsConfig::default(),
            checkpoint: None,
            clock: simtest::real_clock(),
            seed: None,
            gate: None,
        }
    }

    /// Set the retry count (keeping the rest of the policy).
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retry.max_retries = retries;
        self
    }

    /// Replace the whole retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Set a per-attempt walltime limit.
    pub fn with_walltime(mut self, walltime: Duration) -> Self {
        self.retry.walltime = Some(walltime);
        self
    }

    /// Enable app memoization.
    pub fn with_memoization(mut self) -> Self {
        self.memoize = true;
        self
    }

    /// Configure observability (spans, metrics, lineage, trace export).
    pub fn with_monitoring(mut self, monitoring: obs::ObsConfig) -> Self {
        self.monitoring = monitoring;
        self
    }

    /// Attach a checkpoint journal (implies memoization).
    pub fn with_checkpoint(mut self, journal: Arc<ckpt::Journal>) -> Self {
        self.checkpoint = Some(journal);
        self
    }

    /// Route tagged-task dispatch through a [`crate::dfk::DispatchGate`]
    /// (the multi-run service's fair-share scheduler).
    pub fn with_gate(mut self, gate: Arc<dyn crate::dfk::DispatchGate>) -> Self {
        self.gate = Some(gate);
        self
    }

    /// Run the kernel (and any HTEX it starts) on an explicit clock.
    pub fn with_clock(mut self, clock: simtest::ClockRef) -> Self {
        self.clock = clock;
        self
    }

    /// Seed the kernel's RNG so retry jitter is reproducible.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Static capacity of the configured executor, for pre-run feasibility
    /// checks. Provisions nothing; provider knowledge comes from
    /// [`Provider::node_capacity_hint`].
    pub fn capacity(&self) -> Capacity {
        match &self.executor {
            ExecutorChoice::ThreadPool { workers } => {
                let host = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4);
                Capacity {
                    nodes: 1,
                    workers_per_node: (*workers).max(1),
                    cores_per_node: Some(host),
                    mem_gib_per_node: None,
                }
            }
            ExecutorChoice::Htex { config, provider } => {
                let hint = provider.node_capacity_hint();
                let cores = hint.map(|(c, _)| c);
                let mem = hint.and_then(|(_, m)| if m > 0 { Some(m) } else { None });
                let wpn = if config.workers_per_node > 0 {
                    config.workers_per_node
                } else {
                    cores.unwrap_or(1)
                };
                Capacity {
                    nodes: config.nodes.max(1),
                    workers_per_node: wpn.max(1),
                    cores_per_node: cores,
                    mem_gib_per_node: mem,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = Config::local_threads(8).with_retries(2);
        assert_eq!(c.retry.max_retries, 2);
        assert!(matches!(
            c.executor,
            ExecutorChoice::ThreadPool { workers: 8 }
        ));
        let c = Config::local_threads(1).with_walltime(Duration::from_secs(5));
        assert_eq!(c.retry.walltime, Some(Duration::from_secs(5)));
        let c = Config::local_threads(1).with_monitoring(obs::ObsConfig::on());
        assert!(c.monitoring.enabled);
        assert!(!Config::local_threads(1).monitoring.enabled);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            max_retries: 5,
            initial_backoff: Duration::from_millis(100),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(350),
            jitter_frac: 0.0,
            walltime: None,
        };
        assert_eq!(policy.backoff_for(1), Duration::from_millis(100));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(200));
        // 400ms caps to 350ms.
        assert_eq!(policy.backoff_for(3), Duration::from_millis(350));
        assert_eq!(policy.backoff_for(10), Duration::from_millis(350));
    }

    #[test]
    fn backoff_jitter_stays_in_band() {
        let policy = RetryPolicy {
            max_retries: 1,
            initial_backoff: Duration::from_millis(100),
            multiplier: 1.0,
            max_backoff: Duration::from_secs(1),
            jitter_frac: 0.25,
            walltime: None,
        };
        for _ in 0..100 {
            let d = policy.backoff_for(1);
            assert!(d >= Duration::from_millis(75), "{d:?}");
            assert!(d <= Duration::from_millis(125), "{d:?}");
        }
    }

    #[test]
    fn negative_jitter_does_not_panic() {
        // Regression: a negative jitter_frac made `gen_range(-j..j)` an
        // empty range. backoff_for must clamp, not panic.
        let policy = RetryPolicy {
            max_retries: 1,
            initial_backoff: Duration::from_millis(50),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter_frac: -0.5,
            walltime: None,
        };
        assert_eq!(policy.backoff_for(1), Duration::from_millis(50));
        let nan = RetryPolicy {
            jitter_frac: f64::NAN,
            initial_backoff: Duration::from_millis(50),
            ..policy.clone()
        };
        assert_eq!(nan.backoff_for(1), Duration::from_millis(50));
    }

    #[test]
    fn validate_rejects_bad_policies() {
        let ok = RetryPolicy::default();
        assert!(ok.validate().is_ok());
        for bad_jitter in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let p = RetryPolicy {
                jitter_frac: bad_jitter,
                ..RetryPolicy::default()
            };
            let err = p.validate().unwrap_err();
            assert!(err.contains("retry.jitter"), "{err}");
        }
        let p = RetryPolicy {
            multiplier: -2.0,
            ..RetryPolicy::default()
        };
        assert!(p.validate().unwrap_err().contains("retry.multiplier"));
    }

    #[test]
    fn thread_pool_capacity() {
        let cap = Config::local_threads(6).capacity();
        assert_eq!(cap.nodes, 1);
        assert_eq!(cap.workers_per_node, 6);
        assert_eq!(cap.total_slots(), 6);
        assert!(cap.cores_per_node.is_some());
        assert!(cap.mem_gib_per_node.is_none());
    }

    #[test]
    fn htex_capacity_uses_provider_hint() {
        use crate::htex::HtexConfig;
        use crate::provider::LocalProvider;
        let htex = HtexConfig {
            nodes: 3,
            workers_per_node: 0, // one per core
            ..HtexConfig::default()
        };
        let cap = Config::htex(htex, Arc::new(LocalProvider::new(4))).capacity();
        assert_eq!(cap.nodes, 3);
        assert_eq!(cap.workers_per_node, 4);
        assert_eq!(cap.total_slots(), 12);
        assert_eq!(cap.cores_per_node, Some(4));
        assert_eq!(cap.mem_gib_per_node, None); // local provider: mem unknown
    }

    #[test]
    fn zero_backoff_is_immediate() {
        let policy = RetryPolicy::retries(3);
        assert_eq!(policy.backoff_for(1), Duration::ZERO);
        assert_eq!(policy.backoff_for(3), Duration::ZERO);
    }

    /// The seeded path must be a pure function of (policy, seed, call
    /// sequence) — two RNGs with the same seed replay byte-identical
    /// backoff schedules, across the full boundary grid of jitter and
    /// multiplier values.
    #[test]
    fn seeded_backoff_identical_for_identical_seeds() {
        for jitter in [0.0, 0.001, 0.5, 1.0] {
            for multiplier in [0.0, 1.0, 2.0, 1e6] {
                let policy = RetryPolicy {
                    max_retries: 8,
                    initial_backoff: Duration::from_millis(10),
                    multiplier,
                    max_backoff: Duration::from_secs(5),
                    jitter_frac: jitter,
                    walltime: None,
                };
                for seed in [0u64, 1, 42, u64::MAX] {
                    let mut a = simtest::SimRng::seeded(seed);
                    let mut b = simtest::SimRng::seeded(seed);
                    let seq_a: Vec<Duration> = (0..8)
                        .map(|i| policy.backoff_for_seeded(i, &mut a))
                        .collect();
                    let seq_b: Vec<Duration> = (0..8)
                        .map(|i| policy.backoff_for_seeded(i, &mut b))
                        .collect();
                    assert_eq!(
                        seq_a, seq_b,
                        "jitter={jitter} multiplier={multiplier} seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_backoff_differs_across_seeds() {
        let policy = RetryPolicy {
            max_retries: 4,
            initial_backoff: Duration::from_millis(100),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(30),
            jitter_frac: 0.5,
            walltime: None,
        };
        let mut a = simtest::SimRng::seeded(1);
        let mut b = simtest::SimRng::seeded(2);
        let seq_a: Vec<Duration> = (1..8)
            .map(|i| policy.backoff_for_seeded(i, &mut a))
            .collect();
        let seq_b: Vec<Duration> = (1..8)
            .map(|i| policy.backoff_for_seeded(i, &mut b))
            .collect();
        assert_ne!(seq_a, seq_b);
    }

    /// Boundary values through the seeded path: jitter 0 and 1, multiplier
    /// 0 (clamped to 1) and exactly 1 — delays stay in band and never
    /// panic, matching the thread-rng path's clamping semantics.
    #[test]
    fn seeded_backoff_boundary_values_stay_in_band() {
        let mut rng = simtest::SimRng::seeded(7);
        // jitter_frac == 1.0: band is [0, 2*base].
        let full = RetryPolicy {
            max_retries: 1,
            initial_backoff: Duration::from_millis(100),
            multiplier: 1.0,
            max_backoff: Duration::from_secs(1),
            jitter_frac: 1.0,
            walltime: None,
        };
        for _ in 0..200 {
            let d = full.backoff_for_seeded(1, &mut rng);
            assert!(d <= Duration::from_millis(200), "{d:?}");
        }
        // jitter_frac == 0.0: exact, regardless of the RNG state.
        let exact = RetryPolicy {
            jitter_frac: 0.0,
            ..full.clone()
        };
        assert_eq!(
            exact.backoff_for_seeded(1, &mut rng),
            Duration::from_millis(100)
        );
        // multiplier 0 clamps to 1 (no shrink), multiplier 1 is flat.
        for m in [0.0, 1.0] {
            let flat = RetryPolicy {
                multiplier: m,
                jitter_frac: 0.0,
                ..full.clone()
            };
            assert_eq!(
                flat.backoff_for_seeded(5, &mut rng),
                Duration::from_millis(100)
            );
        }
        // Out-of-range jitter is clamped, not panicked on, exactly like the
        // thread-rng path.
        let bad = RetryPolicy {
            jitter_frac: -0.5,
            ..full.clone()
        };
        assert_eq!(
            bad.backoff_for_seeded(1, &mut rng),
            Duration::from_millis(100)
        );
        let nan = RetryPolicy {
            jitter_frac: f64::NAN,
            ..full
        };
        assert_eq!(
            nan.backoff_for_seeded(1, &mut rng),
            Duration::from_millis(100)
        );
    }
}
