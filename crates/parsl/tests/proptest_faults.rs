//! Property test: killing any single HTEX node at a random point, with at
//! least one retry configured, never changes workflow results — re-dispatch
//! plus retries make node loss invisible to the caller.

use gridsim::{FaultPlan, LatencyModel};
use parsl::{AppArg, Config, DataFlowKernel, FnApp, HtexConfig, LocalProvider, RetryPolicy};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use yamlite::Value;

/// Run `tasks` independent tasks on an HTEX where `victim` is scripted to
/// die after `kill_after` task arrivals. Returns the outputs in submit
/// order plus how many nodes were actually lost.
fn run_with_fault(
    nodes: usize,
    victim: usize,
    kill_after: usize,
    tasks: usize,
) -> (Vec<i64>, usize) {
    let plan = FaultPlan::new().kill_after_tasks(format!("localhost/{victim}"), kill_after);
    let dfk = DataFlowKernel::try_new(
        Config::htex(
            HtexConfig {
                label: "prop-fault".into(),
                nodes,
                workers_per_node: 1,
                latency: LatencyModel::in_process(),
                heartbeat_period: Duration::from_millis(5),
                heartbeat_threshold: Duration::from_millis(50),
                min_nodes: 0,
                fault_plan: Some(plan),
                // Mid-batch kills must be as invisible as per-task ones.
                batch_size: 3,
                ..HtexConfig::default()
            },
            Arc::new(LocalProvider::new(1)),
        )
        .with_retry_policy(RetryPolicy::retries(2)),
    )
    .unwrap();
    let body = FnApp::new(|vals: &[Value]| {
        std::thread::sleep(Duration::from_millis(2));
        Ok(Value::Int(vals[0].as_int().unwrap() * 3 + 1))
    });
    let futs: Vec<_> = (0..tasks)
        .map(|i| dfk.submit("t", vec![AppArg::value(i as i64)], body.clone()))
        .collect();
    let got = futs
        .iter()
        .map(|f| {
            f.result()
                .expect("task survives node loss")
                .as_int()
                .unwrap()
        })
        .collect();
    let lost = dfk.monitoring().fault_summary().nodes_lost.len();
    dfk.shutdown();
    (got, lost)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn single_node_kill_never_corrupts_results(
        nodes in 2usize..4,
        victim_seed in 0usize..97,
        kill_after in 0usize..4,
        tasks in 6usize..18,
    ) {
        let victim = victim_seed % nodes;
        let (got, lost) = run_with_fault(nodes, victim, kill_after, tasks);
        let expected: Vec<i64> = (0..tasks as i64).map(|i| i * 3 + 1).collect();
        prop_assert_eq!(got, expected);
        // A node can only die if enough tasks reached it; never more than
        // the one scripted victim either way.
        prop_assert!(lost <= 1);
    }
}
