//! Property test: random layered DAGs executed through the DataFlowKernel
//! must produce exactly the values a sequential reference evaluation gives,
//! regardless of executor interleaving.

use parsl::{AppArg, Config, DataFlowKernel, FnApp, ObsConfig};
use proptest::prelude::*;
use yamlite::Value;

/// A generated DAG: layers of nodes; each node sums a constant plus the
/// results of up to 3 upstream nodes from earlier layers.
#[derive(Debug, Clone)]
struct DagSpec {
    /// For each node: (constant, upstream node indices).
    nodes: Vec<(i64, Vec<usize>)>,
}

fn dag_strategy() -> impl Strategy<Value = DagSpec> {
    // Build 2..5 layers with 1..5 nodes each; edges point to any earlier node.
    proptest::collection::vec(1usize..5, 2..5)
        .prop_flat_map(|layer_sizes| {
            let total: usize = layer_sizes.iter().sum();
            let mut layer_of = Vec::with_capacity(total);
            for (layer_idx, sz) in layer_sizes.iter().enumerate() {
                for _ in 0..*sz {
                    layer_of.push(layer_idx);
                }
            }
            let node_strats: Vec<_> = (0..total)
                .map(|i| {
                    let earlier: Vec<usize> =
                        (0..i).filter(|j| layer_of[*j] < layer_of[i]).collect();
                    let deps = if earlier.is_empty() {
                        Just(Vec::new()).boxed()
                    } else {
                        proptest::collection::vec(proptest::sample::select(earlier), 0..3usize)
                            .boxed()
                    };
                    (-100i64..100, deps)
                })
                .collect();
            node_strats
        })
        .prop_map(|nodes| DagSpec { nodes })
}

/// Sequential reference evaluation.
fn reference(dag: &DagSpec) -> Vec<i64> {
    let mut vals = Vec::with_capacity(dag.nodes.len());
    for (constant, deps) in &dag.nodes {
        let mut v = *constant;
        for d in deps {
            v += vals[*d];
        }
        vals.push(v);
    }
    vals
}

fn run_on_kernel(dag: &DagSpec, workers: usize) -> Vec<i64> {
    let dfk = DataFlowKernel::new(Config::local_threads(workers));
    let body = FnApp::new(|vals: &[Value]| {
        let mut total = 0i64;
        for v in vals {
            total += v.as_int().expect("int inputs");
        }
        Ok(Value::Int(total))
    });
    let mut futs = Vec::with_capacity(dag.nodes.len());
    for (constant, deps) in &dag.nodes {
        let mut args = vec![AppArg::value(*constant)];
        for d in deps {
            let f: &parsl::AppFuture = &futs[*d];
            args.push(AppArg::future(f));
        }
        futs.push(dfk.submit("node", args, body.clone()));
    }
    let out: Vec<i64> = futs
        .iter()
        .map(|f| f.result().expect("task ok").as_int().expect("int"))
        .collect();
    dfk.shutdown();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dag_execution_matches_reference(dag in dag_strategy(), workers in 1usize..6) {
        let expected = reference(&dag);
        let got = run_on_kernel(&dag, workers);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn dag_with_memoization_matches_reference(dag in dag_strategy()) {
        // Memoization may collapse identical (label, inputs) pairs but must
        // never change any node's value.
        let expected = reference(&dag);
        let dfk = DataFlowKernel::new(Config::local_threads(4).with_memoization());
        let body = FnApp::new(|vals: &[Value]| {
            Ok(Value::Int(vals.iter().filter_map(Value::as_int).sum()))
        });
        let mut futs = Vec::with_capacity(dag.nodes.len());
        for (constant, deps) in &dag.nodes {
            let mut args = vec![AppArg::value(*constant)];
            for d in deps {
                let f: &parsl::AppFuture = &futs[*d];
                args.push(AppArg::future(f));
            }
            futs.push(dfk.submit("node", args, body.clone()));
        }
        let got: Vec<i64> = futs
            .iter()
            .map(|f| f.result().expect("task ok").as_int().expect("int"))
            .collect();
        dfk.shutdown();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn dag_lineage_records_every_task_exactly_once(dag in dag_strategy(), workers in 1usize..6) {
        // With monitoring on, the lineage table must hold one record per
        // submitted task — no drops, no duplicates — and each record's
        // timestamps must respect submit ≤ dispatch ≤ complete.
        let dfk = DataFlowKernel::new(
            Config::local_threads(workers).with_monitoring(ObsConfig::on()),
        );
        let obs = dfk.observability().clone();
        let body = FnApp::new(|vals: &[Value]| {
            Ok(Value::Int(vals.iter().filter_map(Value::as_int).sum()))
        });
        let mut futs = Vec::with_capacity(dag.nodes.len());
        for (i, (constant, deps)) in dag.nodes.iter().enumerate() {
            let mut args = vec![AppArg::value(*constant)];
            for d in deps {
                let f: &parsl::AppFuture = &futs[*d];
                args.push(AppArg::future(f));
            }
            futs.push(dfk.submit(&format!("node{i}"), args, body.clone()));
        }
        for f in &futs {
            f.result().expect("task ok");
        }
        dfk.shutdown();

        let mut records = obs.lineage_records();
        prop_assert_eq!(records.len(), dag.nodes.len(), "one record per task");
        records.sort_by_key(|r| r.task);
        let mut labels: Vec<&str> = records.iter().map(|r| r.label.as_str()).collect();
        labels.sort_unstable();
        let mut expected_labels: Vec<String> =
            (0..dag.nodes.len()).map(|i| format!("node{i}")).collect();
        expected_labels.sort_unstable();
        prop_assert_eq!(
            labels,
            expected_labels.iter().map(String::as_str).collect::<Vec<_>>()
        );
        for w in records.windows(2) {
            prop_assert!(w[0].task < w[1].task, "task ids are unique");
        }
        for r in &records {
            prop_assert_eq!(r.outcome.as_deref(), Some("completed"), "{}", r.label);
            prop_assert_eq!(r.attempts, 1, "{}", r.label);
            prop_assert!(
                r.submit_us <= r.dispatch_us && r.dispatch_us <= r.complete_us,
                "{}: submit {} ≤ dispatch {} ≤ complete {}",
                r.label, r.submit_us, r.dispatch_us, r.complete_us
            );
        }
    }
}
