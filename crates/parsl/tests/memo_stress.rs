//! Stress and equivalence tests for the sharded memoization table.
//!
//! The memo table is sharded by input fingerprint and shared by every
//! thread that completes tasks, so it must stay correct when hammered from
//! many submitters at once — and memoization must never change *what* a
//! workflow computes, only how often bodies run.

use parsl::{AppArg, Config, DataFlowKernel, FnApp, TaskError};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use yamlite::Value;

/// Eight OS threads submit overlapping and distinct keys concurrently;
/// after a sequential warm-up wave every shared key must be answered from
/// the memo without a single extra execution.
#[test]
fn eight_threads_hammer_sharded_memo() {
    const THREADS: usize = 8;
    const SHARED_KEYS: usize = 32;
    let dfk = DataFlowKernel::new(Config::local_threads(4).with_memoization());
    let executions = Arc::new(AtomicUsize::new(0));
    let body = {
        let executions = executions.clone();
        FnApp::new(move |vals: &[Value]| {
            executions.fetch_add(1, Ordering::SeqCst);
            Ok(Value::Int(vals[0].as_int().unwrap() * 7))
        })
    };

    // Wave 1 (sequential): populate every shared key exactly once.
    for k in 0..SHARED_KEYS {
        let f = dfk.submit("shared", vec![AppArg::value(k as i64)], body.clone());
        assert_eq!(f.result().unwrap(), Value::Int(k as i64 * 7));
    }
    assert_eq!(executions.load(Ordering::SeqCst), SHARED_KEYS);

    // Wave 2: eight threads re-submit every shared key (pure hits) while
    // also submitting thread-private keys (pure misses), all racing on the
    // same shards.
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let dfk = dfk.clone();
            let body = body.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let mut futs = Vec::new();
                for k in 0..SHARED_KEYS {
                    futs.push((
                        k as i64 * 7,
                        dfk.submit("shared", vec![AppArg::value(k as i64)], body.clone()),
                    ));
                    let private = 1_000 + (t * SHARED_KEYS + k) as i64;
                    futs.push((
                        private * 7,
                        dfk.submit("shared", vec![AppArg::value(private)], body.clone()),
                    ));
                }
                for (want, f) in futs {
                    assert_eq!(f.result().unwrap(), Value::Int(want));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    dfk.wait_all();

    // Shared keys were all warm: only the private keys executed in wave 2.
    let total = executions.load(Ordering::SeqCst);
    assert_eq!(
        total,
        SHARED_KEYS + THREADS * SHARED_KEYS,
        "shared keys must all hit"
    );
    assert_eq!(dfk.monitoring().summary().memoized, THREADS * SHARED_KEYS);
    dfk.shutdown();
}

/// Distinct labels with identical inputs land in the same shard (same
/// fingerprint) but must never collide.
#[test]
fn same_fingerprint_different_labels_do_not_collide() {
    let dfk = DataFlowKernel::new(Config::local_threads(4).with_memoization());
    let labels: Vec<String> = (0..16).map(|i| format!("label{i}")).collect();
    let handles: Vec<_> = labels
        .iter()
        .map(|label| {
            let dfk = dfk.clone();
            let label = label.clone();
            std::thread::spawn(move || {
                let tag = label.clone();
                let body = FnApp::new(move |_: &[Value]| Ok(Value::str(tag.clone())));
                for _ in 0..8 {
                    let f = dfk.submit(&label, vec![AppArg::value(42i64)], body.clone());
                    assert_eq!(f.result().unwrap(), Value::str(label.as_str()));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    dfk.shutdown();
}

/// Run a deterministic workflow and serialize every result in submit
/// order.
fn run_workflow(ops: &[(u8, i64)], memoize: bool) -> Vec<String> {
    let config = if memoize {
        Config::local_threads(4).with_memoization()
    } else {
        Config::local_threads(4)
    };
    let dfk = DataFlowKernel::new(config);
    let futs: Vec<_> = ops
        .iter()
        .map(|&(label_idx, input)| {
            let label = format!("op{}", label_idx % 4);
            let body = FnApp::new(move |vals: &[Value]| {
                let n = vals[0]
                    .as_int()
                    .ok_or_else(|| TaskError::failed("non-int input"))?;
                Ok(match label_idx % 4 {
                    0 => Value::Int(n * n),
                    1 => Value::str(format!("s{n}")),
                    2 => Value::Seq(vec![Value::Int(n), Value::Int(n + 1)]),
                    _ => Value::Bool(n % 2 == 0),
                })
            });
            dfk.submit(&label, vec![AppArg::value(input)], body)
        })
        .collect();
    let out = futs
        .iter()
        .map(|f| yamlite::to_string_flow(&f.result().unwrap()))
        .collect();
    dfk.shutdown();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Memoization is an execution-count optimization only: for any mix of
    /// repeated and distinct submissions, a memoized run produces
    /// byte-identical outputs to a non-memoized one.
    #[test]
    fn memoized_and_plain_runs_agree(
        ops in proptest::collection::vec((0u8..4, -20i64..20), 1..60)
    ) {
        let plain = run_workflow(&ops, false);
        let memoized = run_workflow(&ops, true);
        prop_assert_eq!(plain, memoized);
    }
}
