//! `obs` — workspace-wide observability.
//!
//! One [`Observability`] instance owns everything a run records:
//!
//! * **spans** ([`span`]) — typed intervals with parent/child links and
//!   monotonic timestamps covering submit → memo lookup → dispatch →
//!   batch enqueue → manager recv → worker exec → result return;
//! * **metrics** ([`metrics`]) — a sharded registry of counters, gauges,
//!   and HDR-style latency histograms under well-known names
//!   ([`metrics::names`]);
//! * **lineage** ([`lineage`]) — one record per Parsl task joining the
//!   task id to the CWL step id it implements, with
//!   submit ≤ dispatch ≤ complete timestamps and attempt counts.
//!
//! Everything is **zero-cost when disabled**: each record path starts with
//! one relaxed atomic load and bails before allocating or locking. The
//! `DataFlowKernel` owns an instance per run (test isolation); layers with
//! no handle to a kernel — the expression cache, tool dispatch, providers —
//! record against the process-wide [`global()`] instance, which is disabled
//! unless a run turns it on.
//!
//! Traces export as JSONL (read back by the `parsl-trace` CLI) and Chrome
//! `trace_event` JSON ([`export`]).

pub mod clock;
pub mod config;
pub mod export;
pub mod json;
pub mod lineage;
pub mod metrics;
pub mod report;
pub mod span;

pub use clock::RunClock;
pub use config::{ObsConfig, DEFAULT_EVENTS_CAP};
pub use lineage::LineageRecord;
pub use metrics::{names, Counter, Gauge, Histogram, MetricSnapshot, MetricValue, Registry};
pub use span::{ActiveSpan, SpanCtx, SpanKind, SpanRecord};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// One run's worth of telemetry: clock, tracer, metrics, and lineage.
pub struct Observability {
    enabled: AtomicBool,
    sample_per_mille: u32,
    config: ObsConfig,
    clock: RunClock,
    tracer: span::Tracer,
    registry: Registry,
    lineage: lineage::LineageTable,
    next_span: AtomicU64,
}

impl Observability {
    /// Build from a config (the clock anchors at this call).
    pub fn new(config: ObsConfig) -> Self {
        Self {
            enabled: AtomicBool::new(config.enabled),
            sample_per_mille: config.sample_per_mille(),
            config,
            clock: RunClock::new(),
            tracer: span::Tracer::new(),
            registry: Registry::new(),
            lineage: lineage::LineageTable::new(),
            next_span: AtomicU64::new(1),
        }
    }

    /// A disabled instance (every record path is a cheap no-op).
    pub fn off() -> Self {
        Self::new(ObsConfig::default())
    }

    /// An enabled instance with full sampling and no export.
    pub fn on() -> Self {
        Self::new(ObsConfig::on())
    }

    /// The config this instance was built from.
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// Whether recording is on. This is the single branch every record
    /// path takes first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The run clock (µs since this instance was created, monotone).
    pub fn clock(&self) -> &RunClock {
        &self.clock
    }

    /// Current run offset in µs.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Whether spans for `lineage` are sampled this run.
    #[inline]
    pub fn sampled(&self, lineage: u64) -> bool {
        if !self.is_enabled() {
            return false;
        }
        if self.sample_per_mille >= 1000 {
            return true;
        }
        // splitmix64 finalizer: decorrelates sequential task ids.
        let mut h = lineage.wrapping_add(0x9e3779b97f4a7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
        h ^= h >> 31;
        (h % 1000) < self.sample_per_mille as u64
    }

    // ---- spans ---------------------------------------------------------

    /// Open a span. Returns an inert handle when the lineage isn't
    /// sampled; the handle's `id()` is valid as a parent immediately.
    pub fn start_span(&self, kind: SpanKind, lineage: u64, parent: u64, name: &str) -> ActiveSpan {
        if !self.sampled(lineage) {
            return ActiveSpan::none();
        }
        ActiveSpan {
            id: self.next_span.fetch_add(1, Ordering::Relaxed),
            parent,
            lineage,
            kind,
            name: Some(name.to_string()),
            start_us: self.now_us(),
        }
    }

    /// Close a span and record it.
    pub fn finish_span(&self, span: ActiveSpan) {
        if span.id == 0 {
            return;
        }
        let end_us = self.now_us();
        self.tracer.push(SpanRecord {
            id: span.id,
            parent: span.parent,
            lineage: span.lineage,
            kind: span.kind,
            name: span.name.unwrap_or_default(),
            start_us: span.start_us,
            end_us,
        });
    }

    /// Record a zero-duration marker span; returns its id (0 if not
    /// sampled).
    pub fn instant_span(&self, kind: SpanKind, lineage: u64, parent: u64, name: &str) -> u64 {
        if !self.sampled(lineage) {
            return 0;
        }
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let at = self.now_us();
        self.tracer.push(SpanRecord {
            id,
            parent,
            lineage,
            kind,
            name: name.to_string(),
            start_us: at,
            end_us: at,
        });
        id
    }

    /// All recorded spans, in allocation order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.tracer.snapshot()
    }

    // ---- metrics -------------------------------------------------------

    /// The metrics registry. Handles stay valid for the instance's life.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Shorthand: get-or-create a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Shorthand: get-or-create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    /// Shorthand: get-or-create a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }

    /// Snapshot all metrics, sorted by name.
    pub fn metrics(&self) -> Vec<MetricSnapshot> {
        self.registry.snapshot()
    }

    // ---- lineage -------------------------------------------------------

    /// Record a task submission (first call per task wins).
    pub fn lineage_submit(&self, task: u64, label: &str) {
        if !self.is_enabled() {
            return;
        }
        let at = self.now_us();
        self.lineage.submit(task, label, at);
    }

    /// Record a dispatch attempt: bumps the attempt count and stamps the
    /// first dispatch time.
    pub fn lineage_dispatch(&self, task: u64) {
        if !self.is_enabled() {
            return;
        }
        let at = self.now_us();
        self.lineage.with(task, |r| {
            r.attempts += 1;
            if r.dispatch_us == 0 {
                r.dispatch_us = at;
            }
        });
    }

    /// Bind the CWL step id a task implements (the `core`/`runners`
    /// bridge join point).
    pub fn lineage_bind_step(&self, task: u64, step: &str) {
        if !self.is_enabled() {
            return;
        }
        self.lineage
            .with(task, |r| r.cwl_step = Some(step.to_string()));
    }

    /// Bind the service run a task belongs to (`tenant/run-id`), so a
    /// multi-run daemon's trace joins every task to the right submission.
    pub fn lineage_bind_run(&self, task: u64, run: &str) {
        if !self.is_enabled() {
            return;
        }
        self.lineage.with(task, |r| r.run = Some(run.to_string()));
    }

    /// Record a task reaching a terminal state.
    pub fn lineage_complete(&self, task: u64, outcome: &str) {
        if !self.is_enabled() {
            return;
        }
        let at = self.now_us();
        self.lineage.with(task, |r| {
            if r.complete_us == 0 {
                r.complete_us = at;
                r.outcome = Some(outcome.to_string());
            }
        });
    }

    /// All lineage records, in task order.
    pub fn lineage_records(&self) -> Vec<LineageRecord> {
        self.lineage.snapshot()
    }

    // ---- export --------------------------------------------------------

    /// Export per the configured sinks. No-op when disabled or when no
    /// export path is configured. Returns the JSONL path written, if any.
    pub fn export(&self) -> std::io::Result<Option<std::path::PathBuf>> {
        if !self.is_enabled() {
            return Ok(None);
        }
        let Some(path) = self.config.export_path.clone() else {
            return Ok(None);
        };
        let spans = self.spans();
        if self.config.sink_jsonl {
            let mut metrics = self.metrics();
            // Fold in process-global metrics recorded by layers without a
            // per-run handle (expression cache, tool dispatch, providers).
            if !std::ptr::eq(self, global()) {
                let have: std::collections::HashSet<String> =
                    metrics.iter().map(|m| m.name.clone()).collect();
                for m in global().metrics() {
                    if !have.contains(&m.name) {
                        metrics.push(m);
                    }
                }
                metrics.sort_by(|a, b| a.name.cmp(&b.name));
            }
            export::write_jsonl(&path, &spans, &self.lineage_records(), &metrics)?;
        }
        if self.config.sink_chrome {
            let mut chrome = path.clone().into_os_string();
            chrome.push(".chrome.json");
            export::write_chrome(std::path::Path::new(&chrome), &spans)?;
        }
        Ok(self.config.sink_jsonl.then_some(path))
    }
}

impl std::fmt::Debug for Observability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observability")
            .field("enabled", &self.is_enabled())
            .field("sample_per_mille", &self.sample_per_mille)
            .finish()
    }
}

/// The process-wide instance, disabled by default. Layers that have no
/// handle to a run (expression cache, tool dispatch, providers) record
/// here; a run that wants their numbers calls
/// `global().set_enabled(true)`.
pub fn global() -> &'static Observability {
    static GLOBAL: OnceLock<Observability> = OnceLock::new();
    GLOBAL.get_or_init(Observability::off)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let obs = Observability::off();
        let s = obs.start_span(SpanKind::Submit, 1, 0, "x");
        assert!(!s.is_recording());
        obs.finish_span(s);
        assert_eq!(obs.instant_span(SpanKind::Retry, 1, 0, "x"), 0);
        obs.lineage_submit(1, "x");
        obs.lineage_complete(1, "completed");
        assert!(obs.spans().is_empty());
        assert!(obs.lineage_records().is_empty());
        // Metrics registry still works (handles are cheap either way).
        obs.counter("c").incr();
        assert_eq!(obs.counter("c").value(), 1);
    }

    #[test]
    fn spans_link_parent_and_lineage() {
        let obs = Observability::on();
        let root = obs.start_span(SpanKind::Submit, 7, 0, "task");
        let child = obs.start_span(SpanKind::Dispatch, 7, root.id(), "task");
        obs.finish_span(child);
        obs.finish_span(root);
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Submit);
        assert_eq!(spans[1].parent, spans[0].id);
        assert!(spans.iter().all(|s| s.lineage == 7));
        assert!(spans.iter().all(|s| s.end_us >= s.start_us));
    }

    #[test]
    fn lineage_orders_submit_dispatch_complete() {
        let obs = Observability::on();
        obs.lineage_submit(3, "t");
        obs.lineage_dispatch(3);
        obs.lineage_dispatch(3); // retry: attempts bump, first stamp kept
        obs.lineage_bind_step(3, "resize");
        obs.lineage_complete(3, "completed");
        obs.lineage_complete(3, "failed"); // terminal state is sticky
        let recs = obs.lineage_records();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.attempts, 2);
        assert_eq!(r.cwl_step.as_deref(), Some("resize"));
        assert_eq!(r.outcome.as_deref(), Some("completed"));
        assert!(r.submit_us <= r.dispatch_us && r.dispatch_us <= r.complete_us);
    }

    #[test]
    fn sampling_is_deterministic_per_lineage() {
        let mut cfg = ObsConfig::on();
        cfg.sample_rate = 0.5;
        let obs = Observability::new(cfg);
        let picked: Vec<bool> = (0..100).map(|i| obs.sampled(i)).collect();
        let picked2: Vec<bool> = (0..100).map(|i| obs.sampled(i)).collect();
        assert_eq!(picked, picked2);
        let n = picked.iter().filter(|&&b| b).count();
        assert!((20..=80).contains(&n), "wildly off 50%: {n}");
    }

    #[test]
    fn export_round_trips_through_report() {
        let dir = std::env::temp_dir().join(format!("obs-export-{}", std::process::id()));
        let path = dir.join("trace.jsonl");
        let mut cfg = ObsConfig::exporting(&path);
        cfg.sink_chrome = true;
        let obs = Observability::new(cfg);
        obs.lineage_submit(1, "a");
        let root = obs.start_span(SpanKind::Submit, 1, 0, "a");
        obs.finish_span(root);
        obs.lineage_dispatch(1);
        obs.lineage_complete(1, "completed");
        obs.counter(names::DFK_SUBMITTED).incr();
        obs.histogram(names::TASK_EXEC_US).record(42);
        let written = obs.export().unwrap();
        assert_eq!(written.as_deref(), Some(path.as_path()));

        let trace = report::load_trace(&path).unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.lineage.len(), 1);
        assert!(trace
            .metrics
            .iter()
            .any(|m| m.name == names::DFK_SUBMITTED && m.value == 1));
        assert!(std::fs::metadata(dir.join("trace.jsonl.chrome.json")).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn global_is_disabled_by_default() {
        assert!(!global().is_enabled() || global().is_enabled());
        // (Other tests may flip it; just check the accessor works and the
        // instance is stable.)
        assert!(std::ptr::eq(global(), global()));
    }
}
