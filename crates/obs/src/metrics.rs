//! Lock-cheap sharded metrics: counters, gauges, and HDR-style log-linear
//! latency histograms, looked up by name in a registry.
//!
//! Handles are `Arc`s — instrumented code fetches a handle once and then
//! updates it with plain atomics. Counters and histogram totals stripe
//! their cells by thread so concurrent writers don't share a cache line's
//! worth of contention; reads merge the stripes, which keeps totals exact
//! (each increment lands in exactly one stripe).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

const STRIPES: usize = 8;

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_STRIPE: usize =
        NEXT_THREAD.fetch_add(1, Ordering::Relaxed) as usize;
}

/// A small per-thread index used to stripe atomic cells.
pub(crate) fn thread_stripe() -> usize {
    THREAD_STRIPE.with(|s| *s)
}

/// Monotone counter, striped across threads. `value()` is exact.
#[derive(Debug)]
pub struct Counter {
    cells: [AtomicU64; STRIPES],
}

impl Counter {
    fn new() -> Self {
        Self {
            cells: [(); STRIPES].map(|_| AtomicU64::new(0)),
        }
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[thread_stripe() % STRIPES].fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Exact total across stripes.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// A signed instantaneous value (e.g. outstanding tasks).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

// HDR-style log-linear bucketing: exact buckets below `LINEAR`, then 32
// sub-buckets per power of two — ~3% relative error, fixed memory, and a
// single atomic increment per record.
const LINEAR: u64 = 64;
const GROUPS: usize = 26; // covers values up to 2^32 µs (~71 minutes)
const BUCKETS: usize = LINEAR as usize + GROUPS * 32;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        let bits = 64 - v.leading_zeros() as u64; // >= 7
        let group = ((bits - 7) as usize).min(GROUPS - 1);
        let sub = ((v >> (group as u64 + 1)) & 31) as usize;
        LINEAR as usize + group * 32 + sub
    }
}

/// Representative (lower-bound) value for a bucket.
fn bucket_floor(idx: usize) -> u64 {
    if idx < LINEAR as usize {
        idx as u64
    } else {
        let group = (idx - LINEAR as usize) / 32;
        let sub = ((idx - LINEAR as usize) % 32) as u64;
        (32 + sub) << (group as u64 + 1)
    }
}

/// Log-linear latency histogram. Counts and sums are exact; quantiles are
/// bucket-resolution (~3% relative error above 64).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: [AtomicU64; STRIPES],
    sum: [AtomicU64; STRIPES],
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: [(); STRIPES].map(|_| AtomicU64::new(0)),
            sum: [(); STRIPES].map(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let stripe = thread_stripe() % STRIPES;
        self.count[stripe].fetch_add(1, Ordering::Relaxed);
        self.sum[stripe].fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Exact number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Value at quantile `q` in [0, 1], at bucket resolution.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let total = self.bucket_total();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_floor(idx);
            }
        }
        self.max()
    }

    /// Per-bucket counts (test/merge support).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Cumulative rank at each bucket boundary — non-decreasing, ending at
    /// the total count.
    pub fn cumulative_ranks(&self) -> Vec<u64> {
        let mut acc = 0;
        self.buckets
            .iter()
            .map(|b| {
                acc += b.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }

    fn bucket_total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// Well-known metric names. Everything the workspace records is listed
/// here so dashboards, tests, and the `parsl-trace` CLI agree on spelling.
pub mod names {
    /// Gauge: tasks submitted to the DFK and not yet finished.
    pub const DFK_OUTSTANDING: &str = "parsl.dfk.tasks_outstanding";
    /// Counter: tasks submitted to the DFK.
    pub const DFK_SUBMITTED: &str = "parsl.dfk.tasks_submitted";
    /// Counter: retry attempts scheduled.
    pub const DFK_RETRIES: &str = "parsl.dfk.retries";
    /// Counter: memoization table hits.
    pub const MEMO_HITS: &str = "parsl.dfk.memo_hits";
    /// Counter: memoization table misses.
    pub const MEMO_MISSES: &str = "parsl.dfk.memo_misses";
    /// Counter: compiled-expression cache hits.
    pub const EXPR_CACHE_HITS: &str = "expr.cache.hits";
    /// Counter: compiled-expression cache misses (compilations).
    pub const EXPR_CACHE_MISSES: &str = "expr.cache.misses";
    /// Histogram: tasks per interchange message (batch occupancy).
    pub const HTEX_BATCH_OCCUPANCY: &str = "parsl.htex.batch_occupancy";
    /// Counter: managers declared dead by the heartbeat monitor.
    pub const HTEX_HEARTBEAT_MISSES: &str = "parsl.htex.heartbeat_misses";
    /// Counter: tasks re-queued after their node died.
    pub const HTEX_REDISPATCHES: &str = "parsl.htex.tasks_redispatched";
    /// Counter: provider blocks added after start (scaling + replacement).
    pub const HTEX_BLOCKS_ADDED: &str = "parsl.htex.blocks_added";
    /// Counter: scale-out events fired by the elastic strategy.
    pub const STRATEGY_SCALE_OUTS: &str = "parsl.strategy.scale_outs";
    /// Counter: provider provision calls.
    pub const PROVIDER_PROVISIONS: &str = "parsl.provider.provisions";
    /// Histogram: provider provision latency, µs.
    pub const PROVIDER_PROVISION_US: &str = "parsl.provider.provision_us";
    /// Counter: tool executions through `cwlexec` dispatch.
    pub const DISPATCH_EXECS: &str = "cwlexec.dispatch.execs";
    /// Histogram: tool execution latency through `cwlexec` dispatch, µs.
    pub const DISPATCH_EXEC_US: &str = "cwlexec.dispatch.exec_us";
    /// Histogram: task body execution latency on workers, µs.
    pub const TASK_EXEC_US: &str = "parsl.task.exec_us";
    /// Counter: task completions appended to the checkpoint journal.
    pub const CKPT_APPEND: &str = "ckpt.append";
    /// Counter: tasks satisfied from a resumed journal (not re-executed).
    pub const CKPT_REPLAYED: &str = "ckpt.replayed";
    /// Counter: journal records rejected on resume (stale workflow hash,
    /// deleted output files, unparseable results).
    pub const CKPT_INVALIDATED: &str = "ckpt.invalidated";
    /// Counter: staging requests served from the digest index (no bytes
    /// read or written — the content was already hashed or in place).
    pub const STAGE_HITS: &str = "stage.hits";
    /// Counter: files materialized by hardlink or reflink (zero-copy).
    pub const STAGE_LINKS: &str = "stage.links";
    /// Counter: files materialized by byte copy (ladder fallback, or
    /// `staging.mode: copy`).
    pub const STAGE_COPIES: &str = "stage.copies";
    /// Counter: bytes a copying stager would have written that the link
    /// ladder avoided.
    pub const STAGE_BYTES_SAVED: &str = "stage.bytes_saved";
    /// Counter: submissions accepted into the service queue.
    pub const SERVE_QUEUED: &str = "serve.queued";
    /// Counter: queued runs promoted to active execution.
    pub const SERVE_ADMITTED: &str = "serve.admitted";
    /// Counter: submissions rejected at the door (infeasible or over
    /// the backpressure limit).
    pub const SERVE_REJECTED: &str = "serve.rejected";
    /// Gauge: runs currently executing in the daemon.
    pub const SERVE_ACTIVE: &str = "serve.active";
    /// Histogram: time a ready task waited in the fair-share queue, µs.
    pub const SERVE_QUEUE_WAIT_US: &str = "serve.queue_wait_us";
}

/// A point-in-time reading of one metric, for export and reporting.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram summary.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Median (bucket resolution).
        p50: u64,
        /// 99th percentile (bucket resolution).
        p99: u64,
        /// Exact maximum.
        max: u64,
    },
}

/// `(name, value)` snapshot entry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registry name (see [`names`]).
    pub name: String,
    /// Reading.
    pub value: MetricValue,
}

/// Name → metric registry. Lookup takes a short-held mutex; instrumented
/// code should hold on to the returned handles.
pub struct Registry {
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Self {
            counters: Mutex::new(HashMap::new()),
            gauges: Mutex::new(HashMap::new()),
            histograms: Mutex::new(HashMap::new()),
        }
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock();
        match m.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(Counter::new());
                m.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock();
        match m.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Arc::new(Gauge::new());
                m.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock();
        match m.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Arc::new(Histogram::new());
                m.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let mut out = Vec::new();
        for (name, c) in self.counters.lock().iter() {
            out.push(MetricSnapshot {
                name: name.clone(),
                value: MetricValue::Counter(c.value()),
            });
        }
        for (name, g) in self.gauges.lock().iter() {
            out.push(MetricSnapshot {
                name: name.clone(),
                value: MetricValue::Gauge(g.value()),
            });
        }
        for (name, h) in self.histograms.lock().iter() {
            out.push(MetricSnapshot {
                name: name.clone(),
                value: MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    p50: h.value_at_quantile(0.5),
                    p99: h.value_at_quantile(0.99),
                    max: h.max(),
                },
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_totals_are_exact() {
        let c = Counter::new();
        c.add(3);
        c.incr();
        assert_eq!(c.value(), 4);
    }

    #[test]
    fn gauge_tracks_deltas_and_sets() {
        let g = Gauge::new();
        g.add(5);
        g.add(-2);
        assert_eq!(g.value(), 3);
        g.set(-7);
        assert_eq!(g.value(), -7);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0;
        for v in (0..1 << 20).step_by(97) {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS);
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
        }
        // Saturates instead of overflowing for huge values.
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_floor_is_consistent_with_index() {
        for v in [0, 1, 63, 64, 65, 1000, 123_456, 9_999_999] {
            let idx = bucket_index(v);
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} > value {v}");
            // The floor maps back to the same bucket.
            assert_eq!(bucket_index(floor), idx, "value {v}");
        }
    }

    #[test]
    fn histogram_quantiles_have_bucket_resolution() {
        let h = Histogram::new();
        for v in 1..=1000 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        let p50 = h.value_at_quantile(0.5);
        assert!((450..=550).contains(&p50), "p50 {p50}");
        let p99 = h.value_at_quantile(0.99);
        assert!((930..=1000).contains(&p99), "p99 {p99}");
        assert!(h.value_at_quantile(0.0) >= 1);
        assert_eq!(h.value_at_quantile(1.0), bucket_floor(bucket_index(1000)));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn registry_returns_same_handle_for_same_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.incr();
        assert_eq!(b.value(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        r.gauge("g").set(4);
        r.histogram("h").record(10);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["g", "h", "x"]);
    }
}
