//! A minimal JSON reader/writer — just enough for the trace formats this
//! crate emits and the committed benchmark baselines `--check` compares
//! against. No external dependencies, no streaming, no number edge-case
//! heroics beyond what those files contain.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers up to 2^53 are exact).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (key order not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to u64.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n.max(0.0) as u64)
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // {
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

/// Escape `s` as the body of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\n"], "c": -2.5e2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-250.0));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a": "#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline2\t\"quoted\\\" \u{1} ünïcode";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }
}
