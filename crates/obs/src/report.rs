//! Reading exported traces back and rendering reports — the library
//! behind the `parsl-trace` CLI (also used directly by tests).

use crate::json::{self, Json};
use crate::lineage::LineageRecord;
use crate::span::{SpanKind, SpanRecord};
use std::collections::BTreeMap;
use std::path::Path;

/// A metric read back from a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMetric {
    /// Metric name.
    pub name: String,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// Counter/gauge value (0 for histograms).
    pub value: i64,
    /// Histogram fields (zero for counters/gauges).
    pub count: u64,
    /// Sum of histogram samples.
    pub sum: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

/// A parsed trace file.
#[derive(Debug, Default)]
pub struct Trace {
    /// All spans, in id order.
    pub spans: Vec<SpanRecord>,
    /// All lineage records, in task order.
    pub lineage: Vec<LineageRecord>,
    /// All metrics, in name order.
    pub metrics: Vec<TraceMetric>,
}

/// Parse a JSONL trace file written by the exporter.
pub fn load_trace(path: &Path) -> Result<Trace, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    parse_trace(&text)
}

/// Parse JSONL trace text.
pub fn parse_trace(text: &str) -> Result<Trace, String> {
    let mut trace = Trace::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing type", lineno + 1))?;
        match kind {
            "meta" => {}
            "span" => trace.spans.push(parse_span(&v, lineno + 1)?),
            "lineage" => trace.lineage.push(parse_lineage(&v, lineno + 1)?),
            "metric" => trace.metrics.push(parse_metric(&v, lineno + 1)?),
            other => return Err(format!("line {}: unknown type {other:?}", lineno + 1)),
        }
    }
    trace.spans.sort_by_key(|s| s.id);
    trace.lineage.sort_by_key(|r| r.task);
    trace.metrics.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(trace)
}

fn field_u64(v: &Json, key: &str, lineno: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {lineno}: missing {key}"))
}

fn field_str(v: &Json, key: &str, lineno: usize) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: missing {key}"))
}

fn parse_span(v: &Json, lineno: usize) -> Result<SpanRecord, String> {
    let kind_name = field_str(v, "kind", lineno)?;
    Ok(SpanRecord {
        id: field_u64(v, "id", lineno)?,
        parent: field_u64(v, "parent", lineno)?,
        lineage: field_u64(v, "lineage", lineno)?,
        kind: SpanKind::parse(&kind_name)
            .ok_or_else(|| format!("line {lineno}: unknown span kind {kind_name:?}"))?,
        name: field_str(v, "name", lineno)?,
        start_us: field_u64(v, "start_us", lineno)?,
        end_us: field_u64(v, "end_us", lineno)?,
    })
}

fn parse_lineage(v: &Json, lineno: usize) -> Result<LineageRecord, String> {
    Ok(LineageRecord {
        task: field_u64(v, "task", lineno)?,
        label: field_str(v, "label", lineno)?,
        cwl_step: v.get("cwl_step").and_then(Json::as_str).map(str::to_string),
        run: v.get("run").and_then(Json::as_str).map(str::to_string),
        submit_us: field_u64(v, "submit_us", lineno)?,
        dispatch_us: field_u64(v, "dispatch_us", lineno)?,
        complete_us: field_u64(v, "complete_us", lineno)?,
        attempts: field_u64(v, "attempts", lineno)? as u32,
        outcome: v.get("outcome").and_then(Json::as_str).map(str::to_string),
    })
}

fn parse_metric(v: &Json, lineno: usize) -> Result<TraceMetric, String> {
    let kind = field_str(v, "kind", lineno)?;
    let num = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
    Ok(TraceMetric {
        name: field_str(v, "name", lineno)?,
        value: v.get("value").and_then(Json::as_f64).unwrap_or(0.0) as i64,
        count: num("count"),
        sum: num("sum"),
        p50: num("p50"),
        p99: num("p99"),
        max: num("max"),
        kind,
    })
}

/// Per-stage latency breakdown for one task, derived from its spans and
/// lineage record (all µs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPath {
    /// Parsl task id.
    pub task: u64,
    /// Label (and CWL step id, when bound).
    pub name: String,
    /// submit → first dispatch.
    pub prep_us: u64,
    /// dispatch → worker execution start (queue + transit).
    pub queue_us: u64,
    /// Worker execution time.
    pub exec_us: u64,
    /// Execution end → completion (result return).
    pub result_us: u64,
    /// submit → completion.
    pub total_us: u64,
    /// Which stage dominates.
    pub dominant: &'static str,
}

/// Compute the per-task critical-path breakdown, slowest total first.
pub fn task_paths(trace: &Trace) -> Vec<TaskPath> {
    let mut exec_by_lineage: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for s in &trace.spans {
        if matches!(s.kind, SpanKind::WorkerExec | SpanKind::ToolExec) {
            // First execution attempt wins.
            exec_by_lineage
                .entry(s.lineage)
                .or_insert((s.start_us, s.end_us));
        }
    }
    let mut out = Vec::new();
    for r in &trace.lineage {
        if r.complete_us == 0 {
            continue;
        }
        let name = match &r.cwl_step {
            Some(step) if step != &r.label => format!("{} [{}]", r.label, step),
            _ => r.label.clone(),
        };
        let total_us = r.complete_us.saturating_sub(r.submit_us);
        let (prep_us, queue_us, exec_us, result_us) = match exec_by_lineage.get(&r.task) {
            Some(&(exec_start, exec_end)) if r.dispatch_us != 0 => (
                r.dispatch_us.saturating_sub(r.submit_us),
                exec_start.saturating_sub(r.dispatch_us),
                exec_end.saturating_sub(exec_start),
                r.complete_us.saturating_sub(exec_end),
            ),
            _ => (total_us, 0, 0, 0), // memoized or untraced
        };
        let stages = [
            ("prep", prep_us),
            ("queue", queue_us),
            ("exec", exec_us),
            ("result", result_us),
        ];
        let dominant = stages.iter().max_by_key(|(_, v)| *v).unwrap().0;
        out.push(TaskPath {
            task: r.task,
            name,
            prep_us,
            queue_us,
            exec_us,
            result_us,
            total_us,
            dominant,
        });
    }
    out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.task.cmp(&b.task)));
    out
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Human-readable summary: span-kind table, task outcomes, and metrics.
pub fn summary_text(trace: &Trace) -> String {
    let mut out = String::new();
    let done = trace.lineage.iter().filter(|r| r.complete_us != 0).count();
    out.push_str(&format!(
        "tasks: {} ({} finished)   spans: {}   metrics: {}\n",
        trace.lineage.len(),
        done,
        trace.spans.len(),
        trace.metrics.len()
    ));

    let mut by_kind: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
    for s in &trace.spans {
        let e = by_kind.entry(s.kind.as_str()).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += s.duration_us();
        e.2 = e.2.max(s.duration_us());
    }
    if !by_kind.is_empty() {
        out.push_str(&format!(
            "\n{:<16} {:>8} {:>12} {:>12} {:>12}\n",
            "span kind", "count", "total", "mean", "max"
        ));
        for kind in SpanKind::ALL {
            if let Some((count, total, max)) = by_kind.get(kind.as_str()) {
                out.push_str(&format!(
                    "{:<16} {:>8} {:>12} {:>12} {:>12}\n",
                    kind.as_str(),
                    count,
                    fmt_us(*total),
                    fmt_us(total / count.max(&1)),
                    fmt_us(*max)
                ));
            }
        }
    }

    let mut outcomes: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &trace.lineage {
        *outcomes
            .entry(r.outcome.as_deref().unwrap_or("running"))
            .or_default() += 1;
    }
    if !outcomes.is_empty() {
        out.push_str("\noutcomes:");
        for (outcome, n) in &outcomes {
            out.push_str(&format!(" {outcome}={n}"));
        }
        out.push('\n');
    }

    if !trace.metrics.is_empty() {
        out.push_str("\nmetrics:\n");
        for m in &trace.metrics {
            match m.kind.as_str() {
                "histogram" => out.push_str(&format!(
                    "  {:<34} count={} mean={} p50={} p99={} max={}\n",
                    m.name,
                    m.count,
                    fmt_us(m.sum.checked_div(m.count).unwrap_or(0)),
                    fmt_us(m.p50),
                    fmt_us(m.p99),
                    fmt_us(m.max)
                )),
                _ => out.push_str(&format!("  {:<34} {}\n", m.name, m.value)),
            }
        }
    }
    out
}

/// Per-task critical-path report (slowest `top` tasks).
pub fn critical_path_text(trace: &Trace, top: usize) -> String {
    let paths = task_paths(trace);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<28} {:>10} {:>10} {:>10} {:>10} {:>10}  dominant\n",
        "task", "name", "total", "prep", "queue", "exec", "result"
    ));
    for p in paths.iter().take(top) {
        out.push_str(&format!(
            "{:<6} {:<28} {:>10} {:>10} {:>10} {:>10} {:>10}  {}\n",
            p.task,
            truncate(&p.name, 28),
            fmt_us(p.total_us),
            fmt_us(p.prep_us),
            fmt_us(p.queue_us),
            fmt_us(p.exec_us),
            fmt_us(p.result_us),
            p.dominant
        ));
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

/// Machine-readable summary (a single JSON object).
pub fn summary_json(trace: &Trace) -> String {
    let mut by_kind: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
    for s in &trace.spans {
        let e = by_kind.entry(s.kind.as_str()).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += s.duration_us();
        e.2 = e.2.max(s.duration_us());
    }
    let kinds: Vec<String> = by_kind
        .iter()
        .map(|(kind, (count, total, max))| {
            format!(
                "{{\"kind\":\"{kind}\",\"count\":{count},\"total_us\":{total},\"max_us\":{max}}}"
            )
        })
        .collect();

    let mut outcomes: BTreeMap<String, usize> = BTreeMap::new();
    for r in &trace.lineage {
        *outcomes
            .entry(r.outcome.clone().unwrap_or_else(|| "running".into()))
            .or_default() += 1;
    }
    let outcome_fields: Vec<String> = outcomes
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", json::escape(k)))
        .collect();

    let metric_fields: Vec<String> = trace
        .metrics
        .iter()
        .map(|m| match m.kind.as_str() {
            "histogram" => format!(
                "{{\"name\":\"{}\",\"kind\":\"histogram\",\"count\":{},\"sum\":{},\
                 \"p50\":{},\"p99\":{},\"max\":{}}}",
                json::escape(&m.name),
                m.count,
                m.sum,
                m.p50,
                m.p99,
                m.max
            ),
            kind => format!(
                "{{\"name\":\"{}\",\"kind\":\"{kind}\",\"value\":{}}}",
                json::escape(&m.name),
                m.value
            ),
        })
        .collect();

    let paths: Vec<String> = task_paths(trace)
        .iter()
        .map(|p| {
            format!(
                "{{\"task\":{},\"name\":\"{}\",\"total_us\":{},\"prep_us\":{},\
                 \"queue_us\":{},\"exec_us\":{},\"result_us\":{},\"dominant\":\"{}\"}}",
                p.task,
                json::escape(&p.name),
                p.total_us,
                p.prep_us,
                p.queue_us,
                p.exec_us,
                p.result_us,
                p.dominant
            )
        })
        .collect();

    format!(
        "{{\"tasks\":{},\"spans\":{},\"span_kinds\":[{}],\"outcomes\":{{{}}},\
         \"metrics\":[{}],\"critical_path\":[{}]}}",
        trace.lineage.len(),
        trace.spans.len(),
        kinds.join(","),
        outcome_fields.join(","),
        metric_fields.join(","),
        paths.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        parse_trace(concat!(
            "{\"type\":\"meta\",\"format\":\"parsl-trace\",\"version\":1}\n",
            "{\"type\":\"span\",\"id\":1,\"parent\":0,\"lineage\":1,\"kind\":\"submit\",\"name\":\"a\",\"start_us\":0,\"end_us\":5}\n",
            "{\"type\":\"span\",\"id\":2,\"parent\":1,\"lineage\":1,\"kind\":\"worker_exec\",\"name\":\"a\",\"start_us\":20,\"end_us\":80}\n",
            "{\"type\":\"lineage\",\"task\":1,\"label\":\"a\",\"cwl_step\":\"resize\",\"submit_us\":0,\"dispatch_us\":10,\"complete_us\":100,\"attempts\":1,\"outcome\":\"completed\"}\n",
            "{\"type\":\"metric\",\"kind\":\"counter\",\"name\":\"parsl.dfk.tasks_submitted\",\"value\":1}\n",
            "{\"type\":\"metric\",\"kind\":\"histogram\",\"name\":\"parsl.task.exec_us\",\"count\":1,\"sum\":60,\"p50\":60,\"p99\":60,\"max\":60}\n",
        ))
        .unwrap()
    }

    #[test]
    fn parses_all_record_types() {
        let t = sample_trace();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.lineage.len(), 1);
        assert_eq!(t.metrics.len(), 2);
        assert_eq!(t.spans[1].kind, SpanKind::WorkerExec);
        assert_eq!(t.lineage[0].cwl_step.as_deref(), Some("resize"));
    }

    #[test]
    fn critical_path_breaks_down_stages() {
        let t = sample_trace();
        let paths = task_paths(&t);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.prep_us, 10); // 0 → 10
        assert_eq!(p.queue_us, 10); // 10 → 20
        assert_eq!(p.exec_us, 60); // 20 → 80
        assert_eq!(p.result_us, 20); // 80 → 100
        assert_eq!(p.total_us, 100);
        assert_eq!(p.dominant, "exec");
        assert_eq!(p.name, "a [resize]");
    }

    #[test]
    fn summary_text_mentions_kinds_and_outcomes() {
        let text = summary_text(&sample_trace());
        assert!(text.contains("worker_exec"), "{text}");
        assert!(text.contains("completed=1"), "{text}");
        assert!(text.contains("parsl.task.exec_us"), "{text}");
    }

    #[test]
    fn summary_json_is_valid_json() {
        let s = summary_json(&sample_trace());
        let v = json::parse(&s).unwrap();
        assert_eq!(v.get("tasks").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("outcomes")
                .unwrap()
                .get("completed")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(v.get("critical_path").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn bad_lines_are_reported_with_line_numbers() {
        let err = parse_trace("{\"type\":\"span\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_trace("{\"type\":\"wat\"}\n").unwrap_err();
        assert!(err.contains("unknown type"), "{err}");
    }
}
