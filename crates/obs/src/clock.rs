//! Monotonic run-anchored clock.
//!
//! Every timestamp in a trace is "microseconds since the run started", read
//! from a [`simtest::Clock`] anchor — the shared process-wide real clock by
//! default, or a virtual clock under the deterministic simulation harness.
//! On top of the underlying time source, [`RunClock::now_us`] enforces a
//! *global* non-decreasing sequence across threads: a reading can never be
//! smaller than any reading whose call already completed, which makes
//! timestamps taken under a shared lock sorted in lock order by
//! construction.

use simtest::ClockRef;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A clock anchored at its creation instant, returning monotonically
/// non-decreasing microsecond offsets.
pub struct RunClock {
    source: ClockRef,
    epoch_us: u64,
    last_us: AtomicU64,
}

impl std::fmt::Debug for RunClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunClock")
            .field("epoch_us", &self.epoch_us)
            .field("last_us", &self.last_us)
            .field("virtual", &self.source.is_virtual())
            .finish()
    }
}

impl RunClock {
    /// Anchor a new clock at "now" on the process-wide real clock.
    pub fn new() -> Self {
        Self::with_clock(simtest::real_clock())
    }

    /// Anchor a new clock at "now" on an explicit time source (a
    /// `VirtualClock` under simulation).
    pub fn with_clock(source: ClockRef) -> Self {
        let epoch_us = source.now().as_micros() as u64;
        Self {
            source,
            epoch_us,
            last_us: AtomicU64::new(0),
        }
    }

    /// Microseconds since the run started. Never decreases, even when the
    /// calls race across threads: each completed call establishes a floor
    /// for every later call.
    pub fn now_us(&self) -> u64 {
        let raw = (self.source.now().as_micros() as u64).saturating_sub(self.epoch_us);
        let prev = self.last_us.fetch_max(raw, Ordering::AcqRel);
        raw.max(prev)
    }

    /// [`RunClock::now_us`] as a `Duration` offset from run start.
    pub fn now(&self) -> Duration {
        Duration::from_micros(self.now_us())
    }
}

impl Default for RunClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtest::VirtualClock;
    use std::sync::Arc;

    #[test]
    fn never_decreases_single_thread() {
        let clock = RunClock::new();
        let mut last = 0;
        for _ in 0..10_000 {
            let t = clock.now_us();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn serialized_readings_are_sorted_across_threads() {
        // Readings taken under a shared mutex must come out sorted in lock
        // order — the property the monitoring log depends on.
        let clock = Arc::new(RunClock::new());
        let seq = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let clock = clock.clone();
                let seq = seq.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let mut s = seq.lock();
                        s.push(clock.now_us());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = seq.lock();
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "clock went backwards");
    }

    #[test]
    fn virtual_source_drives_run_time() {
        let vc = VirtualClock::new();
        vc.set_auto(false);
        vc.advance(Duration::from_micros(100));
        // The run clock anchors at its own creation, not the source epoch.
        let clock = RunClock::with_clock(vc.clone());
        assert_eq!(clock.now_us(), 0);
        vc.advance(Duration::from_micros(250));
        assert_eq!(clock.now_us(), 250);
        // And it stays monotone across further advances.
        vc.advance(Duration::from_micros(1));
        assert_eq!(clock.now_us(), 251);
    }
}
