//! Monotonic run-anchored clock.
//!
//! Every timestamp in a trace is "microseconds since the run started", read
//! from a single [`std::time::Instant`] anchor. On top of the OS monotonic
//! clock, [`RunClock::now_us`] enforces a *global* non-decreasing sequence
//! across threads: a reading can never be smaller than any reading whose
//! call already completed, which makes timestamps taken under a shared lock
//! sorted in lock order by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A clock anchored at its creation instant, returning monotonically
/// non-decreasing microsecond offsets.
#[derive(Debug)]
pub struct RunClock {
    start: Instant,
    last_us: AtomicU64,
}

impl RunClock {
    /// Anchor a new clock at "now".
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            last_us: AtomicU64::new(0),
        }
    }

    /// Microseconds since the run started. Never decreases, even when the
    /// calls race across threads: each completed call establishes a floor
    /// for every later call.
    pub fn now_us(&self) -> u64 {
        let raw = self.start.elapsed().as_micros() as u64;
        let prev = self.last_us.fetch_max(raw, Ordering::AcqRel);
        raw.max(prev)
    }

    /// [`RunClock::now_us`] as a `Duration` offset from run start.
    pub fn now(&self) -> Duration {
        Duration::from_micros(self.now_us())
    }
}

impl Default for RunClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn never_decreases_single_thread() {
        let clock = RunClock::new();
        let mut last = 0;
        for _ in 0..10_000 {
            let t = clock.now_us();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn serialized_readings_are_sorted_across_threads() {
        // Readings taken under a shared mutex must come out sorted in lock
        // order — the property the monitoring log depends on.
        let clock = Arc::new(RunClock::new());
        let seq = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let clock = clock.clone();
                let seq = seq.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let mut s = seq.lock();
                        s.push(clock.now_us());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = seq.lock();
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "clock went backwards");
    }
}
