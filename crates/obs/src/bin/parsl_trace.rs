//! `parsl-trace` — inspect an exported trace.
//!
//! ```text
//! parsl-trace <trace.jsonl>                  # summary table
//! parsl-trace <trace.jsonl> --json           # machine-readable summary
//! parsl-trace <trace.jsonl> --critical-path  # per-task stage breakdown
//! parsl-trace <trace.jsonl> --critical-path --top 5
//! ```
//!
//! Traces are written by running with a `monitoring:` config block, e.g.:
//!
//! ```yaml
//! monitoring:
//!   enabled: true
//!   export: target/trace.jsonl
//! ```

use obs::report;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("parsl-trace: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let usage = "usage: parsl-trace <trace.jsonl> [--json] [--critical-path] [--top N]";
    let mut path = None;
    let mut json = false;
    let mut critical = false;
    let mut top = 20usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--critical-path" => critical = true,
            "--top" => {
                i += 1;
                top = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--top needs a number")?;
            }
            "--help" | "-h" => {
                println!("{usage}");
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{usage}"))
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err(format!("unexpected argument {other:?}\n{usage}"));
                }
            }
        }
        i += 1;
    }
    let path = path.ok_or(usage)?;
    let trace = report::load_trace(std::path::Path::new(&path))?;

    if json {
        println!("{}", report::summary_json(&trace));
    } else if critical {
        print!("{}", report::critical_path_text(&trace, top));
    } else {
        print!("{}", report::summary_text(&trace));
        println!("\n(use --critical-path for the per-task stage breakdown)");
    }
    Ok(())
}
