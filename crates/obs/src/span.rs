//! Structured spans: typed, named intervals with parent/child links and a
//! lineage id tying every span of one logical task together across layers
//! (DFK → interchange → manager → worker → result path).

use parking_lot::Mutex;

/// What stage of the pipeline a span covers.
///
/// The declaration order is the *causal* order of the fast path: when two
/// spans of the same task tie on start time, sorting by kind reproduces the
/// order the stages actually run in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A whole-workflow run (reference runner / workflow compiler root).
    WorkflowRun,
    /// `DataFlowKernel::submit` — task creation and dependency wiring.
    Submit,
    /// Memoization table consultation.
    MemoLookup,
    /// Handing the task to the executor (one per attempt).
    Dispatch,
    /// The task entering the interchange queue.
    BatchEnqueue,
    /// A manager's worker receiving the task message.
    ManagerRecv,
    /// The task body executing on a worker.
    WorkerExec,
    /// Input files being staged into a task workdir (data plane).
    StageIn,
    /// A tool process executing (reference runner / cwlexec layer).
    ToolExec,
    /// Outputs being registered with the content store after collection.
    StageOut,
    /// The result message completing the task's promise.
    ResultReturn,
    /// A retry being scheduled after a failed attempt.
    Retry,
    /// The walltime watchdog killing the task.
    TimedOut,
    /// A manager declared dead by the heartbeat monitor.
    NodeLost,
    /// An in-flight task re-queued after its node died.
    Redispatched,
    /// A provider block being provisioned (scale-out or replacement).
    BlockProvision,
}

impl SpanKind {
    /// Every kind, in causal order.
    pub const ALL: [SpanKind; 16] = [
        SpanKind::WorkflowRun,
        SpanKind::Submit,
        SpanKind::MemoLookup,
        SpanKind::Dispatch,
        SpanKind::BatchEnqueue,
        SpanKind::ManagerRecv,
        SpanKind::WorkerExec,
        SpanKind::StageIn,
        SpanKind::ToolExec,
        SpanKind::StageOut,
        SpanKind::ResultReturn,
        SpanKind::Retry,
        SpanKind::TimedOut,
        SpanKind::NodeLost,
        SpanKind::Redispatched,
        SpanKind::BlockProvision,
    ];

    /// Stable wire name (used by the JSONL exporter and goldens).
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::WorkflowRun => "workflow_run",
            SpanKind::Submit => "submit",
            SpanKind::MemoLookup => "memo_lookup",
            SpanKind::Dispatch => "dispatch",
            SpanKind::BatchEnqueue => "batch_enqueue",
            SpanKind::ManagerRecv => "manager_recv",
            SpanKind::WorkerExec => "worker_exec",
            SpanKind::StageIn => "stage_in",
            SpanKind::ToolExec => "tool_exec",
            SpanKind::StageOut => "stage_out",
            SpanKind::ResultReturn => "result_return",
            SpanKind::Retry => "retry",
            SpanKind::TimedOut => "timed_out",
            SpanKind::NodeLost => "node_lost",
            SpanKind::Redispatched => "redispatched",
            SpanKind::BlockProvision => "block_provision",
        }
    }

    /// Inverse of [`SpanKind::as_str`].
    pub fn parse(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the run (allocation order; never 0).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Lineage id — the Parsl task id all spans of one task share
    /// (0 for spans not tied to a task, e.g. `NodeLost`).
    pub lineage: u64,
    /// Pipeline stage.
    pub kind: SpanKind,
    /// Human name (task label, node name, step id, …).
    pub name: String,
    /// Start, µs since run start.
    pub start_us: u64,
    /// End, µs since run start (== `start_us` for instant spans).
    pub end_us: u64,
}

impl SpanRecord {
    /// Duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// An in-flight span handle returned by `Observability::start_span`.
///
/// When the span was not sampled the handle is inert (`id == 0`) and
/// finishing it is free. The handle is `Copy`-cheap to thread through call
/// stacks; its `id` may be used as a parent for child spans before it is
/// finished.
#[derive(Debug)]
pub struct ActiveSpan {
    pub(crate) id: u64,
    pub(crate) parent: u64,
    pub(crate) lineage: u64,
    pub(crate) kind: SpanKind,
    pub(crate) name: Option<String>,
    pub(crate) start_us: u64,
}

impl ActiveSpan {
    /// An inert handle (nothing recorded).
    pub fn none() -> Self {
        Self {
            id: 0,
            parent: 0,
            lineage: 0,
            kind: SpanKind::Submit,
            name: None,
            start_us: 0,
        }
    }

    /// The span id (0 when not sampled). Valid as a child's parent id
    /// before the span finishes.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether this handle will record anything on finish.
    pub fn is_recording(&self) -> bool {
        self.id != 0
    }
}

/// Cross-layer span context carried inside a task payload: the lineage id
/// and the parent span id the executor should hang its spans off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanCtx {
    /// Lineage id (Parsl task id); 0 = untracked.
    pub lineage: u64,
    /// Parent span id for executor-side spans; 0 = root.
    pub parent: u64,
}

impl SpanCtx {
    /// An untracked context (monitoring disabled or not wired).
    pub const NONE: SpanCtx = SpanCtx {
        lineage: 0,
        parent: 0,
    };
}

const SHARDS: usize = 16;

/// Sharded store of finished spans: writers stripe over per-shard mutexes
/// keyed by thread, so the fast path is an uncontended lock plus a push.
pub(crate) struct Tracer {
    shards: [Mutex<Vec<SpanRecord>>; SHARDS],
}

impl Tracer {
    pub(crate) fn new() -> Self {
        Self {
            shards: [(); SHARDS].map(|_| Mutex::new(Vec::new())),
        }
    }

    pub(crate) fn push(&self, record: SpanRecord) {
        self.shards[crate::metrics::thread_stripe() % SHARDS]
            .lock()
            .push(record);
    }

    /// All spans so far, sorted by id (allocation order).
    pub(crate) fn snapshot(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().iter().cloned());
        }
        all.sort_by_key(|s| s.id);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }

    #[test]
    fn tracer_snapshot_sorts_by_id() {
        let t = Tracer::new();
        for id in [5, 1, 3] {
            t.push(SpanRecord {
                id,
                parent: 0,
                lineage: 0,
                kind: SpanKind::Submit,
                name: String::new(),
                start_us: 0,
                end_us: 0,
            });
        }
        let ids: Vec<u64> = t.snapshot().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn inert_handle_reports_not_recording() {
        assert!(!ActiveSpan::none().is_recording());
        assert_eq!(ActiveSpan::none().id(), 0);
    }
}
