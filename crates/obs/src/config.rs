//! Observability configuration — the `monitoring:` block of a runner
//! config.

use std::path::PathBuf;

/// How (and whether) a run records and exports telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Master switch. Off means every record path is a single relaxed
    /// atomic load and nothing is allocated.
    pub enabled: bool,
    /// Span sampling rate in [0, 1]: the fraction of task lineages whose
    /// spans are recorded. Metrics and lineage records are not sampled.
    pub sample_rate: f64,
    /// Where to write the trace on shutdown (no export when `None`).
    pub export_path: Option<PathBuf>,
    /// Write the JSONL trace (the format `parsl-trace` reads).
    pub sink_jsonl: bool,
    /// Additionally write `<export_path>.chrome.json` in Chrome
    /// `trace_event` format (load in `chrome://tracing` / Perfetto).
    pub sink_chrome: bool,
    /// Cap on the in-memory per-task event ring buffer. Summary counters
    /// stay exact past the cap; only per-event detail older than the last
    /// `events_cap` records is dropped. Generous by default so one-shot
    /// runs never evict; a long-lived daemon stays bounded.
    pub events_cap: usize,
}

/// Default [`ObsConfig::events_cap`]: large enough that a one-shot run
/// keeps every event, small enough to bound a week-long daemon.
pub const DEFAULT_EVENTS_CAP: usize = 65_536;

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            sample_rate: 1.0,
            export_path: None,
            sink_jsonl: true,
            sink_chrome: false,
            events_cap: DEFAULT_EVENTS_CAP,
        }
    }
}

impl ObsConfig {
    /// Enabled, full sampling, no export (tests read snapshots directly).
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Enabled with a JSONL export path.
    pub fn exporting(path: impl Into<PathBuf>) -> Self {
        Self {
            enabled: true,
            export_path: Some(path.into()),
            ..Self::default()
        }
    }

    /// Sampling rate as a per-mille integer, clamped to [0, 1000].
    pub fn sample_per_mille(&self) -> u32 {
        (self.sample_rate.clamp(0.0, 1.0) * 1000.0).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_disabled_full_sampling() {
        let c = ObsConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.sample_per_mille(), 1000);
        assert!(c.sink_jsonl);
        assert!(!c.sink_chrome);
        assert!(c.export_path.is_none());
    }

    #[test]
    fn sample_rate_clamps() {
        let mut c = ObsConfig::on();
        c.sample_rate = 2.5;
        assert_eq!(c.sample_per_mille(), 1000);
        c.sample_rate = -1.0;
        assert_eq!(c.sample_per_mille(), 0);
        c.sample_rate = 0.25;
        assert_eq!(c.sample_per_mille(), 250);
    }
}
