//! Task lineage: one record per Parsl task joining the Parsl task id to
//! the CWL step id it implements (when the task came through the
//! `core`/`runners` bridge) plus the submit → dispatch → complete
//! timestamps and the attempt count.

use parking_lot::Mutex;
use std::collections::HashMap;

/// The life of one task across layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageRecord {
    /// Parsl task id (also the span lineage id).
    pub task: u64,
    /// Task label at submit time.
    pub label: String,
    /// CWL step id, when the task was compiled from a workflow step.
    pub cwl_step: Option<String>,
    /// Service run namespace (`tenant/run-id`), when the task was
    /// submitted through a multi-run daemon. `None` for one-shot runs.
    pub run: Option<String>,
    /// Submit timestamp, µs since run start.
    pub submit_us: u64,
    /// First dispatch timestamp, µs since run start (0 = never
    /// dispatched, e.g. memoized or dependency-failed).
    pub dispatch_us: u64,
    /// Completion timestamp, µs since run start (0 = still running).
    pub complete_us: u64,
    /// Dispatch attempts (retries and re-dispatches included).
    pub attempts: u32,
    /// Terminal outcome: `completed`, `failed`, or `memoized`.
    pub outcome: Option<String>,
}

const SHARDS: usize = 8;

pub(crate) struct LineageTable {
    shards: [Mutex<HashMap<u64, LineageRecord>>; SHARDS],
}

impl LineageTable {
    pub(crate) fn new() -> Self {
        Self {
            shards: [(); SHARDS].map(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, task: u64) -> &Mutex<HashMap<u64, LineageRecord>> {
        &self.shards[(task as usize) % SHARDS]
    }

    pub(crate) fn submit(&self, task: u64, label: &str, at_us: u64) {
        self.shard(task)
            .lock()
            .entry(task)
            .or_insert_with(|| LineageRecord {
                task,
                label: label.to_string(),
                cwl_step: None,
                run: None,
                submit_us: at_us,
                dispatch_us: 0,
                complete_us: 0,
                attempts: 0,
                outcome: None,
            });
    }

    pub(crate) fn with<R>(&self, task: u64, f: impl FnOnce(&mut LineageRecord) -> R) -> Option<R> {
        self.shard(task).lock().get_mut(&task).map(f)
    }

    /// All records, sorted by task id.
    pub(crate) fn snapshot(&self) -> Vec<LineageRecord> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().values().cloned());
        }
        all.sort_by_key(|r| r.task);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_is_idempotent_and_snapshot_sorted() {
        let t = LineageTable::new();
        t.submit(2, "b", 20);
        t.submit(1, "a", 10);
        t.submit(1, "a-again", 99); // first submit wins
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].task, 1);
        assert_eq!(snap[0].label, "a");
        assert_eq!(snap[0].submit_us, 10);
        assert_eq!(snap[1].task, 2);
    }

    #[test]
    fn with_mutates_existing_records_only() {
        let t = LineageTable::new();
        t.submit(7, "x", 1);
        assert_eq!(t.with(7, |r| r.attempts += 1), Some(()));
        assert_eq!(t.with(8, |r| r.attempts += 1), None);
        assert_eq!(t.snapshot()[0].attempts, 1);
    }
}
