//! Trace exporters.
//!
//! * **JSONL** — one self-describing JSON object per line (`type` is
//!   `meta`, `span`, `lineage`, or `metric`). This is the format the
//!   `parsl-trace` CLI reads back.
//! * **Chrome `trace_event`** — a JSON array of complete (`"ph": "X"`)
//!   events loadable in `chrome://tracing` or Perfetto; one timeline row
//!   per task lineage.

use crate::json::escape;
use crate::lineage::LineageRecord;
use crate::metrics::{MetricSnapshot, MetricValue};
use crate::span::SpanRecord;
use std::io::Write;
use std::path::Path;

/// Trace format version written in the `meta` line.
pub const FORMAT_VERSION: u32 = 1;

/// Render one span as a JSONL line (no trailing newline).
pub fn span_line(s: &SpanRecord) -> String {
    format!(
        "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"lineage\":{},\
         \"kind\":\"{}\",\"name\":\"{}\",\"start_us\":{},\"end_us\":{}}}",
        s.id,
        s.parent,
        s.lineage,
        s.kind.as_str(),
        escape(&s.name),
        s.start_us,
        s.end_us
    )
}

/// Render one lineage record as a JSONL line.
pub fn lineage_line(r: &LineageRecord) -> String {
    let step = match &r.cwl_step {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".to_string(),
    };
    let outcome = match &r.outcome {
        Some(o) => format!("\"{}\"", escape(o)),
        None => "null".to_string(),
    };
    let run = match &r.run {
        Some(n) => format!("\"{}\"", escape(n)),
        None => "null".to_string(),
    };
    format!(
        "{{\"type\":\"lineage\",\"task\":{},\"label\":\"{}\",\"cwl_step\":{step},\
         \"run\":{run},\"submit_us\":{},\"dispatch_us\":{},\"complete_us\":{},\
         \"attempts\":{},\"outcome\":{outcome}}}",
        r.task,
        escape(&r.label),
        r.submit_us,
        r.dispatch_us,
        r.complete_us,
        r.attempts
    )
}

/// Render one metric snapshot as a JSONL line.
pub fn metric_line(m: &MetricSnapshot) -> String {
    match &m.value {
        MetricValue::Counter(v) => format!(
            "{{\"type\":\"metric\",\"kind\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
            escape(&m.name)
        ),
        MetricValue::Gauge(v) => format!(
            "{{\"type\":\"metric\",\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{v}}}",
            escape(&m.name)
        ),
        MetricValue::Histogram {
            count,
            sum,
            p50,
            p99,
            max,
        } => format!(
            "{{\"type\":\"metric\",\"kind\":\"histogram\",\"name\":\"{}\",\
             \"count\":{count},\"sum\":{sum},\"p50\":{p50},\"p99\":{p99},\"max\":{max}}}",
            escape(&m.name)
        ),
    }
}

/// Write the complete JSONL trace to `path`.
pub fn write_jsonl(
    path: &Path,
    spans: &[SpanRecord],
    lineage: &[LineageRecord],
    metrics: &[MetricSnapshot],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        out,
        "{{\"type\":\"meta\",\"format\":\"parsl-trace\",\"version\":{FORMAT_VERSION}}}"
    )?;
    for s in spans {
        writeln!(out, "{}", span_line(s))?;
    }
    for r in lineage {
        writeln!(out, "{}", lineage_line(r))?;
    }
    for m in metrics {
        writeln!(out, "{}", metric_line(m))?;
    }
    out.flush()
}

/// Write the spans in Chrome `trace_event` format.
pub fn write_chrome(path: &Path, spans: &[SpanRecord]) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "{{\"traceEvents\":[")?;
    for (i, s) in spans.iter().enumerate() {
        let comma = if i + 1 == spans.len() { "" } else { "," };
        // Complete event; duration at least 1µs so instant markers render.
        writeln!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
             \"name\":\"{}\",\"cat\":\"{}\",\
             \"args\":{{\"span\":{},\"parent\":{}}}}}{comma}",
            s.lineage,
            s.start_us,
            s.duration_us().max(1),
            escape(&format!("{}:{}", s.kind.as_str(), s.name)),
            s.kind.as_str(),
            s.id,
            s.parent
        )?;
    }
    writeln!(out, "],\"displayTimeUnit\":\"ms\"}}")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    fn span(id: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: 0,
            lineage: 1,
            kind: SpanKind::WorkerExec,
            name: "task \"one\"".to_string(),
            start_us: 10,
            end_us: 25,
        }
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let line = span_line(&span(3));
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("worker_exec"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("task \"one\""));

        let rec = LineageRecord {
            task: 4,
            label: "l".into(),
            cwl_step: Some("resize".into()),
            run: Some("alice/run-3".into()),
            submit_us: 1,
            dispatch_us: 2,
            complete_us: 3,
            attempts: 1,
            outcome: Some("completed".into()),
        };
        let v = crate::json::parse(&lineage_line(&rec)).unwrap();
        assert_eq!(v.get("cwl_step").unwrap().as_str(), Some("resize"));
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("completed"));

        let m = MetricSnapshot {
            name: "n".into(),
            value: MetricValue::Histogram {
                count: 2,
                sum: 30,
                p50: 10,
                p99: 20,
                max: 20,
            },
        };
        let v = crate::json::parse(&metric_line(&m)).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("histogram"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let dir = std::env::temp_dir().join(format!("obs-chrome-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.chrome.json");
        write_chrome(&path, &[span(1), span(2)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v = crate::json::parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
