//! Property tests for the sharded metrics registry: concurrent updates
//! from N threads must merge to *exact* totals, and histogram ranks must
//! be monotone.

use obs::{Observability, SpanKind};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Striped counters lose nothing under contention: the merged value
    /// equals the sum of everything every thread added.
    #[test]
    fn concurrent_counter_updates_merge_exactly(
        per_thread in vec(vec(1u64..1000, 1..50), 2..8),
    ) {
        let obs = Observability::on();
        let counter = obs.counter("prop.counter");
        let expected: u64 = per_thread.iter().flatten().sum();
        let threads: Vec<_> = per_thread
            .into_iter()
            .map(|adds| {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for n in adds {
                        counter.add(n);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        prop_assert_eq!(counter.value(), expected);
    }

    /// Histograms under concurrent recording keep exact count/sum/max and
    /// a monotone rank function that ends at the total count.
    #[test]
    fn concurrent_histogram_updates_merge_exactly(
        per_thread in vec(vec(0u64..2_000_000, 1..60), 2..8),
    ) {
        let obs = Observability::on();
        let hist = obs.histogram("prop.histogram");
        let all: Vec<u64> = per_thread.iter().flatten().copied().collect();
        let expected_count = all.len() as u64;
        let expected_sum: u64 = all.iter().sum();
        let expected_max = all.iter().copied().max().unwrap_or(0);

        let threads: Vec<_> = per_thread
            .into_iter()
            .map(|values| {
                let hist = hist.clone();
                std::thread::spawn(move || {
                    for v in values {
                        hist.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        prop_assert_eq!(hist.count(), expected_count);
        prop_assert_eq!(hist.sum(), expected_sum);
        prop_assert_eq!(hist.max(), expected_max);

        // Ranks are monotone non-decreasing and account for every sample.
        let ranks = hist.cumulative_ranks();
        prop_assert!(ranks.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*ranks.last().unwrap(), expected_count);

        // Quantiles are monotone in q and bounded by the max.
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let values: Vec<u64> = qs.iter().map(|&q| hist.value_at_quantile(q)).collect();
        prop_assert!(values.windows(2).all(|w| w[0] <= w[1]), "{:?}", values);
        prop_assert!(*values.last().unwrap() <= expected_max);
    }

    /// Sampled span recording from many threads never loses a sampled
    /// span and never records an unsampled one.
    #[test]
    fn concurrent_span_recording_is_lossless(threads in 2usize..6, per_thread in 1usize..40) {
        let obs = Arc::new(Observability::on());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let obs = obs.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let lineage = (t * per_thread + i) as u64 + 1;
                        let span = obs.start_span(SpanKind::WorkerExec, lineage, 0, "w");
                        obs.finish_span(span);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let spans = obs.spans();
        prop_assert_eq!(spans.len(), threads * per_thread);
        // Ids are unique and timestamps well-formed.
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.dedup();
        prop_assert_eq!(ids.len(), spans.len());
        prop_assert!(spans.iter().all(|s| s.end_us >= s.start_us));
    }
}
