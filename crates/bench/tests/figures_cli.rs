//! Smoke tests for the `figures` binary: argument handling and a minimal
//! end-to-end sweep of each figure.

use std::process::Command;

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

#[test]
fn quick_fig2_produces_table() {
    let out = figures()
        .args(["fig2", "--quick", "--trials", "1", "--scale", "0.005"])
        .output()
        .expect("figures runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("## fig2"), "{text}");
    assert!(text.contains("cwltool-js"), "{text}");
    assert!(text.contains("parsl-inline-python"), "{text}");
    // Three data rows for the quick sweep (2, 16, 128 words).
    for n in ["       2", "      16", "     128"] {
        assert!(text.contains(n), "missing row {n:?} in {text}");
    }
}

#[test]
fn quick_fig1b_produces_table() {
    let out = figures()
        .args([
            "fig1b",
            "--quick",
            "--trials",
            "1",
            "--scale",
            "0.005",
            "--image-size",
            "16",
        ])
        .output()
        .expect("figures runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("## fig1b"), "{text}");
    assert!(text.contains("parsl-threads"), "{text}");
}

#[test]
fn bad_arguments_rejected() {
    let out = figures().args(["fig9"]).output().expect("figures runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown figure"));

    let out = figures()
        .args(["fig2", "--bogus"])
        .output()
        .expect("figures runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));

    let out = figures()
        .args(["fig2", "--trials"])
        .output()
        .expect("figures runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));
}
