//! Fig. 2 drivers: expression-evaluation cost as word count scales.
//!
//! The JS variants run the scatter-of-words workflow whose tool carries an
//! `InlineJavascriptRequirement` expression — each scatter instance costs
//! one modelled node-process spawn plus marshalling of the full input
//! object (which contains all `n` words), exactly the cwltool/Toil
//! evaluation path; total cost grows superlinearly (n spawns × O(n)
//! marshalling). The Python variant runs the same workflow with the paper's
//! `InlinePythonRequirement` — evaluated in-process, no boundary cost.

use crate::workload::{fresh_run_dir, words};
use cwl_parsl::{CwlAppOptions, ParslWorkflowRunner};
use cwlexec::BuiltinDispatch;
use parsl::{Config, DataFlowKernel};
use runners::{RefRunner, ToilRunner};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use yamlite::{Map, Value};

/// Which system + expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig2System {
    /// cwltool evaluating InlineJavascript.
    CwltoolJs,
    /// Toil evaluating InlineJavascript.
    ToilJs,
    /// parsl-cwl evaluating the paper's InlinePython.
    ParslPython,
}

impl Fig2System {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Fig2System::CwltoolJs => "cwltool-js",
            Fig2System::ToilJs => "toil-js",
            Fig2System::ParslPython => "parsl-inline-python",
        }
    }
}

/// Run one Fig. 2 point: capitalize `n_words` words on a single node with
/// `slots` parallel slots (paper: one node of the HPC cluster).
pub fn run_fig2(
    system: Fig2System,
    n_words: usize,
    slots: usize,
    dir: &Path,
    trial: usize,
) -> Result<Duration, String> {
    let mut inputs = Map::new();
    inputs.insert("words", Value::Seq(words(n_words)));
    let run_dir = fresh_run_dir(dir, system.label(), trial * 10_000 + n_words);
    match system {
        Fig2System::CwltoolJs => {
            let wf = crate::fixtures_dir().join("scatter_words_js.cwl");
            let runner = RefRunner::new(slots, Arc::new(BuiltinDispatch));
            Ok(runner.run(&wf, &inputs, &run_dir)?.elapsed)
        }
        Fig2System::ToilJs => {
            let wf = crate::fixtures_dir().join("scatter_words_js.cwl");
            let runner = ToilRunner::single_machine(
                slots,
                run_dir.join("job-store"),
                Arc::new(BuiltinDispatch),
            );
            Ok(runner.run(&wf, &inputs, &run_dir)?.elapsed)
        }
        Fig2System::ParslPython => {
            let wf = crate::fixtures_dir().join("scatter_words_py.cwl");
            let dfk = DataFlowKernel::try_new(Config::local_threads(slots))?;
            let runner = ParslWorkflowRunner::new(
                &dfk,
                CwlAppOptions::in_dir(&run_dir).with_builtin_tools(),
            );
            let start = Instant::now();
            runner.run(&wf, &inputs)?;
            let elapsed = start.elapsed();
            dfk.shutdown();
            Ok(elapsed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_capitalize_words() {
        gridsim::TimeScale::set(0.01);
        let dir = crate::scratch_dir("fig2-smoke");
        for system in [
            Fig2System::CwltoolJs,
            Fig2System::ToilJs,
            Fig2System::ParslPython,
        ] {
            let d = run_fig2(system, 4, 4, &dir, 0).unwrap();
            assert!(d > Duration::ZERO, "{system:?}");
        }
        gridsim::TimeScale::set(1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The outputs of the JS and Python paths must agree — same words,
    /// same capitalization.
    #[test]
    fn js_and_python_agree_on_results() {
        gridsim::TimeScale::set(0.0);
        let dir = crate::scratch_dir("fig2-agree");
        let mut inputs = Map::new();
        inputs.insert("words", Value::Seq(words(3)));

        let js_dir = fresh_run_dir(&dir, "js", 0);
        let runner = RefRunner::new(2, Arc::new(BuiltinDispatch));
        let js_report = runner
            .run(
                crate::fixtures_dir().join("scatter_words_js.cwl"),
                &inputs,
                &js_dir,
            )
            .unwrap();

        let py_dir = fresh_run_dir(&dir, "py", 0);
        let dfk = DataFlowKernel::try_new(Config::local_threads(2)).unwrap();
        let prunner =
            ParslWorkflowRunner::new(&dfk, CwlAppOptions::in_dir(&py_dir).with_builtin_tools());
        let py_out = prunner
            .run(crate::fixtures_dir().join("scatter_words_py.cwl"), &inputs)
            .unwrap();
        dfk.shutdown();

        let read_all = |files: &Value| -> Vec<String> {
            files
                .as_seq()
                .unwrap()
                .iter()
                .map(|f| std::fs::read_to_string(f["path"].as_str().unwrap()).unwrap())
                .collect()
        };
        let js_texts = read_all(js_report.outputs.get("capitalized").unwrap());
        let py_texts = read_all(py_out.get("capitalized").unwrap());
        assert_eq!(js_texts, py_texts);
        assert_eq!(js_texts, vec!["Word0000\n", "Word0001\n", "Word0002\n"]);
        gridsim::TimeScale::set(1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
