//! Benchmark harness library: workload generation and the per-system
//! drivers behind the `figures` binary and the Criterion benches.
//!
//! Experiment map (see DESIGN.md §3):
//!
//! * **Fig. 1a** — image-processing workflow runtime vs. image count on the
//!   three-node cluster: `parsl-cwl` (HTEX) vs cwltool vs Toil;
//! * **Fig. 1b** — same on a single node: `parsl-cwl`
//!   (ThreadPoolExecutor) vs cwltool `--parallel` vs Toil;
//! * **Fig. 2** — expression-evaluation runtime vs word count:
//!   InlineJavascript under cwltool/Toil vs InlinePython under `parsl-cwl`;
//! * **dispatch throughput** — tasks/second through the submit→dispatch
//!   pipeline (`throughput` binary, [`dispatch`] module): no-op storms via
//!   ThreadPool and HTEX plus an expression-heavy scatter, each measured
//!   against its pre-optimization baseline (unbatched messaging,
//!   expression cache disabled) and emitted as `BENCH_dispatch.json`;
//! * **stage-in throughput** — the data plane's zero-copy ladder vs the
//!   byte-copy baseline on the Fig. 1 scatter (`staging` binary,
//!   [`staging`] module), emitted as `BENCH_staging.json`.
//!
//! All modelled overheads scale with [`gridsim::TimeScale`]; the drivers
//! here do not set it — the callers (the `figures` binary, the benches)
//! choose the compression factor and record it.

pub mod dispatch;
pub mod fig1;
pub mod fig2;
pub mod staging;
pub mod stats;
pub mod workload;

pub use dispatch::{run_expr_scatter, run_noop_htex, run_noop_threadpool, Throughput};
pub use fig1::{run_fig1, Fig1Config, Fig1System};
pub use fig2::{run_fig2, Fig2System};
pub use stats::{mean_stdev, time_trials};

use std::path::PathBuf;

/// The repository's fixtures directory.
pub fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

/// A scratch directory for a named experiment.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("parsl-cwl-bench-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}
