//! Fig. 1 drivers: the scattered image-processing workflow on each system.
//!
//! All systems execute the identical CWL document
//! (`fixtures/scatter_images.cwl`, the §VI scatter wrapper over Listing 3)
//! on identical inputs with the same in-process tool dispatch; they differ
//! only in the runner architecture, which is the paper's comparison.
//!
//! Slot accounting follows the paper's setup ("each workflow system uses
//! all cores available on the allocated nodes"): every system gets
//! `nodes × cores_per_node` concurrent slots, so the measured differences
//! come from per-task overhead structure, not from capacity.

use crate::workload::{fresh_run_dir, image_inputs};
use cwl_parsl::{CwlAppOptions, ParslWorkflowRunner};
use cwlexec::BuiltinDispatch;
use gridsim::{BatchScheduler, ClusterSpec, LatencyModel, SchedulerConfig};
use parsl::{Config, DataFlowKernel, HtexConfig, SlurmProvider};
use runners::{RefRunner, ToilRunner};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use yamlite::{Map, Value};

/// Which system runs the workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig1System {
    /// cwltool with `--parallel`.
    Cwltool,
    /// toil-cwl-runner with the (simulated) slurm batch system.
    Toil,
    /// parsl-cwl on the HighThroughputExecutor (Fig. 1a).
    ParslHtex,
    /// parsl-cwl on the ThreadPoolExecutor (Fig. 1b).
    ParslThreads,
}

impl Fig1System {
    /// Display name used in the figure legend.
    pub fn label(&self) -> &'static str {
        match self {
            Fig1System::Cwltool => "cwltool",
            Fig1System::Toil => "toil",
            Fig1System::ParslHtex => "parsl-htex",
            Fig1System::ParslThreads => "parsl-threads",
        }
    }
}

/// One Fig. 1 measurement point.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// Number of images scattered over.
    pub n_images: usize,
    /// Cluster shape (paper: 3 × 48 for Fig. 1a, 1 × 48 for Fig. 1b).
    pub nodes: usize,
    pub cores_per_node: usize,
    /// Input image edge length in pixels (compute per task).
    pub image_size: u32,
    /// Workload seed.
    pub seed: u64,
    /// Scratch directory (inputs are cached here across runs).
    pub dir: PathBuf,
    /// Trial index (isolates run directories).
    pub trial: usize,
}

impl Fig1Config {
    fn slots(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    fn inputs(&self) -> Map {
        let images = image_inputs(&self.dir, self.n_images, self.image_size, self.seed);
        let mut m = Map::new();
        m.insert("input_images", Value::Seq(images));
        m.insert("size", Value::Int((self.image_size / 2).max(1) as i64));
        m.insert("sepia", Value::Bool(true));
        m.insert("radius", Value::Int(1));
        m
    }
}

/// Run one point; returns the workflow makespan.
pub fn run_fig1(system: Fig1System, cfg: &Fig1Config) -> Result<Duration, String> {
    let wf = crate::fixtures_dir().join("scatter_images.cwl");
    let inputs = cfg.inputs();
    let run_dir = fresh_run_dir(&cfg.dir, system.label(), cfg.trial);
    match system {
        Fig1System::Cwltool => {
            let runner = RefRunner::new(cfg.slots(), Arc::new(BuiltinDispatch));
            let report = runner.run(&wf, &inputs, &run_dir)?;
            Ok(report.elapsed)
        }
        Fig1System::Toil => {
            let cluster = ClusterSpec::homogeneous("fig1", cfg.nodes, cfg.cores_per_node, 126);
            let runner = ToilRunner::slurm(
                &cluster,
                run_dir.join("job-store"),
                Arc::new(BuiltinDispatch),
            );
            let report = runner.run(&wf, &inputs, &run_dir)?;
            Ok(report.elapsed)
        }
        Fig1System::ParslHtex => {
            let cluster = ClusterSpec::homogeneous("fig1", cfg.nodes, cfg.cores_per_node, 126);
            let sched = BatchScheduler::new(cluster, SchedulerConfig::default());
            let config = Config::htex(
                HtexConfig {
                    label: "fig1-htex".to_string(),
                    nodes: cfg.nodes,
                    workers_per_node: cfg.cores_per_node,
                    latency: LatencyModel::cluster_lan(),
                    ..HtexConfig::default()
                },
                Arc::new(SlurmProvider::new(sched)),
            );
            // Pilot-job provisioning happens before the timer starts, as in
            // the paper (they measure workflow runtime on an allocation).
            let dfk = DataFlowKernel::try_new(config)?;
            let runner = ParslWorkflowRunner::new(
                &dfk,
                CwlAppOptions::in_dir(&run_dir).with_builtin_tools(),
            );
            let start = Instant::now();
            runner.run(&wf, &inputs)?;
            let elapsed = start.elapsed();
            dfk.shutdown();
            Ok(elapsed)
        }
        Fig1System::ParslThreads => {
            let dfk = DataFlowKernel::try_new(Config::local_threads(cfg.slots()))?;
            let runner = ParslWorkflowRunner::new(
                &dfk,
                CwlAppOptions::in_dir(&run_dir).with_builtin_tools(),
            );
            let start = Instant::now();
            runner.run(&wf, &inputs)?;
            let elapsed = start.elapsed();
            dfk.shutdown();
            Ok(elapsed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke: every system completes a small point and produces the same
    /// number of outputs.
    #[test]
    fn all_systems_run_small_point() {
        gridsim::TimeScale::set(0.01);
        let dir = crate::scratch_dir("fig1-smoke");
        for (i, system) in [
            Fig1System::Cwltool,
            Fig1System::Toil,
            Fig1System::ParslHtex,
            Fig1System::ParslThreads,
        ]
        .into_iter()
        .enumerate()
        {
            let cfg = Fig1Config {
                n_images: 3,
                nodes: 2,
                cores_per_node: 2,
                image_size: 8,
                seed: 1,
                dir: dir.clone(),
                trial: i,
            };
            let d = run_fig1(system, &cfg).unwrap();
            assert!(d > Duration::ZERO);
        }
        gridsim::TimeScale::set(1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
