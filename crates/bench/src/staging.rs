//! Stage-in throughput over the Fig. 1 scatter workload: one input image
//! fanned out to N task working directories, the motivating case for the
//! content-addressed data plane ("hash once, link N times").
//!
//! Each mode runs the identical loop through a fresh [`Stager`]; only the
//! materialization differs. `Copy` is the baseline (what cwltool-style
//! staging does per task); `Link`/`Auto` climb the hardlink → reflink →
//! copy ladder. The staged trees are digested afterwards so the driver can
//! assert the zero-copy path produced byte-identical inputs.

use datastore::{ContentStore, Digest, StageMode, StageStats, Stager};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One mode's measurement.
#[derive(Clone, Debug)]
pub struct StagingRun {
    /// Staging mode measured.
    pub mode: StageMode,
    /// Files materialized (scatter width).
    pub files: usize,
    /// Size of the scattered input, bytes.
    pub bytes_per_file: u64,
    /// Wall-clock for the stage-in loop only (store open and input
    /// generation excluded).
    pub elapsed: Duration,
    /// The stager's counters after the run.
    pub stats: StageStats,
    /// Digest of every staged destination (they must all agree).
    pub staged_digest: Digest,
}

impl StagingRun {
    pub fn files_per_sec(&self) -> f64 {
        self.files as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    pub fn mb_per_sec(&self) -> f64 {
        (self.files as u64 * self.bytes_per_file) as f64
            / 1e6
            / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Write the scatter input: a deterministic gradient image, as in the
/// paper's Fig. 1 image workload.
pub fn write_scatter_input(path: &Path, px: u32) -> Result<u64, String> {
    imaging::write_rimg(path, &imaging::gradient(px, px, 7))
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    std::fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| format!("stat {}: {e}", path.display()))
}

/// Stage `src` into `files` per-task directories under a fresh run
/// directory, timing the loop. The run directory (store included) is
/// recreated so every trial starts cold.
pub fn run_scatter_stage_in(
    scratch: &Path,
    src: &Path,
    mode: StageMode,
    files: usize,
) -> Result<StagingRun, String> {
    let run_dir = scratch.join(format!("run-{}", mode.as_str()));
    let _ = std::fs::remove_dir_all(&run_dir);
    std::fs::create_dir_all(&run_dir).map_err(|e| format!("mkdir {}: {e}", run_dir.display()))?;
    let store = ContentStore::open(run_dir.join("cas"))
        .map_err(|e| format!("opening store under {}: {e}", run_dir.display()))?;
    let stager = Stager::new(store, mode);
    let bytes_per_file = std::fs::metadata(src)
        .map(|m| m.len())
        .map_err(|e| format!("stat {}: {e}", src.display()))?;

    let mut dests = Vec::with_capacity(files);
    let start = Instant::now();
    for k in 0..files {
        let dest = run_dir.join(format!("task_{k}")).join("input.rimg");
        stager
            .stage_file(src, &dest)
            .map_err(|e| format!("staging {}: {e}", dest.display()))?;
        dests.push(dest);
    }
    let elapsed = start.elapsed();

    let staged_digest = verify_identical(&dests)?;
    Ok(StagingRun {
        mode,
        files,
        bytes_per_file,
        elapsed,
        stats: stager.stats(),
        staged_digest,
    })
}

/// Digest every staged destination and require them to agree; returns the
/// common digest. Bounded sample? No — identity is the whole point, so
/// all destinations are read.
fn verify_identical(dests: &[PathBuf]) -> Result<Digest, String> {
    let mut common: Option<Digest> = None;
    for dest in dests {
        let d = Digest::of_file(dest).map_err(|e| format!("hashing {}: {e}", dest.display()))?;
        match common {
            None => common = Some(d),
            Some(c) if c != d => {
                return Err(format!(
                    "staged outputs diverge: {} hashes {} (expected {})",
                    dest.display(),
                    d.checksum(),
                    c.checksum()
                ))
            }
            _ => {}
        }
    }
    common.ok_or_else(|| "no files staged".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_agree_and_link_saves_bytes() {
        let scratch = std::env::temp_dir().join(format!("bench-staging-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).unwrap();
        let src = scratch.join("input.rimg");
        write_scatter_input(&src, 16).unwrap();

        let copy = run_scatter_stage_in(&scratch, &src, StageMode::Copy, 8).unwrap();
        let link = run_scatter_stage_in(&scratch, &src, StageMode::Link, 8).unwrap();
        assert_eq!(copy.staged_digest, link.staged_digest);
        assert_eq!(copy.stats.copies, 8);
        assert_eq!(link.stats.links + link.stats.copies, 8);
        // On any filesystem with hardlinks, the link run writes no bytes.
        if link.stats.copies == 0 {
            assert_eq!(link.stats.bytes_saved, 8 * link.bytes_per_file);
        }
        std::fs::remove_dir_all(&scratch).ok();
    }
}
