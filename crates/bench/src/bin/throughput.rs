//! `throughput` — dispatch-pipeline throughput driver (EXPERIMENTS.md).
//!
//! ```text
//! throughput [--smoke] [--json PATH] [--tasks N] [--expr-tasks N]
//!            [--trials N] [--scale F] [--check PATH] [--tolerance F]
//! ```
//!
//! Runs three scenarios through the DataFlowKernel and prints tasks/sec
//! for each, measuring every optimized configuration against its own
//! pre-optimization baseline in the same process:
//!
//! * no-op storm via ThreadPool (raw kernel overhead);
//! * no-op storm via HTEX over a modelled LAN — `batch_size: 1`
//!   (one message per task, the pre-batching protocol) vs the batched
//!   default;
//! * expression-heavy scatter — compiled-expression cache disabled
//!   (every evaluation re-parses) vs enabled.
//!
//! `--smoke` shrinks the task counts for CI. `--json PATH` additionally
//! writes the numbers as JSON (the committed `BENCH_dispatch.json` is
//! produced by a full run). Each scenario runs `--trials` times and the
//! best run is reported, which filters scheduler noise on small machines.
//!
//! `--check PATH` compares this run against a committed reference JSON and
//! fails if any scenario's throughput regressed by more than `--tolerance`
//! (default 0.05, overridable via `BENCH_CHECK_TOLERANCE`). The reference
//! predates the observability instrumentation, so the check doubles as the
//! zero-cost-when-disabled guarantee: the instrumented-but-disabled
//! pipeline must stay within noise of the uninstrumented numbers. Only
//! meaningful against a reference produced with the same task counts.
//! Check runs get up to three fresh measurement attempts; the first
//! clean one passes.

use bench::dispatch::{run_expr_scatter, run_noop_htex, run_noop_threadpool, Throughput};
use std::process::ExitCode;

struct Options {
    smoke: bool,
    json: Option<String>,
    tasks: usize,
    expr_tasks: usize,
    trials: usize,
    scale: f64,
    check: Option<String>,
    tolerance: f64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("throughput: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        json: None,
        tasks: 10_000,
        expr_tasks: 2_000,
        trials: 3,
        scale: 1.0,
        check: None,
        tolerance: std::env::var("BENCH_CHECK_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.05),
    };
    let mut tasks_set = false;
    let mut expr_set = false;
    let mut trials_set = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--json" => opts.json = Some(next(args, &mut i, "--json")?.to_string()),
            "--tasks" => {
                opts.tasks = next(args, &mut i, "--tasks")?
                    .parse()
                    .map_err(|_| "bad --tasks")?;
                tasks_set = true;
            }
            "--expr-tasks" => {
                opts.expr_tasks = next(args, &mut i, "--expr-tasks")?
                    .parse()
                    .map_err(|_| "bad --expr-tasks")?;
                expr_set = true;
            }
            "--trials" => {
                opts.trials = next(args, &mut i, "--trials")?
                    .parse()
                    .map_err(|_| "bad --trials")?;
                trials_set = true;
            }
            "--scale" => {
                opts.scale = next(args, &mut i, "--scale")?
                    .parse()
                    .map_err(|_| "bad --scale")?;
            }
            "--check" => opts.check = Some(next(args, &mut i, "--check")?.to_string()),
            "--tolerance" => {
                opts.tolerance = next(args, &mut i, "--tolerance")?
                    .parse()
                    .map_err(|_| "bad --tolerance")?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    if opts.smoke {
        if !tasks_set {
            opts.tasks = 300;
        }
        if !expr_set {
            opts.expr_tasks = 200;
        }
        if !trials_set {
            opts.trials = 1;
        }
    }
    if opts.trials == 0 {
        return Err("--trials must be at least 1".to_string());
    }
    Ok(opts)
}

fn next<'a>(args: &'a [String], i: &mut usize, what: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("{what} needs a value"))
}

/// Best (highest-throughput) of `trials` runs.
fn best(
    trials: usize,
    mut f: impl FnMut() -> Result<Throughput, String>,
) -> Result<Throughput, String> {
    let mut top: Option<Throughput> = None;
    for _ in 0..trials {
        let t = f()?;
        if top.is_none_or(|b| t.tasks_per_sec() > b.tasks_per_sec()) {
            top = Some(t);
        }
    }
    Ok(top.expect("trials >= 1"))
}

fn run(args: &[String]) -> Result<(), String> {
    let opts = parse_options(args)?;
    // Wall-clock throughput on a busy machine varies run to run; a
    // regression gate is after a capability, so give check runs up to
    // three fresh measurement attempts and pass on the first clean one. A
    // real regression fails every attempt.
    let attempts = if opts.check.is_some() { 3 } else { 1 };
    let mut result = Ok(());
    for attempt in 1..=attempts {
        result = measure(&opts);
        match &result {
            Ok(()) => break,
            Err(e) if attempt < attempts => {
                eprintln!("throughput: attempt {attempt}/{attempts} failed ({e}); re-measuring");
            }
            Err(_) => {}
        }
    }
    result
}

fn measure(opts: &Options) -> Result<(), String> {
    gridsim::TimeScale::set(opts.scale);
    let workers = 4;

    println!(
        "# dispatch throughput: {} no-op tasks, {} scatter instances, \
         best of {} trial(s), time-scale {}",
        opts.tasks, opts.expr_tasks, opts.trials, opts.scale
    );

    let tpe = best(opts.trials, || run_noop_threadpool(opts.tasks, workers))?;
    report("threadpool no-op", &tpe);

    let htex_base = best(opts.trials, || run_noop_htex(opts.tasks, 1))?;
    report("htex no-op, batch 1 (baseline)", &htex_base);
    let htex_opt = best(opts.trials, || run_noop_htex(opts.tasks, 8))?;
    report("htex no-op, batch 8", &htex_opt);
    let htex_speedup = htex_opt.tasks_per_sec() / htex_base.tasks_per_sec();
    println!("  -> batching speedup: {htex_speedup:.2}x");

    // Expression scatter: run the cache-off baseline both first and the
    // cache-on configuration second; stats come from the cache counters.
    let mut off_stats = expr::cache::stats();
    let expr_base = best(opts.trials, || {
        let (t, s) = run_expr_scatter(opts.expr_tasks, workers, false)?;
        off_stats = s;
        Ok(t)
    })?;
    report("expr scatter, cache off (baseline)", &expr_base);
    let mut on_stats = expr::cache::stats();
    let expr_opt = best(opts.trials, || {
        let (t, s) = run_expr_scatter(opts.expr_tasks, workers, true)?;
        on_stats = s;
        Ok(t)
    })?;
    report("expr scatter, cache on", &expr_opt);
    let expr_speedup = expr_opt.tasks_per_sec() / expr_base.tasks_per_sec();
    println!(
        "  -> cache speedup: {expr_speedup:.2}x ({} hits / {} misses)",
        on_stats.hits, on_stats.misses
    );

    if let Some(path) = &opts.json {
        let json = render_json(
            opts, &tpe, &htex_base, &htex_opt, &expr_base, &expr_opt, &on_stats,
        );
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("# wrote {path}");
    }
    if let Some(path) = &opts.check {
        check_regressions(
            path,
            opts.tolerance,
            &[
                ("threadpool_noop", tpe.tasks_per_sec()),
                ("htex_noop.optimized_batch_8", htex_opt.tasks_per_sec()),
                ("expr_scatter.optimized_cache_on", expr_opt.tasks_per_sec()),
            ],
        )?;
    }
    Ok(())
}

/// Compare measured throughputs against the reference JSON at `path`;
/// error if any scenario fell more than `tolerance` below its reference.
fn check_regressions(path: &str, tolerance: f64, measured: &[(&str, f64)]) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let json = obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "# regression check vs {path} (tolerance {:.0}%)",
        tolerance * 100.0
    );
    let mut failures = Vec::new();
    for (key, now) in measured {
        let mut node = &json;
        for part in key.split('.') {
            node = node
                .get(part)
                .ok_or_else(|| format!("{path}: missing {key:?}"))?;
        }
        let reference = node
            .get("tasks_per_sec")
            .and_then(obs::json::Json::as_f64)
            .ok_or_else(|| format!("{path}: {key:?} has no tasks_per_sec"))?;
        let ratio = now / reference;
        let verdict = if ratio >= 1.0 - tolerance {
            "ok"
        } else {
            "REGRESSED"
        };
        println!(
            "  {key:<34} {now:>10.0} vs {reference:>10.0} tasks/s ({:+.1}%) {verdict}",
            (ratio - 1.0) * 100.0
        );
        if ratio < 1.0 - tolerance {
            failures.push(format!(
                "{key}: {now:.0} tasks/s is {:.1}% below reference {reference:.0}",
                (1.0 - ratio) * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "throughput regressions:\n  {}",
            failures.join("\n  ")
        ))
    }
}

fn report(name: &str, t: &Throughput) {
    println!(
        "{name:<36} {:>8} tasks in {:>8.3}s = {:>10.0} tasks/s",
        t.tasks,
        t.elapsed.as_secs_f64(),
        t.tasks_per_sec()
    );
}

fn scenario_json(t: &Throughput) -> String {
    format!(
        "{{\"tasks\": {}, \"seconds\": {:.6}, \"tasks_per_sec\": {:.1}}}",
        t.tasks,
        t.elapsed.as_secs_f64(),
        t.tasks_per_sec()
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    opts: &Options,
    tpe: &Throughput,
    htex_base: &Throughput,
    htex_opt: &Throughput,
    expr_base: &Throughput,
    expr_opt: &Throughput,
    on_stats: &expr::CacheStats,
) -> String {
    let htex_speedup = htex_opt.tasks_per_sec() / htex_base.tasks_per_sec();
    let expr_speedup = expr_opt.tasks_per_sec() / expr_base.tasks_per_sec();
    format!(
        "{{\n  \"smoke\": {},\n  \"time_scale\": {},\n  \"trials\": {},\n  \
         \"threadpool_noop\": {},\n  \
         \"htex_noop\": {{\n    \"baseline_batch_1\": {},\n    \
         \"optimized_batch_8\": {},\n    \"speedup\": {:.3}\n  }},\n  \
         \"expr_scatter\": {{\n    \"baseline_cache_off\": {},\n    \
         \"optimized_cache_on\": {},\n    \"cache_hits\": {},\n    \
         \"cache_misses\": {},\n    \"speedup\": {:.3},\n    \
         \"improvement_pct\": {:.1}\n  }}\n}}\n",
        opts.smoke,
        opts.scale,
        opts.trials,
        scenario_json(tpe),
        scenario_json(htex_base),
        scenario_json(htex_opt),
        htex_speedup,
        scenario_json(expr_base),
        scenario_json(expr_opt),
        on_stats.hits,
        on_stats.misses,
        expr_speedup,
        (expr_speedup - 1.0) * 100.0,
    )
}
