//! `figures` — regenerate the paper's evaluation figures.
//!
//! ```text
//! figures fig1a [--trials N] [--scale F] [--quick|--full] [--image-size PX]
//! figures fig1b [--trials N] [--scale F] [--quick|--full] [--image-size PX]
//! figures fig2  [--trials N] [--scale F] [--quick|--full]
//! figures all   [...]
//! ```
//!
//! Output: one table per figure, with one row per x-axis point and one
//! column per system (mean seconds ± stdev over trials). The shape — who
//! wins, by what factor, and the curvature — is what reproduces the paper;
//! absolute numbers depend on the `--scale` compression of modelled
//! overheads (see EXPERIMENTS.md).

use bench::{mean_stdev, run_fig1, run_fig2, scratch_dir, Fig1Config, Fig1System, Fig2System};
use std::process::ExitCode;

struct Options {
    trials: usize,
    scale: f64,
    sweep: Sweep,
    image_size: u32,
}

#[derive(Clone, Copy, PartialEq)]
enum Sweep {
    Quick,
    Default,
    Full,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("figures: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    // Defaults calibrated on this repository's reference machine so the
    // cwltool/parsl ratio at the largest point lands near the paper's
    // ~1.5× (see EXPERIMENTS.md for the calibration notes).
    let mut opts = Options {
        trials: 3,
        scale: 0.05,
        sweep: Sweep::Default,
        image_size: 128,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trials" => {
                opts.trials = next(args, &mut i, "--trials")?
                    .parse()
                    .map_err(|_| "bad --trials")?;
            }
            "--scale" => {
                opts.scale = next(args, &mut i, "--scale")?
                    .parse()
                    .map_err(|_| "bad --scale")?;
            }
            "--image-size" => {
                opts.image_size = next(args, &mut i, "--image-size")?
                    .parse()
                    .map_err(|_| "bad --image-size")?;
            }
            "--quick" => opts.sweep = Sweep::Quick,
            "--full" => opts.sweep = Sweep::Full,
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    Ok(opts)
}

fn next<'a>(args: &'a [String], i: &mut usize, what: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("{what} needs a value"))
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let opts = parse_options(args.get(1..).unwrap_or(&[]))?;
    gridsim::TimeScale::set(opts.scale);
    println!(
        "# overhead time-scale: {} (modelled latencies compressed; ratios preserved)",
        opts.scale
    );
    match cmd {
        "fig1a" => fig1(&opts, true),
        "fig1b" => fig1(&opts, false),
        "fig2" => fig2(&opts),
        "all" => {
            fig1(&opts, true)?;
            fig1(&opts, false)?;
            fig2(&opts)
        }
        other => Err(format!("unknown figure {other:?} (fig1a|fig1b|fig2|all)")),
    }
}

fn image_points(sweep: Sweep) -> Vec<usize> {
    match sweep {
        Sweep::Quick => vec![1, 10, 50],
        Sweep::Default => vec![1, 10, 50, 100, 250],
        Sweep::Full => vec![1, 10, 50, 100, 250, 500, 1000],
    }
}

fn word_points(sweep: Sweep) -> Vec<usize> {
    match sweep {
        Sweep::Quick => vec![2, 16, 128],
        Sweep::Default => vec![2, 8, 32, 128, 512, 1024],
        Sweep::Full => vec![2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
    }
}

fn fig1(opts: &Options, three_node: bool) -> Result<(), String> {
    let (name, nodes, parsl) = if three_node {
        ("fig1a (three nodes)", 3, Fig1System::ParslHtex)
    } else {
        ("fig1b (one node)", 1, Fig1System::ParslThreads)
    };
    let systems = [Fig1System::Cwltool, Fig1System::Toil, parsl];
    println!("\n## {name}: runtime (s) vs number of images");
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "images",
        systems[0].label(),
        systems[1].label(),
        systems[2].label()
    );
    let dir = scratch_dir(if three_node { "fig1a" } else { "fig1b" });
    for n in image_points(opts.sweep) {
        let mut cells = Vec::new();
        for system in systems {
            let mut samples = Vec::with_capacity(opts.trials);
            for trial in 0..opts.trials {
                let cfg = Fig1Config {
                    n_images: n,
                    nodes,
                    cores_per_node: 48,
                    image_size: opts.image_size,
                    seed: 12345,
                    dir: dir.clone(),
                    trial,
                };
                samples.push(run_fig1(system, &cfg)?);
            }
            let (mean, sd) = mean_stdev(&samples);
            cells.push(format!("{mean:9.3} ±{sd:5.3}"));
        }
        println!("{n:>8} {:>16} {:>16} {:>16}", cells[0], cells[1], cells[2]);
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn fig2(opts: &Options) -> Result<(), String> {
    let systems = [
        Fig2System::CwltoolJs,
        Fig2System::ToilJs,
        Fig2System::ParslPython,
    ];
    println!("\n## fig2: expression-processing runtime (s) vs number of words (one node)");
    println!(
        "{:>8} {:>16} {:>16} {:>20}",
        "words",
        systems[0].label(),
        systems[1].label(),
        systems[2].label()
    );
    let dir = scratch_dir("fig2");
    for n in word_points(opts.sweep) {
        let mut cells = Vec::new();
        for system in systems {
            let mut samples = Vec::with_capacity(opts.trials);
            for trial in 0..opts.trials {
                samples.push(run_fig2(system, n, 48, &dir, trial)?);
            }
            let (mean, sd) = mean_stdev(&samples);
            cells.push(format!("{mean:9.3} ±{sd:5.3}"));
        }
        println!("{n:>8} {:>16} {:>16} {:>20}", cells[0], cells[1], cells[2]);
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
