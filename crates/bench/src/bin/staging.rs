//! `staging` — data-plane stage-in throughput driver (EXPERIMENTS.md).
//!
//! ```text
//! staging [--smoke] [--json PATH] [--images N] [--px N] [--trials N]
//!         [--check PATH] [--tolerance F]
//! ```
//!
//! Measures the Fig. 1 scatter workload's stage-in: one input image fanned
//! out to `--images` task directories, byte-copy baseline vs the zero-copy
//! ladder (`link`) vs the probing `auto` mode. Every staged destination is
//! re-hashed, so a run also proves the fast path is byte-identical to the
//! baseline.
//!
//! `--smoke` shrinks the scatter for CI. `--json PATH` writes the numbers
//! (the committed `BENCH_staging.json` comes from a full run). `--check
//! PATH` re-measures and gates on the link-vs-copy *speedup ratio*, which
//! self-normalizes across machines: it must stay above the 3x floor the
//! data plane is sized for (full runs only) and within `--tolerance`
//! (default 0.5 — link timing is metadata-bound and noisy; override via
//! `BENCH_CHECK_TOLERANCE`) of the reference ratio. Check runs get up to
//! three fresh measurement attempts; the first clean one passes.

use bench::staging::{run_scatter_stage_in, write_scatter_input, StagingRun};
use datastore::StageMode;
use std::process::ExitCode;

struct Options {
    smoke: bool,
    json: Option<String>,
    images: usize,
    px: u32,
    trials: usize,
    check: Option<String>,
    tolerance: f64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("staging: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        json: None,
        images: 1000,
        px: 512,
        trials: 3,
        check: None,
        tolerance: std::env::var("BENCH_CHECK_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.5),
    };
    let mut images_set = false;
    let mut trials_set = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--json" => opts.json = Some(next(args, &mut i, "--json")?.to_string()),
            "--images" => {
                opts.images = next(args, &mut i, "--images")?
                    .parse()
                    .map_err(|_| "bad --images")?;
                images_set = true;
            }
            "--px" => {
                opts.px = next(args, &mut i, "--px")?
                    .parse()
                    .map_err(|_| "bad --px")?;
            }
            "--trials" => {
                opts.trials = next(args, &mut i, "--trials")?
                    .parse()
                    .map_err(|_| "bad --trials")?;
                trials_set = true;
            }
            "--check" => opts.check = Some(next(args, &mut i, "--check")?.to_string()),
            "--tolerance" => {
                opts.tolerance = next(args, &mut i, "--tolerance")?
                    .parse()
                    .map_err(|_| "bad --tolerance")?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    if opts.smoke {
        if !images_set {
            opts.images = 60;
        }
        if !trials_set {
            opts.trials = 1;
        }
    }
    if opts.images == 0 || opts.trials == 0 {
        return Err("--images and --trials must be at least 1".to_string());
    }
    Ok(opts)
}

fn next<'a>(args: &'a [String], i: &mut usize, what: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("{what} needs a value"))
}

/// Best (highest-throughput) of `trials` runs.
fn best(
    trials: usize,
    mut f: impl FnMut() -> Result<StagingRun, String>,
) -> Result<StagingRun, String> {
    let mut top: Option<StagingRun> = None;
    for _ in 0..trials {
        let t = f()?;
        if top
            .as_ref()
            .is_none_or(|b| t.files_per_sec() > b.files_per_sec())
        {
            top = Some(t);
        }
    }
    Ok(top.expect("trials >= 1"))
}

fn run(args: &[String]) -> Result<(), String> {
    let opts = parse_options(args)?;
    let scratch = std::env::temp_dir().join(format!("bench-staging-{}", std::process::id()));
    // Link timings are metadata-bound and vary several-fold with ambient
    // machine state (writeback, cache pressure from whatever ran before).
    // A regression gate is after a capability — "the ladder still
    // delivers" — so re-measure afresh up to three times and pass on the
    // first clean attempt; a real regression (ladder degraded to copying)
    // fails every one.
    let attempts = if opts.check.is_some() { 3 } else { 1 };
    let mut result = Ok(());
    for attempt in 1..=attempts {
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).map_err(|e| e.to_string())?;
        result = measure(&opts, &scratch);
        // The copy runs dirty hundreds of MB; never leave them behind.
        let _ = std::fs::remove_dir_all(&scratch);
        match &result {
            Ok(()) => break,
            Err(e) if attempt < attempts => {
                eprintln!("staging: attempt {attempt}/{attempts} failed ({e}); re-measuring");
            }
            Err(_) => {}
        }
    }
    result
}

fn measure(opts: &Options, scratch: &std::path::Path) -> Result<(), String> {
    let src = scratch.join("input.rimg");
    let bytes = write_scatter_input(&src, opts.px)?;

    println!(
        "# stage-in throughput: {} images x {} bytes, best of {} trial(s)",
        opts.images, bytes, opts.trials
    );

    // Untimed warm-up: the first staging pass after a build or test run
    // pays for cold dentry/inode caches and whatever writeback is still
    // draining; none of that belongs to any mode's measurement.
    run_scatter_stage_in(scratch, &src, StageMode::Link, opts.images)?;

    // Link modes go first: the copy baseline dirties ~N x image-size of
    // page cache, and its writeback would otherwise contend with the
    // metadata-bound link timings.
    let link = best(opts.trials, || {
        run_scatter_stage_in(scratch, &src, StageMode::Link, opts.images)
    })?;
    report("link", &link);
    let auto = best(opts.trials, || {
        run_scatter_stage_in(scratch, &src, StageMode::Auto, opts.images)
    })?;
    report("auto", &auto);
    let copy = best(opts.trials, || {
        run_scatter_stage_in(scratch, &src, StageMode::Copy, opts.images)
    })?;
    report("copy (baseline)", &copy);

    // Byte-identity across modes: every staged tree hashed to one digest
    // inside each run; the modes must also agree with each other.
    if copy.staged_digest != link.staged_digest || copy.staged_digest != auto.staged_digest {
        return Err("staged content differs between modes".to_string());
    }
    println!(
        "  outputs byte-identical across modes ({})",
        copy.staged_digest.checksum()
    );

    let link_speedup = link.files_per_sec() / copy.files_per_sec();
    let auto_speedup = auto.files_per_sec() / copy.files_per_sec();
    println!("  -> link speedup: {link_speedup:.2}x, auto speedup: {auto_speedup:.2}x");

    if let Some(path) = &opts.json {
        let json = render_json(opts, bytes, &copy, &link, &auto);
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("# wrote {path}");
    }
    if let Some(path) = &opts.check {
        check_regression(path, opts.tolerance, &link, link_speedup)?;
        if !opts.smoke && link_speedup < 3.0 {
            return Err(format!(
                "link-mode stage-in is only {link_speedup:.2}x the copy baseline \
                 (the data plane is sized for >= 3x at this scatter width)"
            ));
        }
        println!("# check passed");
    }
    Ok(())
}

/// Compare the link-vs-copy speedup against the committed reference.
fn check_regression(
    path: &str,
    tolerance: f64,
    link: &StagingRun,
    link_speedup: f64,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let json = obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let reference = json
        .get("speedup_link_vs_copy")
        .and_then(obs::json::Json::as_f64)
        .ok_or_else(|| format!("{path}: missing speedup_link_vs_copy"))?;
    let ratio = link_speedup / reference;
    println!(
        "# regression check vs {path} (tolerance {:.0}%): speedup {link_speedup:.2}x vs \
         {reference:.2}x reference ({:+.1}%), link {:.0} files/s",
        tolerance * 100.0,
        (ratio - 1.0) * 100.0,
        link.files_per_sec(),
    );
    if ratio < 1.0 - tolerance {
        return Err(format!(
            "zero-copy advantage regressed: {link_speedup:.2}x is {:.1}% below the \
             reference {reference:.2}x",
            (1.0 - ratio) * 100.0
        ));
    }
    Ok(())
}

fn report(name: &str, r: &StagingRun) {
    println!(
        "{name:<18} {:>6} files in {:>8.4}s = {:>9.0} files/s ({:>8.1} MB/s); \
         {} links, {} copies, {} bytes saved",
        r.files,
        r.elapsed.as_secs_f64(),
        r.files_per_sec(),
        r.mb_per_sec(),
        r.stats.links,
        r.stats.copies,
        r.stats.bytes_saved
    );
}

fn mode_json(r: &StagingRun) -> String {
    format!(
        "{{\"files\": {}, \"seconds\": {:.6}, \"files_per_sec\": {:.1}, \
         \"mb_per_sec\": {:.1}, \"links\": {}, \"copies\": {}, \
         \"bytes_saved\": {}, \"bytes_copied\": {}}}",
        r.files,
        r.elapsed.as_secs_f64(),
        r.files_per_sec(),
        r.mb_per_sec(),
        r.stats.links,
        r.stats.copies,
        r.stats.bytes_saved,
        r.stats.bytes_copied
    )
}

fn render_json(
    opts: &Options,
    bytes: u64,
    copy: &StagingRun,
    link: &StagingRun,
    auto: &StagingRun,
) -> String {
    format!(
        "{{\n  \"smoke\": {},\n  \"images\": {},\n  \"bytes_per_image\": {},\n  \
         \"copy\": {},\n  \"link\": {},\n  \"auto\": {},\n  \
         \"speedup_link_vs_copy\": {:.3},\n  \"speedup_auto_vs_copy\": {:.3},\n  \
         \"outputs_identical\": true,\n  \"staged_checksum\": \"{}\"\n}}\n",
        opts.smoke,
        opts.images,
        bytes,
        mode_json(copy),
        mode_json(link),
        mode_json(auto),
        link.files_per_sec() / copy.files_per_sec(),
        auto.files_per_sec() / copy.files_per_sec(),
        copy.staged_digest.checksum(),
    )
}
