//! Deterministic workload generation for the figure sweeps.

use std::path::{Path, PathBuf};
use yamlite::Value;

/// Generate (or reuse from a previous call) `n` synthetic input images of
/// `size`×`size` pixels under `dir/inputs-<size>`, returning their paths as
/// CWL File values. Generation is seeded and idempotent, so repeated trials
/// and different runners share identical inputs.
pub fn image_inputs(dir: &Path, n: usize, size: u32, seed: u64) -> Vec<Value> {
    let inputs_dir = dir.join(format!("inputs-{size}"));
    std::fs::create_dir_all(&inputs_dir).expect("inputs dir");
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let path = inputs_dir.join(format!("img{i:05}.rimg"));
        if !path.exists() {
            let img = imaging::gradient(size, size, seed.wrapping_add(i as u64));
            imaging::write_rimg(&path, &img).expect("write input image");
        }
        out.push(Value::str(path.to_string_lossy().into_owned()));
    }
    out
}

/// Generate `n` deterministic words for the Fig. 2 sweep.
pub fn words(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::str(format!("word{i:04}"))).collect()
}

/// Fresh per-run working directory beneath `base` (runners must not share
/// step directories across trials).
pub fn fresh_run_dir(base: &Path, tag: &str, trial: usize) -> PathBuf {
    let d = base.join(format!("run-{tag}-{trial}"));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("run dir");
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_inputs_idempotent_and_seeded() {
        let dir = crate::scratch_dir("workload-test");
        let a = image_inputs(&dir, 3, 8, 42);
        let b = image_inputs(&dir, 3, 8, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let img = imaging::read_rimg(a[0].as_str().unwrap()).unwrap();
        assert_eq!(img.width(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn words_deterministic() {
        assert_eq!(
            words(2),
            vec![Value::str("word0000"), Value::str("word0001")]
        );
        assert_eq!(words(1024).len(), 1024);
    }
}
