//! Throughput drivers for the submit→dispatch fast path.
//!
//! Three scenarios, each measured as tasks/second through the full
//! DataFlowKernel submit→dispatch→complete pipeline:
//!
//! * **no-op storm, ThreadPool** — pure kernel overhead: submission,
//!   dependency bookkeeping, promise resolution;
//! * **no-op storm, HTEX** — the same storm through the pilot-job
//!   executor over a modelled LAN, run once with `batch_size: 1` (the
//!   pre-batching one-message-per-task protocol) and once batched, so the
//!   per-message latency amortization is measured against its own
//!   baseline;
//! * **expression-heavy scatter** — every task evaluates the same set of
//!   inline-Python expression fields over its own inputs (as a CWL
//!   scatter step evaluates its tool's expression-bearing fields per
//!   instance), run with the compiled-expression cache disabled
//!   (pre-cache baseline: every evaluation lexes and parses) and enabled.
//!
//! The `throughput` binary drives these and emits `BENCH_dispatch.json`
//! with baseline and optimized numbers side by side (see EXPERIMENTS.md).

use expr::{cache, EvalContext, ExpressionEngine, PyEngine};
use gridsim::LatencyModel;
use parsl::{AppArg, Config, DataFlowKernel, FnApp, HtexConfig, LocalProvider};
use std::sync::Arc;
use std::time::{Duration, Instant};
use yamlite::{vmap, Value};

/// One measured scenario run.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Tasks completed.
    pub tasks: usize,
    /// Wall-clock from first submission to last completion.
    pub elapsed: Duration,
}

impl Throughput {
    /// Completed tasks per second.
    pub fn tasks_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.tasks as f64 / secs
        }
    }
}

fn noop_body() -> parsl::AppBody {
    FnApp::new(|_: &[Value]| Ok(Value::Null))
}

/// No-op storm through the ThreadPoolExecutor: measures raw kernel
/// overhead per task with no executor latency in the way.
pub fn run_noop_threadpool(tasks: usize, workers: usize) -> Result<Throughput, String> {
    let dfk = DataFlowKernel::try_new(Config::local_threads(workers))?;
    let start = Instant::now();
    for _ in 0..tasks {
        dfk.submit("noop", vec![], noop_body());
    }
    dfk.wait_all();
    let elapsed = start.elapsed();
    dfk.shutdown();
    Ok(Throughput { tasks, elapsed })
}

/// No-op storm through HTEX over a modelled LAN (two nodes × two
/// workers). `batch_size: 1` reproduces the pre-batching protocol — one
/// network message (and one paid latency) per task in each direction.
pub fn run_noop_htex(tasks: usize, batch_size: usize) -> Result<Throughput, String> {
    let dfk = DataFlowKernel::try_new(Config::htex(
        HtexConfig {
            label: format!("tput-b{batch_size}"),
            nodes: 2,
            workers_per_node: 2,
            latency: LatencyModel::cluster_lan(),
            batch_size,
            ..HtexConfig::default()
        },
        Arc::new(LocalProvider::new(2)),
    ))?;
    let start = Instant::now();
    for _ in 0..tasks {
        dfk.submit("noop", vec![], noop_body());
    }
    dfk.wait_all();
    let elapsed = start.elapsed();
    dfk.shutdown();
    Ok(Throughput { tasks, elapsed })
}

/// The expression-bearing fields one scatter instance evaluates, mirroring
/// a CWL tool whose arguments, stdout name, and output binding all carry
/// inline-Python expressions (the paper's `InlinePythonRequirement`).
/// Every instance evaluates the same sources over different inputs — the
/// exact shape the compiled-expression cache exists for.
const SCATTER_FSTRINGS: &[&str] = &[
    "f\"{capitalize_word($(inputs.word))}\"",
    "f\"{decorate($(inputs.word))}-{decorate($(inputs.tag))}\"",
    "f\"{capitalize_word($(inputs.tag))}.{measure($(inputs.word))}.txt\"",
    "f\"{measure($(inputs.word))}:{measure($(inputs.tag))}:{capitalize_word($(inputs.word))}\"",
];
const SCATTER_PARENS: &[&str] = &["len($(inputs.word))", "measure($(inputs.tag))"];

const SCATTER_LIB: &str = "\
def capitalize_word(word):
    return word.title()

def decorate(word):
    return word.upper()

def measure(word):
    return len(word)
";

/// Expression-heavy scatter: `tasks` instances, each evaluating the full
/// field set against its own context, dispatched through the ThreadPool
/// DFK. With `cache_enabled: false` every evaluation re-lexes and
/// re-parses its source (the pre-cache baseline); with it enabled each
/// distinct source compiles once. Returns the run plus the cache counters
/// observed during it.
pub fn run_expr_scatter(
    tasks: usize,
    workers: usize,
    cache_enabled: bool,
) -> Result<(Throughput, expr::CacheStats), String> {
    let engine = Arc::new(PyEngine::compile(SCATTER_LIB).map_err(|e| format!("scatter lib: {e}"))?);
    let was_enabled = cache::set_enabled(cache_enabled);
    cache::clear_all();
    cache::reset_stats();
    let dfk = DataFlowKernel::try_new(Config::local_threads(workers))?;
    let start = Instant::now();
    for i in 0..tasks {
        let engine = engine.clone();
        let body = FnApp::new(move |vals: &[Value]| {
            let word = vals[0].as_str().unwrap_or_default().to_string();
            let ctx = EvalContext::from_inputs(vmap! {
                "word" => word,
                "tag" => format!("tag{}", vals[1].as_int().unwrap_or(0)),
            });
            let mut sink = String::new();
            for src in SCATTER_FSTRINGS {
                let v = engine
                    .eval_literal(src, &ctx)
                    .expect("scatter field is an f-string")
                    .map_err(|e| parsl::TaskError::failed(e.to_string()))?;
                sink.push_str(&v.to_display_string());
            }
            for src in SCATTER_PARENS {
                let v = engine
                    .eval_paren(src, &ctx)
                    .map_err(|e| parsl::TaskError::failed(e.to_string()))?;
                sink.push_str(&v.to_display_string());
            }
            Ok(Value::str(sink))
        });
        dfk.submit(
            "scatter",
            vec![
                AppArg::value(format!("word{i:04}")),
                AppArg::value(i as i64),
            ],
            body,
        );
    }
    dfk.wait_all();
    let elapsed = start.elapsed();
    dfk.shutdown();
    let stats = cache::stats();
    cache::set_enabled(was_enabled);
    cache::clear_all();
    Ok((Throughput { tasks, elapsed }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threadpool_storm_completes() {
        let t = run_noop_threadpool(200, 4).unwrap();
        assert_eq!(t.tasks, 200);
        assert!(t.tasks_per_sec() > 0.0);
    }

    #[test]
    fn htex_storm_completes_batched_and_unbatched() {
        gridsim::TimeScale::set(0.02);
        let base = run_noop_htex(60, 1).unwrap();
        let opt = run_noop_htex(60, 8).unwrap();
        gridsim::TimeScale::set(1.0);
        assert_eq!(base.tasks, 60);
        assert_eq!(opt.tasks, 60);
    }

    #[test]
    fn expr_scatter_cache_counters_reflect_mode() {
        let (off, off_stats) = run_expr_scatter(50, 4, false).unwrap();
        assert_eq!(off.tasks, 50);
        assert_eq!(off_stats.hits, 0, "disabled cache must never hit");
        let (on, on_stats) = run_expr_scatter(50, 4, true).unwrap();
        assert_eq!(on.tasks, 50);
        assert!(
            on_stats.hits > on_stats.misses,
            "repeated sources must hit: {on_stats:?}"
        );
    }
}
