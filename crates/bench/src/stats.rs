//! Tiny statistics helpers for the figure harness.

use std::time::Duration;

/// Sample mean and (population) standard deviation in seconds.
pub fn mean_stdev(samples: &[Duration]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let xs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// Run `f` `trials` times, timing each run via its returned duration.
pub fn time_trials(
    trials: usize,
    mut f: impl FnMut(usize) -> Result<Duration, String>,
) -> Result<Vec<Duration>, String> {
    let mut out = Vec::with_capacity(trials);
    for t in 0..trials {
        out.push(f(t)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_stdev_basic() {
        let (m, s) = mean_stdev(&[Duration::from_secs(1), Duration::from_secs(3)]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
        assert_eq!(mean_stdev(&[]), (0.0, 0.0));
    }

    #[test]
    fn time_trials_collects() {
        let samples = time_trials(3, |t| Ok(Duration::from_millis(t as u64))).unwrap();
        assert_eq!(samples.len(), 3);
        assert!(time_trials(2, |_| Err("boom".to_string())).is_err());
    }
}
