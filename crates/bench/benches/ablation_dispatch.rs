//! Ablation Abl-1: what the HTEX pilot-job dispatch path costs.
//!
//! Sweeps the modelled network dispatch latency of the
//! HighThroughputExecutor against the zero-latency ThreadPoolExecutor on a
//! fixed task batch — quantifying the price of the pilot-job architecture
//! that buys multi-node scale (DESIGN.md design decision 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parsl::{AppArg, Config, DataFlowKernel, FnApp, HtexConfig, LocalProvider};
use std::sync::Arc;
use std::time::Duration;
use yamlite::Value;

const TASKS: usize = 64;

fn run_batch(dfk: &Arc<DataFlowKernel>) {
    let body = FnApp::new(|vals: &[Value]| Ok(Value::Int(vals[0].as_int().unwrap_or(0) + 1)));
    let futs: Vec<_> = (0..TASKS)
        .map(|i| dfk.submit("t", vec![AppArg::value(i as i64)], body.clone()))
        .collect();
    for f in &futs {
        f.result().expect("task ok");
    }
}

fn bench_dispatch(c: &mut Criterion) {
    gridsim::TimeScale::set(1.0);
    let mut group = c.benchmark_group("ablation_dispatch");
    group.sample_size(10);

    group.bench_function("threadpool", |b| {
        b.iter_batched(
            || DataFlowKernel::new(Config::local_threads(8)),
            |dfk| {
                run_batch(&dfk);
                dfk.shutdown();
            },
            criterion::BatchSize::PerIteration,
        );
    });

    for latency_us in [0u64, 200, 800] {
        group.bench_with_input(
            BenchmarkId::new("htex_dispatch", latency_us),
            &latency_us,
            |b, &us| {
                b.iter_batched(
                    || {
                        let latency = gridsim::LatencyModel {
                            dispatch: Duration::from_micros(us),
                            result: Duration::from_micros(us / 2),
                            jitter_frac: 0.0,
                        };
                        DataFlowKernel::new(Config::htex(
                            HtexConfig {
                                label: "abl".into(),
                                nodes: 2,
                                workers_per_node: 4,
                                latency,
                                ..HtexConfig::default()
                            },
                            Arc::new(LocalProvider::new(4)),
                        ))
                    },
                    |dfk| {
                        run_batch(&dfk);
                        dfk.shutdown();
                    },
                    criterion::BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
