//! Ablation Abl-3: decomposing expression-evaluation cost.
//!
//! Measures the raw interpreters (no modelled boundary): a JS expression, a
//! JS `${...}` body, a Python f-string call, and a plain parameter
//! reference — then the same JS expression with the cwltool boundary model
//! at full scale, separating interpreter time from process-boundary time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expr::{EvalContext, ExpressionEngine, JsCostModel, JsEngine, PyEngine};
use yamlite::Value;

fn ctx(words: usize) -> EvalContext {
    let list: Vec<Value> = (0..words).map(|i| Value::str(format!("w{i:04}"))).collect();
    EvalContext::from_inputs(yamlite::vmap! {
        "word" => "hello",
        "all_words" => Value::Seq(list),
    })
}

fn bench_expr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_expr");
    group.sample_size(20);

    let js = JsEngine::in_process();
    let py = PyEngine::compile("def cap(w):\n    return w.title()\n").unwrap();
    let small = ctx(4);

    group.bench_function("js_expression", |b| {
        b.iter(|| {
            js.eval_paren(
                "inputs.word.charAt(0).toUpperCase() + inputs.word.slice(1)",
                &small,
            )
            .unwrap()
        });
    });
    group.bench_function("js_body", |b| {
        b.iter(|| {
            js.eval_body(
                "var w = inputs.word; return w.charAt(0).toUpperCase() + w.slice(1);",
                &small,
            )
            .unwrap()
        });
    });
    group.bench_function("py_fstring_call", |b| {
        b.iter(|| {
            py.eval_literal("f\"{cap($(inputs.word))}\"", &small)
                .unwrap()
                .unwrap()
        });
    });
    group.bench_function("param_reference", |b| {
        b.iter(|| js.eval_paren("inputs.word", &small).unwrap());
    });

    // Boundary model: spawn + marshalling, growing with context size.
    gridsim::TimeScale::set(0.01);
    let costly = JsEngine::new(JsCostModel::cwltool_like());
    for words in [4usize, 256] {
        let c2 = ctx(words);
        group.bench_with_input(
            BenchmarkId::new("js_with_boundary", words),
            &words,
            |b, _| {
                b.iter(|| {
                    costly
                        .eval_paren(
                            "inputs.word.charAt(0).toUpperCase() + inputs.word.slice(1)",
                            &c2,
                        )
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_expr);
criterion_main!(benches);
