//! Micro-benchmarks of the substrates: YAML parsing, command-line binding,
//! batch-scheduler operations, image kernels, and future plumbing.

use criterion::{criterion_group, criterion_main, Criterion};
use cwl::CommandLineTool;
use gridsim::{BatchScheduler, ClusterSpec, JobRequest, SchedulerConfig};
use parsl::future::promise_pair;
use parsl::TaskId;
use yamlite::Value;

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group.sample_size(30);

    let pipeline_text =
        std::fs::read_to_string(bench::fixtures_dir().join("image_pipeline.cwl")).unwrap();
    group.bench_function("yamlite_parse_workflow", |b| {
        b.iter(|| yamlite::parse_str(&pipeline_text).unwrap());
    });

    let doc = yamlite::parse_str(&pipeline_text).unwrap();
    group.bench_function("workflow_parse_model", |b| {
        b.iter(|| cwl::Workflow::parse(&doc).unwrap());
    });

    group.bench_function("validate_document", |b| {
        b.iter(|| cwl::validate_document(&doc));
    });

    let tool_doc = yamlite::parse_file(bench::fixtures_dir().join("resize_image.cwl")).unwrap();
    let tool = CommandLineTool::parse(&tool_doc).unwrap();
    let inputs = cwl::input::resolve_inputs(
        &tool.inputs,
        match &yamlite::vmap! {
            "input_image" => "/data/in.rimg",
            "output_image" => "out.rimg",
            "size" => 512i64,
        } {
            Value::Map(m) => m,
            _ => unreachable!(),
        },
    )
    .unwrap();
    let engine = expr::JsEngine::in_process();
    group.bench_function("build_command_line", |b| {
        b.iter(|| cwl::build_command(&tool, &inputs, &engine).unwrap());
    });

    group.bench_function("scheduler_submit_release", |b| {
        let sched = BatchScheduler::new(ClusterSpec::small(4, 8), SchedulerConfig::immediate());
        b.iter(|| {
            let j = sched.submit(JobRequest::nodes(2, "micro")).unwrap();
            let nodes = j.wait_running(std::time::Duration::from_secs(1)).unwrap();
            assert_eq!(nodes.len(), 2);
            j.release().unwrap();
        });
    });

    group.bench_function("future_complete_and_read", |b| {
        b.iter(|| {
            let (fut, promise) = promise_pair(TaskId(1));
            promise.complete(Ok(Value::Int(1)));
            fut.result().unwrap()
        });
    });

    let img = imaging::gradient(128, 128, 1);
    group.bench_function("imaging_resize_128_to_64", |b| {
        b.iter(|| imaging::resize_bilinear(&img, 64, 64));
    });
    group.bench_function("imaging_blur_r2_128", |b| {
        b.iter(|| imaging::box_blur(&img, 2));
    });

    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
