//! Ablation Abl-2: cwltool's per-job document reprocessing.
//!
//! Runs the same scattered image workflow with the cwltool profile's
//! revalidation switched on and off — isolating how much of the baseline's
//! per-task cost is re-parsing/re-validating (real CPU work) versus the
//! modelled process start-up.

use bench::{scratch_dir, workload};
use criterion::{criterion_group, criterion_main, Criterion};
use cwlexec::BuiltinDispatch;
use runners::{ExecProfile, RefRunner};
use std::sync::Arc;
use yamlite::{Map, Value};

fn bench_revalidate(c: &mut Criterion) {
    // Zero modelled overheads: only the real revalidation work differs.
    gridsim::TimeScale::set(0.0);
    let dir = scratch_dir("crit-revalidate");
    let wf = bench::fixtures_dir().join("scatter_images.cwl");
    let images = workload::image_inputs(&dir, 8, 16, 3);
    let mut inputs = Map::new();
    inputs.insert("input_images", Value::Seq(images));
    inputs.insert("size", Value::Int(8));
    inputs.insert("sepia", Value::Bool(true));
    inputs.insert("radius", Value::Int(1));

    let mut group = c.benchmark_group("ablation_revalidate");
    group.sample_size(10);
    for revalidate in [false, true] {
        let name = if revalidate {
            "revalidate_on"
        } else {
            "revalidate_off"
        };
        let wf = wf.clone();
        let inputs = inputs.clone();
        let dir = dir.clone();
        group.bench_function(name, |b| {
            let mut profile = ExecProfile::bare(4);
            profile.revalidate_per_task = revalidate;
            let runner = RefRunner::with_profile(profile, Arc::new(BuiltinDispatch));
            let mut trial = 0usize;
            b.iter(|| {
                trial += 1;
                let run_dir = workload::fresh_run_dir(&dir, name, trial);
                runner.run(&wf, &inputs, &run_dir).expect("workflow run")
            });
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_revalidate);
criterion_main!(benches);
