//! Criterion bench for Fig. 2: expression engines at two word counts per
//! system, showing the JS curves bending upward while inline Python stays
//! low. The full sweep lives in the `figures` binary.

use bench::{run_fig2, scratch_dir, Fig2System};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig2(c: &mut Criterion) {
    gridsim::TimeScale::set(0.01);
    let dir = scratch_dir("crit-fig2");
    let mut group = c.benchmark_group("fig2_expressions");
    group.sample_size(10);
    for system in [
        Fig2System::CwltoolJs,
        Fig2System::ToilJs,
        Fig2System::ParslPython,
    ] {
        for n_words in [8usize, 64] {
            let dir = dir.clone();
            group.bench_with_input(
                BenchmarkId::new(system.label(), n_words),
                &n_words,
                |b, &n| {
                    let mut trial = 0usize;
                    b.iter(|| {
                        trial += 1;
                        run_fig2(system, n, 8, &dir, trial).expect("fig2 point")
                    });
                },
            );
        }
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
