//! Criterion bench for Fig. 1: one fixed sweep point per system, at a
//! CI-friendly size. The full sweep lives in the `figures` binary.

use bench::{run_fig1, scratch_dir, Fig1Config, Fig1System};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig1(c: &mut Criterion) {
    // Compress modelled overheads hard so a Criterion run stays fast while
    // the relative ordering is preserved.
    gridsim::TimeScale::set(0.01);
    let dir = scratch_dir("crit-fig1");
    let mut group = c.benchmark_group("fig1_images_n10");
    group.sample_size(10);
    for (system, nodes) in [
        (Fig1System::Cwltool, 1),
        (Fig1System::Toil, 1),
        (Fig1System::ParslThreads, 1),
        (Fig1System::ParslHtex, 3),
    ] {
        let dir = dir.clone();
        group.bench_function(system.label(), |b| {
            let mut trial = 0usize;
            b.iter(|| {
                trial += 1;
                let cfg = Fig1Config {
                    n_images: 10,
                    nodes,
                    cores_per_node: 4,
                    image_size: 32,
                    seed: 7,
                    dir: dir.clone(),
                    trial,
                };
                run_fig1(system, &cfg).expect("fig1 point")
            });
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
