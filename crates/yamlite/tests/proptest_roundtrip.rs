//! Property-based tests: any `Value` we can construct must survive an
//! emit → parse roundtrip, and the parser must never panic on arbitrary input.

use proptest::prelude::*;
use yamlite::{Map, Value};

/// Strategy for scalar values. Floats are restricted to finite values that
/// roundtrip exactly through decimal text (NaN breaks equality; subnormal
/// printing is out of scope).
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1.0e9..1.0e9f64).prop_map(|f| Value::Float((f * 1e3).round() / 1e3)),
        // Printable strings, including YAML-hostile ones.
        proptest::string::string_regex("[ -~]{0,24}")
            .unwrap()
            .prop_map(Value::Str),
        prop_oneof![
            Just("true".to_string()),
            Just("null".to_string()),
            Just("- item".to_string()),
            Just("a: b".to_string()),
            Just("#comment".to_string()),
            Just("line1\nline2\n".to_string()),
            Just("  padded  ".to_string()),
        ]
        .prop_map(Value::Str),
    ]
}

/// Strategy for keys: non-empty printable strings without newline.
fn key() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z_$][a-zA-Z0-9_.$-]{0,12}").unwrap()
}

fn value() -> impl Strategy<Value = Value> {
    scalar().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
            proptest::collection::vec((key(), inner), 0..4)
                .prop_map(|pairs| { Value::Map(pairs.into_iter().collect::<Map>()) }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn emit_parse_roundtrip(v in value()) {
        let text = yamlite::to_string(&v);
        let parsed = yamlite::parse_str(&text)
            .unwrap_or_else(|e| panic!("failed to reparse {text:?}: {e}"));
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn flow_emit_parse_roundtrip(v in value()) {
        let text = yamlite::to_string_flow(&v);
        let parsed = yamlite::parse_str(&text)
            .unwrap_or_else(|e| panic!("failed to reparse flow {text:?}: {e}"));
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn parser_never_panics(s in proptest::string::string_regex("[ -~\\n]{0,200}").unwrap()) {
        let _ = yamlite::parse_str(&s);
    }

    #[test]
    fn parser_never_panics_structured(
        keys in proptest::collection::vec("[a-z]{1,6}", 1..6),
        indents in proptest::collection::vec(0usize..8, 1..6),
    ) {
        // Random indentation ladders exercise the block-structure edge cases.
        let mut doc = String::new();
        for (k, i) in keys.iter().zip(indents.iter()) {
            doc.push_str(&" ".repeat(*i));
            doc.push_str(k);
            doc.push_str(":\n");
        }
        let _ = yamlite::parse_str(&doc);
    }
}
