//! Dotted-path access into [`Value`] trees, e.g. `executor.provider.nodes`
//! or `steps[0].run`. Used by configuration loading and tests.

use crate::value::Value;

/// One segment of a parsed path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Map key.
    Key(String),
    /// Sequence index.
    Index(usize),
}

/// Parse a path like `a.b[2].c` into segments.
///
/// Returns `None` for syntactically invalid paths (unbalanced brackets,
/// non-numeric indices, empty segments).
pub fn parse_path(path: &str) -> Option<Vec<Segment>> {
    let mut segments = Vec::new();
    for part in path.split('.') {
        if part.is_empty() {
            return None;
        }
        let mut rest = part;
        // Leading key portion before any `[`.
        let key_end = rest.find('[').unwrap_or(rest.len());
        let key = &rest[..key_end];
        if !key.is_empty() {
            segments.push(Segment::Key(key.to_string()));
        } else if key_end == 0 && !rest.starts_with('[') {
            return None;
        }
        rest = &rest[key_end..];
        while let Some(open) = rest.find('[') {
            let close = rest.find(']')?;
            if close < open {
                return None;
            }
            let idx: usize = rest[open + 1..close].parse().ok()?;
            segments.push(Segment::Index(idx));
            rest = &rest[close + 1..];
        }
        if !rest.is_empty() {
            return None;
        }
    }
    Some(segments)
}

/// Look up `path` in `value`, returning `None` when any segment is missing.
pub fn get<'a>(value: &'a Value, path: &str) -> Option<&'a Value> {
    let segments = parse_path(path)?;
    let mut cur = value;
    for seg in &segments {
        cur = match seg {
            Segment::Key(k) => cur.get(k)?,
            Segment::Index(i) => cur.get_index(*i)?,
        };
    }
    Some(cur)
}

/// Set `path` in `value`, creating intermediate maps as needed. Intermediate
/// sequence indices must already exist. Returns `false` when the path cannot
/// be applied (e.g. indexing a scalar).
pub fn set(value: &mut Value, path: &str, new: Value) -> bool {
    let Some(segments) = parse_path(path) else {
        return false;
    };
    let mut cur = value;
    for (pos, seg) in segments.iter().enumerate() {
        let last = pos + 1 == segments.len();
        match seg {
            Segment::Key(k) => {
                if cur.is_null() {
                    *cur = Value::Map(crate::Map::new());
                }
                let Some(map) = cur.as_map_mut() else {
                    return false;
                };
                if !map.contains_key(k) {
                    map.insert(k.clone(), Value::Null);
                }
                let slot = map.get_mut(k).expect("just inserted");
                if last {
                    *slot = new;
                    return true;
                }
                cur = slot;
            }
            Segment::Index(i) => {
                let Some(seq) = cur.as_seq_mut() else {
                    return false;
                };
                let Some(slot) = seq.get_mut(*i) else {
                    return false;
                };
                if last {
                    *slot = new;
                    return true;
                }
                cur = slot;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vmap, vseq};

    #[test]
    fn parse_simple() {
        assert_eq!(
            parse_path("a.b").unwrap(),
            vec![Segment::Key("a".into()), Segment::Key("b".into())]
        );
    }

    #[test]
    fn parse_indices() {
        assert_eq!(
            parse_path("steps[2].run").unwrap(),
            vec![
                Segment::Key("steps".into()),
                Segment::Index(2),
                Segment::Key("run".into())
            ]
        );
    }

    #[test]
    fn parse_invalid() {
        assert!(parse_path("").is_none());
        assert!(parse_path("a..b").is_none());
        assert!(parse_path("a[x]").is_none());
        assert!(parse_path("a[1").is_none());
        assert!(parse_path("a]1[").is_none());
        assert!(parse_path("a[1]junk").is_none());
    }

    #[test]
    fn get_nested() {
        let v = vmap! {
            "steps" => Value::Seq(vec![vmap!{"run" => "x.cwl"}]),
        };
        assert_eq!(get(&v, "steps[0].run").unwrap().as_str(), Some("x.cwl"));
        assert!(get(&v, "steps[1].run").is_none());
        assert!(get(&v, "missing").is_none());
    }

    #[test]
    fn set_creates_intermediate_maps() {
        let mut v = Value::Null;
        assert!(set(&mut v, "executor.workers", Value::Int(8)));
        assert_eq!(get(&v, "executor.workers").unwrap().as_int(), Some(8));
    }

    #[test]
    fn set_existing_index() {
        let mut v = vmap! {"xs" => vseq![1i64, 2i64]};
        assert!(set(&mut v, "xs[1]", Value::Int(9)));
        assert_eq!(v["xs"][1].as_int(), Some(9));
        assert!(!set(&mut v, "xs[5]", Value::Int(9)));
    }

    #[test]
    fn set_fails_on_scalar() {
        let mut v = vmap! {"a" => 1i64};
        assert!(!set(&mut v, "a.b", Value::Int(2)));
    }
}
