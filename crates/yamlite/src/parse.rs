//! Indentation-based recursive-descent parser for the YAML subset.
//!
//! The parser works on *logical lines*: raw lines annotated with their indent
//! and 1-based line number. Block structure (mappings, sequences) is derived
//! from indentation; scalars on the remainder of a line are handed to a small
//! cursor-based flow parser that also understands `[...]`/`{...}` flow
//! collections (and therefore JSON).

use crate::error::{ParseError, Position};
use crate::span::SpanIndex;
use crate::value::{Map, Value};

/// Parse a single YAML document from a string.
///
/// A leading `---` document marker is accepted; content after a second
/// document marker is rejected (multi-document streams are out of scope).
pub fn parse_str(text: &str) -> Result<Value, ParseError> {
    parse_impl(text, false).map(|(v, _)| v)
}

/// Parse a single YAML document and also return a [`SpanIndex`] recording
/// the source position of every block mapping key and sequence item, keyed
/// by dotted path (`steps[0].scatter`). Nodes inside flow collections fall
/// back to their nearest block-level ancestor via [`SpanIndex::resolve`].
pub fn parse_str_spanned(text: &str) -> Result<(Value, SpanIndex), ParseError> {
    parse_impl(text, true).map(|(v, s)| (v, s.unwrap_or_default()))
}

fn parse_impl(text: &str, spanned: bool) -> Result<(Value, Option<SpanIndex>), ParseError> {
    let lines = scan_lines(text)?;
    if lines.is_empty() {
        return Ok((Value::Null, spanned.then(SpanIndex::new)));
    }
    let mut p = Parser {
        lines,
        pos: 0,
        path: String::new(),
        spans: spanned.then(SpanIndex::new),
    };
    let v = p.parse_node(0)?;
    if let Some(line) = p.peek() {
        return Err(ParseError::at(
            format!("unexpected content after document root: {:?}", line.content),
            Position::new(line.number, line.indent + 1),
        ));
    }
    Ok((v, p.spans))
}

/// A raw content line with its indentation and source position.
#[derive(Debug, Clone)]
struct Line {
    indent: usize,
    content: String,
    number: usize,
}

/// Split the input into logical lines: tabs rejected in indentation, blank
/// and comment-only lines dropped (except inside block scalars, which are
/// re-read from `raw` later — so we also keep a copy of blank lines tagged by
/// `is_blank` for block-scalar bodies).
fn scan_lines(text: &str) -> Result<Vec<Line>, ParseError> {
    let mut out = Vec::new();
    let mut seen_doc_marker = false;
    for (i, raw) in text.lines().enumerate() {
        let number = i + 1;
        let without_cr = raw.strip_suffix('\r').unwrap_or(raw);
        let indent = without_cr.len() - without_cr.trim_start_matches(' ').len();
        if without_cr[indent..].starts_with('\t') {
            return Err(ParseError::at(
                "tab characters are not allowed in indentation",
                Position::new(number, indent + 1),
            ));
        }
        let content = &without_cr[indent..];
        if content.is_empty() {
            out.push(Line {
                indent,
                content: String::new(),
                number,
            });
            continue;
        }
        if content == "---" || content.starts_with("--- ") {
            if seen_doc_marker {
                return Err(ParseError::at(
                    "multi-document streams are not supported",
                    Position::new(number, 1),
                ));
            }
            seen_doc_marker = true;
            // Content may follow the marker on the same line: `--- foo`.
            let rest = content.trim_start_matches("---").trim_start();
            if !rest.is_empty() {
                out.push(Line {
                    indent,
                    content: rest.to_string(),
                    number,
                });
            }
            continue;
        }
        if content == "..." {
            break; // explicit end-of-document
        }
        out.push(Line {
            indent,
            content: content.to_string(),
            number,
        });
    }
    Ok(out)
}

/// True when the line is blank or only a comment (ignorable for structure).
fn is_ignorable(content: &str) -> bool {
    let t = content.trim_start();
    t.is_empty() || t.starts_with('#')
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
    /// Dotted path of the node currently being parsed (span recording only).
    path: String,
    /// When `Some`, key/item positions are recorded here as parsing proceeds.
    spans: Option<SpanIndex>,
}

impl Parser {
    /// Next structural (non-blank, non-comment) line without consuming it.
    fn peek(&mut self) -> Option<&Line> {
        while self.pos < self.lines.len() && is_ignorable(&self.lines[self.pos].content) {
            self.pos += 1;
        }
        self.lines.get(self.pos)
    }

    fn err(&self, msg: impl Into<String>, line: &Line) -> ParseError {
        ParseError::at(msg, Position::new(line.number, line.indent + 1))
    }

    /// Extend the current path with a mapping key, returning the length to
    /// truncate back to. No-op (returns the current length) when spans are
    /// not being recorded.
    fn push_key(&mut self, key: &str) -> usize {
        let saved = self.path.len();
        if self.spans.is_some() {
            if !self.path.is_empty() {
                self.path.push('.');
            }
            self.path.push_str(key);
        }
        saved
    }

    /// Extend the current path with a sequence index (see [`Self::push_key`]).
    fn push_index(&mut self, index: usize) -> usize {
        let saved = self.path.len();
        if self.spans.is_some() {
            self.path.push('[');
            self.path.push_str(&index.to_string());
            self.path.push(']');
        }
        saved
    }

    /// Record the position of the node at the current path.
    fn record(&mut self, line: usize, col: usize) {
        if let Some(spans) = self.spans.as_mut() {
            spans.insert(self.path.clone(), Position::new(line, col));
        }
    }

    /// Parse the node starting at the current line, which must have
    /// `indent >= min_indent`. Returns `Null` when there is no such node.
    fn parse_node(&mut self, min_indent: usize) -> Result<Value, ParseError> {
        let Some(line) = self.peek() else {
            return Ok(Value::Null);
        };
        if line.indent < min_indent {
            return Ok(Value::Null);
        }
        let indent = line.indent;
        let content = line.content.clone();
        if content == "-" || content.starts_with("- ") {
            self.parse_sequence(indent)
        } else if let Some(colon) = find_key_colon(&content) {
            let _ = colon;
            self.parse_mapping(indent)
        } else {
            // A standalone scalar (or flow collection) line.
            let number = line.number;
            self.pos += 1;
            let stripped = strip_comment(&content);
            parse_flow_scalar(stripped.trim_end(), number, indent)
        }
    }

    /// Parse a block mapping whose keys sit at exactly `indent`.
    #[allow(clippy::while_let_loop)] // loop body breaks on several conditions
    fn parse_mapping(&mut self, indent: usize) -> Result<Value, ParseError> {
        let mut map = Map::new();
        loop {
            let Some(line) = self.peek() else { break };
            let line = line.clone();
            if line.indent != indent {
                if line.indent > indent {
                    return Err(self.err(
                        format!("unexpected indentation (expected {indent} spaces)"),
                        &line,
                    ));
                }
                break;
            }
            let Some(colon) = find_key_colon(&line.content) else {
                break; // not a mapping entry; let the caller deal with it
            };
            let raw_key = line.content[..colon].trim_end();
            let key = parse_key(raw_key, &line).map_err(|m| self.err(m, &line))?;
            if map.contains_key(&key) {
                return Err(self.err(format!("duplicate mapping key {key:?}"), &line));
            }
            let rest_full = line.content[colon + 1..].trim_start();
            let rest = strip_comment(rest_full);
            let rest = rest.trim_end();
            self.pos += 1;

            let saved = self.push_key(&key);
            self.record(line.number, indent + 1);
            let value = if rest.is_empty() {
                self.parse_child_value(indent)?
            } else if let Some(header) = BlockScalarHeader::parse(rest) {
                self.parse_block_scalar(indent, header)?
            } else {
                parse_flow_scalar(rest, line.number, colon + 2)?
            };
            self.path.truncate(saved);
            map.insert(key, value);
        }
        Ok(Value::Map(map))
    }

    /// Parse the value belonging to a `key:` with nothing after the colon:
    /// either a more-indented block, a sequence at the *same* indent (YAML
    /// permits this), or null.
    fn parse_child_value(&mut self, parent_indent: usize) -> Result<Value, ParseError> {
        let Some(next) = self.peek() else {
            return Ok(Value::Null);
        };
        let next_indent = next.indent;
        let next_is_dash = next.content == "-" || next.content.starts_with("- ");
        if next_indent > parent_indent {
            self.parse_node(next_indent)
        } else if next_indent == parent_indent && next_is_dash {
            self.parse_sequence(parent_indent)
        } else {
            Ok(Value::Null)
        }
    }

    /// Parse a block sequence whose dashes sit at exactly `indent`.
    #[allow(clippy::while_let_loop)] // loop body breaks on several conditions
    fn parse_sequence(&mut self, indent: usize) -> Result<Value, ParseError> {
        let mut items = Vec::new();
        loop {
            let Some(line) = self.peek() else { break };
            if line.indent != indent || !(line.content == "-" || line.content.starts_with("- ")) {
                break;
            }
            let line = line.clone();
            let after_dash_offset = if line.content == "-" { 1 } else { 2 };
            let rest_full = line.content[after_dash_offset.min(line.content.len())..].to_string();
            let rest_trimmed = strip_comment(rest_full.trim_start()).trim_end().to_string();

            let saved = self.push_index(items.len());
            self.record(line.number, indent + 1);
            if rest_trimmed.is_empty() {
                // `-` alone: nested node on following more-indented lines.
                self.pos += 1;
                let item = self.parse_node(indent + 1)?;
                items.push(item);
            } else if let Some(header) = BlockScalarHeader::parse(&rest_trimmed) {
                self.pos += 1;
                items.push(self.parse_block_scalar(indent, header)?);
            } else if find_key_colon(&rest_trimmed).is_some() {
                // `- key: value` — an inline mapping whose keys are indented
                // at the column where the content starts. Rewrite the current
                // line in place to drop the dash, then parse a mapping there.
                let leading_ws = rest_full.len() - rest_full.trim_start().len();
                let content_col = indent + after_dash_offset + leading_ws;
                self.lines[self.pos] = Line {
                    indent: content_col,
                    content: rest_full.trim_start().to_string(),
                    number: line.number,
                };
                let item = self.parse_mapping(content_col)?;
                items.push(item);
            } else {
                self.pos += 1;
                items.push(parse_flow_scalar(&rest_trimmed, line.number, indent + 3)?);
            }
            self.path.truncate(saved);
        }
        Ok(Value::Seq(items))
    }

    /// Parse the body of a literal (`|`) or folded (`>`) block scalar whose
    /// header appeared on a line indented at `parent_indent`.
    fn parse_block_scalar(
        &mut self,
        parent_indent: usize,
        header: BlockScalarHeader,
    ) -> Result<Value, ParseError> {
        // Collect raw body lines: all lines more indented than the parent,
        // plus interleaved blank lines.
        let mut body: Vec<(usize, String)> = Vec::new();
        while self.pos < self.lines.len() {
            let line = &self.lines[self.pos];
            if line.content.is_empty() {
                body.push((0, String::new()));
                self.pos += 1;
                continue;
            }
            if line.indent <= parent_indent {
                break;
            }
            body.push((line.indent, line.content.clone()));
            self.pos += 1;
        }
        // Trim trailing blank lines out of the body; chomping rules decide
        // how many newlines survive.
        let mut trailing_blanks = 0usize;
        while body.last().is_some_and(|(_, c)| c.is_empty()) {
            body.pop();
            trailing_blanks += 1;
        }
        // Determine the block indent: explicit from the header, else the
        // indent of the first non-empty body line.
        let block_indent = match header.explicit_indent {
            Some(n) => parent_indent + n,
            None => body
                .iter()
                .find(|(_, c)| !c.is_empty())
                .map(|(i, _)| *i)
                .unwrap_or(parent_indent + 1),
        };
        let mut text_lines: Vec<String> = Vec::with_capacity(body.len());
        for (ind, content) in &body {
            if content.is_empty() {
                text_lines.push(String::new());
            } else {
                let extra = ind.saturating_sub(block_indent);
                text_lines.push(format!("{}{}", " ".repeat(extra), content));
            }
        }
        let mut text = if header.folded {
            fold_lines(&text_lines)
        } else {
            text_lines.join("\n")
        };
        match header.chomp {
            Chomp::Strip => {}
            Chomp::Clip => {
                if !text.is_empty() {
                    text.push('\n');
                }
            }
            Chomp::Keep => {
                if !text.is_empty() || trailing_blanks > 0 {
                    text.push('\n');
                    for _ in 0..trailing_blanks {
                        text.push('\n');
                    }
                }
            }
        }
        Ok(Value::Str(text))
    }
}

/// Folded-style joining: adjacent non-empty lines are joined with a space;
/// blank lines become newlines. (More-indented lines keep their breaks.)
fn fold_lines(lines: &[String]) -> String {
    let mut out = String::new();
    let mut prev_text = false;
    for line in lines {
        if line.is_empty() {
            out.push('\n');
            prev_text = false;
        } else if line.starts_with(' ') {
            // More-indented content keeps literal line breaks.
            if prev_text {
                out.push('\n');
            }
            out.push_str(line);
            prev_text = true;
        } else {
            if prev_text {
                out.push(' ');
            }
            out.push_str(line);
            prev_text = true;
        }
    }
    out
}

#[derive(Debug, Clone, Copy)]
enum Chomp {
    Clip,
    Strip,
    Keep,
}

#[derive(Debug, Clone, Copy)]
struct BlockScalarHeader {
    folded: bool,
    chomp: Chomp,
    explicit_indent: Option<usize>,
}

impl BlockScalarHeader {
    /// Recognize `|`, `>`, with optional chomping `-`/`+` and explicit indent
    /// digit in either order (e.g. `|-`, `>2`, `|+2`, `|2-`).
    fn parse(s: &str) -> Option<Self> {
        let mut chars = s.chars();
        let first = chars.next()?;
        let folded = match first {
            '|' => false,
            '>' => true,
            _ => return None,
        };
        let mut chomp = Chomp::Clip;
        let mut explicit_indent = None;
        for c in chars {
            match c {
                '-' => chomp = Chomp::Strip,
                '+' => chomp = Chomp::Keep,
                '1'..='9' => explicit_indent = Some(c as usize - '0' as usize),
                _ => return None, // trailing junk: not a header
            }
        }
        Some(Self {
            folded,
            chomp,
            explicit_indent,
        })
    }
}

/// Find the byte index of the `:` that separates a mapping key from its
/// value, or `None` if this line is not a mapping entry. The colon must be
/// outside quotes and brackets and followed by whitespace/EOL.
fn find_key_colon(content: &str) -> Option<usize> {
    let bytes = content.as_bytes();
    let mut depth = 0usize;
    let mut i = 0;
    let mut in_single = false;
    let mut in_double = false;
    while i < bytes.len() {
        let b = bytes[i];
        if in_single {
            if b == b'\'' {
                in_single = false;
            }
        } else if in_double {
            if b == b'\\' {
                i += 1;
            } else if b == b'"' {
                in_double = false;
            }
        } else {
            match b {
                b'\'' => in_single = true,
                b'"' => in_double = true,
                b'[' | b'{' => depth += 1,
                b']' | b'}' => depth = depth.saturating_sub(1),
                b'#' if i > 0 && bytes[i - 1].is_ascii_whitespace() => return None,
                b':' if depth == 0
                    && (i + 1 >= bytes.len() || bytes[i + 1].is_ascii_whitespace()) =>
                {
                    return Some(i);
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Strip a trailing ` #comment` from a line fragment (outside quotes).
fn strip_comment(s: &str) -> &str {
    let bytes = s.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_single {
            if b == b'\'' {
                in_single = false;
            }
        } else if in_double {
            if b == b'\\' {
                i += 1;
            } else if b == b'"' {
                in_double = false;
            }
        } else {
            match b {
                b'\'' => in_single = true,
                b'"' => in_double = true,
                b'#' if i == 0 || bytes[i - 1].is_ascii_whitespace() => {
                    return s[..i].trim_end();
                }
                _ => {}
            }
        }
        i += 1;
    }
    s
}

/// Parse a mapping key: plain or quoted.
fn parse_key(raw: &str, _line: &Line) -> Result<String, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err("empty mapping key".to_string());
    }
    if (raw.starts_with('"') && raw.ends_with('"') && raw.len() >= 2)
        || (raw.starts_with('\'') && raw.ends_with('\'') && raw.len() >= 2)
    {
        let mut cursor = Cursor::new(raw, 0, 0);
        let v = cursor.parse_quoted()?;
        return Ok(match v {
            Value::Str(s) => s,
            other => other.to_display_string(),
        });
    }
    Ok(raw.to_string())
}

/// Parse a single-line value: flow collection, quoted scalar, or plain scalar
/// with core-schema resolution.
fn parse_flow_scalar(s: &str, line_no: usize, col: usize) -> Result<Value, ParseError> {
    let mut cursor = Cursor::new(s, line_no, col);
    cursor.skip_ws();
    let v = cursor
        .parse_flow_value(FlowCtx::Top)
        .map_err(|m| ParseError::at(m, Position::new(line_no, col + cursor.i + 1)))?;
    cursor.skip_ws();
    if !cursor.at_end() {
        return Err(ParseError::at(
            format!("trailing characters after value: {:?}", &s[cursor.i..]),
            Position::new(line_no, col + cursor.i + 1),
        ));
    }
    Ok(v)
}

/// Context a plain flow scalar is being read in — determines terminators.
#[derive(Clone, Copy, PartialEq)]
enum FlowCtx {
    /// Top level of a line: scalar runs to end of line.
    Top,
    /// Inside `[...]`: terminated by `,` or `]`.
    Seq,
    /// Inside `{...}` reading a key: terminated by `:`; or a value:
    /// terminated by `,` or `}`.
    MapKey,
    MapValue,
}

struct Cursor<'a> {
    s: &'a str,
    bytes: &'a [u8],
    i: usize,
    #[allow(dead_code)]
    line: usize,
    #[allow(dead_code)]
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str, line: usize, col: usize) -> Self {
        Self {
            s,
            bytes: s.as_bytes(),
            i: 0,
            line,
            col,
        }
    }

    fn at_end(&self) -> bool {
        self.i >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b == b' ' || b == b'\t') {
            self.i += 1;
        }
    }

    fn parse_flow_value(&mut self, ctx: FlowCtx) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            None => Ok(Value::Null),
            Some(b'[') => self.parse_flow_seq(),
            Some(b'{') => self.parse_flow_map(),
            Some(b'"') | Some(b'\'') => self.parse_quoted(),
            _ => self.parse_plain(ctx),
        }
    }

    fn parse_flow_seq(&mut self) -> Result<Value, String> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.i += 1;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err("unterminated flow sequence".to_string()),
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                Some(b',') => {
                    self.i += 1;
                    continue;
                }
                _ => {
                    let v = self.parse_flow_value(FlowCtx::Seq)?;
                    items.push(v);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.i += 1;
                        }
                        Some(b']') => {}
                        None => return Err("unterminated flow sequence".to_string()),
                        Some(c) => {
                            return Err(format!(
                                "expected ',' or ']' in flow sequence, found {:?}",
                                c as char
                            ))
                        }
                    }
                }
            }
        }
    }

    fn parse_flow_map(&mut self) -> Result<Value, String> {
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.i += 1;
        let mut map = Map::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err("unterminated flow mapping".to_string()),
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Map(map));
                }
                Some(b',') => {
                    self.i += 1;
                    continue;
                }
                _ => {
                    let key = self.parse_flow_value(FlowCtx::MapKey)?;
                    let key = match key {
                        Value::Str(s) => s,
                        other => other.to_display_string(),
                    };
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(format!("expected ':' after flow mapping key {key:?}"));
                    }
                    self.i += 1;
                    let value = self.parse_flow_value(FlowCtx::MapValue)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.i += 1;
                        }
                        Some(b'}') => {}
                        None => return Err("unterminated flow mapping".to_string()),
                        Some(c) => {
                            return Err(format!(
                                "expected ',' or '}}' in flow mapping, found {:?}",
                                c as char
                            ))
                        }
                    }
                }
            }
        }
    }

    fn parse_quoted(&mut self) -> Result<Value, String> {
        let quote = self.peek().unwrap();
        self.i += 1;
        let mut out = String::new();
        if quote == b'\'' {
            // Single-quoted: '' is an escaped quote, no other escapes.
            loop {
                match self.peek() {
                    None => return Err("unterminated single-quoted string".to_string()),
                    Some(b'\'') => {
                        self.i += 1;
                        if self.peek() == Some(b'\'') {
                            out.push('\'');
                            self.i += 1;
                        } else {
                            return Ok(Value::Str(out));
                        }
                    }
                    Some(_) => {
                        let c = self.next_char();
                        out.push(c);
                    }
                }
            }
        } else {
            // Double-quoted: C-style escapes.
            loop {
                match self.peek() {
                    None => return Err("unterminated double-quoted string".to_string()),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(Value::Str(out));
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        let esc = self.peek().ok_or("dangling escape at end of string")?;
                        self.i += 1;
                        match esc {
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'0' => out.push('\0'),
                            b'\\' => out.push('\\'),
                            b'"' => out.push('"'),
                            b'\'' => out.push('\''),
                            b'u' => {
                                let hex = self
                                    .s
                                    .get(self.i..self.i + 4)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                                );
                                self.i += 4;
                            }
                            other => {
                                return Err(format!("unknown escape \\{}", other as char));
                            }
                        }
                    }
                    Some(_) => {
                        let c = self.next_char();
                        out.push(c);
                    }
                }
            }
        }
    }

    fn next_char(&mut self) -> char {
        let c = self.s[self.i..].chars().next().unwrap();
        self.i += c.len_utf8();
        c
    }

    fn parse_plain(&mut self, ctx: FlowCtx) -> Result<Value, String> {
        let start = self.i;
        while let Some(b) = self.peek() {
            let stop = match ctx {
                FlowCtx::Top => false,
                FlowCtx::Seq => b == b',' || b == b']',
                FlowCtx::MapValue => b == b',' || b == b'}',
                FlowCtx::MapKey => b == b':' || b == b',' || b == b'}',
            };
            if stop {
                break;
            }
            self.i += 1;
        }
        let raw = self.s[start..self.i].trim();
        Ok(resolve_scalar(raw))
    }
}

/// YAML 1.2 core-schema scalar resolution for plain scalars.
pub fn resolve_scalar(raw: &str) -> Value {
    match raw {
        "" | "~" | "null" | "Null" | "NULL" => return Value::Null,
        "true" | "True" | "TRUE" => return Value::Bool(true),
        "false" | "False" | "FALSE" => return Value::Bool(false),
        ".inf" | ".Inf" | "+.inf" => return Value::Float(f64::INFINITY),
        "-.inf" | "-.Inf" => return Value::Float(f64::NEG_INFINITY),
        ".nan" | ".NaN" | ".NAN" => return Value::Float(f64::NAN),
        _ => {}
    }
    if let Some(i) = parse_int(raw) {
        return Value::Int(i);
    }
    if looks_like_float(raw) {
        if let Ok(f) = raw.parse::<f64>() {
            return Value::Float(f);
        }
    }
    Value::Str(raw.to_string())
}

fn parse_int(raw: &str) -> Option<i64> {
    let (sign, body) = match raw.strip_prefix('-') {
        Some(b) => (-1i64, b),
        None => (1i64, raw.strip_prefix('+').unwrap_or(raw)),
    };
    if body.is_empty() {
        return None;
    }
    if let Some(hex) = body.strip_prefix("0x") {
        return i64::from_str_radix(hex, 16).ok().map(|v| sign * v);
    }
    if let Some(oct) = body.strip_prefix("0o") {
        return i64::from_str_radix(oct, 8).ok().map(|v| sign * v);
    }
    if body.bytes().all(|b| b.is_ascii_digit()) {
        return body.parse::<i64>().ok().map(|v| sign * v);
    }
    None
}

/// Conservative float shape check so strings like `1.2.3` or `e5` stay strings.
fn looks_like_float(raw: &str) -> bool {
    let body = raw.strip_prefix(['-', '+']).unwrap_or(raw);
    if body.is_empty() {
        return false;
    }
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => seen_digit = true,
            b'.' if !seen_dot && !seen_exp => seen_dot = true,
            b'e' | b'E' if seen_digit && !seen_exp => {
                seen_exp = true;
                if i + 1 < bytes.len() && (bytes[i + 1] == b'+' || bytes[i + 1] == b'-') {
                    i += 1;
                }
            }
            _ => return false,
        }
        i += 1;
    }
    seen_digit && (seen_dot || seen_exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vmap, vseq};

    #[test]
    fn empty_document_is_null() {
        assert_eq!(parse_str("").unwrap(), Value::Null);
        assert_eq!(parse_str("\n\n# just a comment\n").unwrap(), Value::Null);
    }

    #[test]
    fn scalar_resolution() {
        assert_eq!(resolve_scalar("null"), Value::Null);
        assert_eq!(resolve_scalar("~"), Value::Null);
        assert_eq!(resolve_scalar("true"), Value::Bool(true));
        assert_eq!(resolve_scalar("False"), Value::Bool(false));
        assert_eq!(resolve_scalar("42"), Value::Int(42));
        assert_eq!(resolve_scalar("-17"), Value::Int(-17));
        assert_eq!(resolve_scalar("0x1F"), Value::Int(31));
        assert_eq!(resolve_scalar("0o17"), Value::Int(15));
        assert_eq!(resolve_scalar("3.5"), Value::Float(3.5));
        assert_eq!(resolve_scalar("1e3"), Value::Float(1000.0));
        assert_eq!(resolve_scalar("1.2.3"), Value::str("1.2.3"));
        assert_eq!(resolve_scalar("v1.2"), Value::str("v1.2"));
        assert_eq!(resolve_scalar("hello"), Value::str("hello"));
    }

    #[test]
    fn simple_mapping() {
        let v = parse_str("a: 1\nb: two\nc: true\n").unwrap();
        assert_eq!(v, vmap! {"a" => 1i64, "b" => "two", "c" => true});
    }

    #[test]
    fn nested_mapping() {
        let v = parse_str("outer:\n  inner:\n    x: 1\n  y: 2\n").unwrap();
        assert_eq!(v["outer"]["inner"]["x"].as_int(), Some(1));
        assert_eq!(v["outer"]["y"].as_int(), Some(2));
    }

    #[test]
    fn block_sequence() {
        let v = parse_str("- 1\n- two\n- true\n").unwrap();
        assert_eq!(v, vseq![1i64, "two", true]);
    }

    #[test]
    fn sequence_under_key_same_indent() {
        let v = parse_str("items:\n- a\n- b\n").unwrap();
        assert_eq!(v["items"], vseq!["a", "b"]);
    }

    #[test]
    fn sequence_under_key_indented() {
        let v = parse_str("items:\n  - a\n  - b\n").unwrap();
        assert_eq!(v["items"], vseq!["a", "b"]);
    }

    #[test]
    fn sequence_of_mappings_inline() {
        let v = parse_str("steps:\n  - name: one\n    cmd: echo\n  - name: two\n").unwrap();
        let steps = v["steps"].as_seq().unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0]["name"].as_str(), Some("one"));
        assert_eq!(steps[0]["cmd"].as_str(), Some("echo"));
        assert_eq!(steps[1]["name"].as_str(), Some("two"));
    }

    #[test]
    fn sequence_item_nested_block() {
        let v = parse_str("-\n  a: 1\n-\n  a: 2\n").unwrap();
        let items = v.as_seq().unwrap();
        assert_eq!(items[0]["a"].as_int(), Some(1));
        assert_eq!(items[1]["a"].as_int(), Some(2));
    }

    #[test]
    fn flow_collections() {
        let v = parse_str("xs: [1, 2, 3]\nm: {a: 1, b: [x, 'y']}\n").unwrap();
        assert_eq!(v["xs"], vseq![1i64, 2i64, 3i64]);
        assert_eq!(v["m"]["a"].as_int(), Some(1));
        assert_eq!(v["m"]["b"], vseq!["x", "y"]);
    }

    #[test]
    fn json_compatibility() {
        let v = parse_str(r#"{"a": [1, 2.5, null, true], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v["a"][1].as_float(), Some(2.5));
        assert!(v["a"][2].is_null());
        assert_eq!(v["b"]["c"].as_str(), Some("d"));
    }

    #[test]
    fn quoted_scalars() {
        let v = parse_str("a: \"hello\\nworld\"\nb: 'it''s'\nc: \"\\u0041\"\n").unwrap();
        assert_eq!(v["a"].as_str(), Some("hello\nworld"));
        assert_eq!(v["b"].as_str(), Some("it's"));
        assert_eq!(v["c"].as_str(), Some("A"));
    }

    #[test]
    fn comments_stripped() {
        let v = parse_str("a: 1  # trailing\n# full line\nb: 'x # not comment'\n").unwrap();
        assert_eq!(v["a"].as_int(), Some(1));
        assert_eq!(v["b"].as_str(), Some("x # not comment"));
    }

    #[test]
    fn literal_block_scalar() {
        let v = parse_str("script: |\n  line one\n  line two\nafter: 1\n").unwrap();
        assert_eq!(v["script"].as_str(), Some("line one\nline two\n"));
        assert_eq!(v["after"].as_int(), Some(1));
    }

    #[test]
    fn literal_block_scalar_strip() {
        let v = parse_str("script: |-\n  x\n  y\n").unwrap();
        assert_eq!(v["script"].as_str(), Some("x\ny"));
    }

    #[test]
    fn literal_block_scalar_keep() {
        let v = parse_str("script: |+\n  x\n\n\nafter: 1\n").unwrap();
        assert_eq!(v["script"].as_str(), Some("x\n\n\n"));
        assert_eq!(v["after"].as_int(), Some(1));
    }

    #[test]
    fn literal_block_preserves_inner_indent() {
        let v = parse_str("code: |\n  def f():\n      return 1\n").unwrap();
        assert_eq!(v["code"].as_str(), Some("def f():\n    return 1\n"));
    }

    #[test]
    fn folded_block_scalar() {
        let v = parse_str("text: >\n  one\n  two\n\n  three\n").unwrap();
        assert_eq!(v["text"].as_str(), Some("one two\nthree\n"));
    }

    #[test]
    fn block_scalar_with_blank_interior_lines() {
        let v = parse_str("code: |\n  a\n\n  b\n").unwrap();
        assert_eq!(v["code"].as_str(), Some("a\n\nb\n"));
    }

    #[test]
    fn document_marker() {
        let v = parse_str("---\na: 1\n").unwrap();
        assert_eq!(v["a"].as_int(), Some(1));
    }

    #[test]
    fn multi_document_rejected() {
        assert!(parse_str("---\na: 1\n---\nb: 2\n").is_err());
    }

    #[test]
    fn tabs_in_indent_rejected() {
        let err = parse_str("a:\n\tb: 1\n").unwrap_err();
        assert!(err.message.contains("tab"));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = parse_str("a: 1\na: 2\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn urls_are_strings_not_maps() {
        let v = parse_str("url: https://example.com/x\n").unwrap();
        assert_eq!(v["url"].as_str(), Some("https://example.com/x"));
    }

    #[test]
    fn colon_in_value_ok() {
        let v = parse_str("msg: time: is now\n").unwrap();
        // First colon wins as separator; the rest is part of the value.
        assert_eq!(v["msg"].as_str(), Some("time: is now"));
    }

    #[test]
    fn cwl_shaped_document() {
        let text = r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: "Hello World"
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: hello.txt
"#;
        let v = parse_str(text).unwrap();
        assert_eq!(v["cwlVersion"].as_str(), Some("v1.2"));
        assert_eq!(v["class"].as_str(), Some("CommandLineTool"));
        assert_eq!(v["inputs"]["message"]["type"].as_str(), Some("string"));
        assert_eq!(
            v["inputs"]["message"]["inputBinding"]["position"].as_int(),
            Some(1)
        );
        assert_eq!(v["stdout"].as_str(), Some("hello.txt"));
    }

    #[test]
    fn requirements_list_of_classes() {
        let text = "requirements:\n  - class: StepInputExpressionRequirement\n  - class: ScatterFeatureRequirement\n";
        let v = parse_str(text).unwrap();
        let reqs = v["requirements"].as_seq().unwrap();
        assert_eq!(
            reqs[0]["class"].as_str(),
            Some("StepInputExpressionRequirement")
        );
        assert_eq!(reqs[1]["class"].as_str(), Some("ScatterFeatureRequirement"));
    }

    #[test]
    fn expression_lib_block() {
        let text = "requirements:\n  - class: InlinePythonRequirement\n    expressionLib: |\n      def f(x):\n          return x\n";
        let v = parse_str(text).unwrap();
        let lib = v["requirements"][0]["expressionLib"].as_str().unwrap();
        assert_eq!(lib, "def f(x):\n    return x\n");
    }

    #[test]
    fn trailing_garbage_after_scalar_rejected() {
        assert!(parse_str("a: [1, 2] junk\n").is_err());
    }

    #[test]
    fn unterminated_flow_rejected() {
        assert!(parse_str("a: [1, 2\n").is_err());
        assert!(parse_str("a: {x: 1\n").is_err());
        assert!(parse_str("a: \"oops\n").is_err());
    }

    #[test]
    fn deep_nesting() {
        let text = "a:\n  b:\n    c:\n      d:\n        - e: 1\n";
        let v = parse_str(text).unwrap();
        assert_eq!(v["a"]["b"]["c"]["d"][0]["e"].as_int(), Some(1));
    }

    #[test]
    fn dollar_expressions_survive() {
        let v = parse_str("arg: $(inputs.message)\nexpr: ${ return 1; }\n").unwrap();
        assert_eq!(v["arg"].as_str(), Some("$(inputs.message)"));
        assert_eq!(v["expr"].as_str(), Some("${ return 1; }"));
    }

    #[test]
    fn empty_value_is_null() {
        let v = parse_str("a:\nb: 1\n").unwrap();
        assert!(v["a"].is_null());
        assert_eq!(v["b"].as_int(), Some(1));
    }

    #[test]
    fn inline_seq_item_scalar_types() {
        let v = parse_str("- null\n- 3\n- 2.5\n").unwrap();
        assert_eq!(
            v,
            Value::Seq(vec![Value::Null, Value::Int(3), Value::Float(2.5)])
        );
    }

    #[test]
    fn spanned_records_mapping_keys() {
        let text = "a: 1\nnested:\n  x: 2\n  y: 3\n";
        let (v, spans) = parse_str_spanned(text).unwrap();
        assert_eq!(v["nested"]["y"].as_int(), Some(3));
        assert_eq!(spans.get("a"), Some(Position::new(1, 1)));
        assert_eq!(spans.get("nested"), Some(Position::new(2, 1)));
        assert_eq!(spans.get("nested.x"), Some(Position::new(3, 3)));
        assert_eq!(spans.get("nested.y"), Some(Position::new(4, 3)));
    }

    #[test]
    fn spanned_records_sequence_items() {
        let text = "steps:\n  - name: one\n    cmd: echo\n  - name: two\n";
        let (_, spans) = parse_str_spanned(text).unwrap();
        assert_eq!(spans.get("steps"), Some(Position::new(1, 1)));
        assert_eq!(spans.get("steps[0]"), Some(Position::new(2, 3)));
        assert_eq!(spans.get("steps[0].name"), Some(Position::new(2, 5)));
        assert_eq!(spans.get("steps[0].cmd"), Some(Position::new(3, 5)));
        assert_eq!(spans.get("steps[1]"), Some(Position::new(4, 3)));
        assert_eq!(spans.get("steps[1].name"), Some(Position::new(4, 5)));
    }

    #[test]
    fn spanned_resolve_flow_children_to_ancestor() {
        let text = "m: {a: 1, b: [x, y]}\n";
        let (v, spans) = parse_str_spanned(text).unwrap();
        assert_eq!(v["m"]["a"].as_int(), Some(1));
        // Flow children are not individually recorded but resolve to the key.
        assert_eq!(spans.get("m.b[1]"), None);
        assert_eq!(spans.resolve("m.b[1]"), Some(Position::new(1, 1)));
    }

    #[test]
    fn spanned_skips_comment_lines() {
        let text = "# header\n# more\na: 1\nb:\n  # interior\n  c: 2\n";
        let (_, spans) = parse_str_spanned(text).unwrap();
        assert_eq!(spans.get("a"), Some(Position::new(3, 1)));
        assert_eq!(spans.get("b.c"), Some(Position::new(6, 3)));
    }

    #[test]
    fn plain_parse_records_no_spans() {
        // `parse_str` must not pay for span bookkeeping.
        let v = parse_str("a:\n  - x\n").unwrap();
        assert_eq!(v["a"][0].as_str(), Some("x"));
    }
}
