//! `yamlite` — a from-scratch YAML-subset parser and emitter, plus the shared
//! dynamic [`Value`] model used across the whole workspace.
//!
//! CWL documents (CommandLineTools, Workflows, input objects, TaPS-style Parsl
//! configurations) are YAML. Rather than depending on an external YAML crate,
//! this crate implements the subset of YAML 1.2 that CWL documents actually
//! use:
//!
//! * block mappings and block sequences with indentation-based structure,
//! * flow mappings/sequences (`{a: 1, b: [2, 3]}`), which also makes the
//!   parser a strict superset of JSON for the values CWL needs,
//! * plain, single-quoted, and double-quoted scalars with YAML 1.2 core-schema
//!   scalar resolution (`null`, booleans, integers, floats, strings),
//! * literal (`|`, `|-`, `|+`) and folded (`>`, `>-`) block scalars — CWL uses
//!   these extensively to embed expression code,
//! * comments and document-start markers (`---`).
//!
//! Deliberately *not* supported (CWL documents do not need them): anchors and
//! aliases, complex (non-string) mapping keys, tags, and multi-document
//! streams beyond a single leading `---`.
//!
//! # Quick example
//!
//! ```
//! let doc = yamlite::parse_str("
//! cwlVersion: v1.2
//! class: CommandLineTool
//! inputs:
//!   message:
//!     type: string
//!     default: Hello
//! ").unwrap();
//! assert_eq!(doc["class"].as_str(), Some("CommandLineTool"));
//! assert_eq!(doc["inputs"]["message"]["default"].as_str(), Some("Hello"));
//! ```

pub mod emit;
pub mod error;
pub mod parse;
pub mod path;
pub mod span;
pub mod value;

pub use emit::{to_string, to_string_flow};
pub use error::{ParseError, Position};
pub use parse::{parse_str, parse_str_spanned};
pub use span::SpanIndex;
pub use value::{Map, Value};

/// Parse a YAML document from a file path.
pub fn parse_file(path: impl AsRef<std::path::Path>) -> Result<Value, ParseError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| ParseError {
        message: format!("cannot read {}: {e}", path.display()),
        position: Position::default(),
    })?;
    parse_str(&text)
}

/// Parse a YAML document from a file path, keeping the span side-table so
/// diagnostics can point back into the source (the `parse_file` analogue
/// of [`parse_str_spanned`]).
pub fn parse_file_spanned(
    path: impl AsRef<std::path::Path>,
) -> Result<(Value, SpanIndex), ParseError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| ParseError {
        message: format!("cannot read {}: {e}", path.display()),
        position: Position::default(),
    })?;
    parse_str_spanned(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_file_missing() {
        let err = parse_file("/definitely/not/here.yml").unwrap_err();
        assert!(err.message.contains("cannot read"));
    }

    #[test]
    fn roundtrip_simple_doc() {
        let doc = parse_str("a: 1\nb: [x, y]\n").unwrap();
        let emitted = to_string(&doc);
        let again = parse_str(&emitted).unwrap();
        assert_eq!(doc, again);
    }
}
