//! Parse-error reporting with line/column positions.

use std::fmt;

/// A 1-based line/column position within a YAML document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Position {
    /// 1-based line number (0 when unknown).
    pub line: usize,
    /// 1-based column number (0 when unknown).
    pub col: usize,
}

impl Position {
    /// Build a position from 1-based line and column.
    pub fn new(line: usize, col: usize) -> Self {
        Self { line, col }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<unknown>")
        } else {
            write!(f, "line {}, column {}", self.line, self.col)
        }
    }
}

/// An error produced while parsing a YAML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the document the problem was detected.
    pub position: Position,
}

impl ParseError {
    /// Build an error at a known position.
    pub fn at(message: impl Into<String>, position: Position) -> Self {
        Self {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "YAML parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_known_position() {
        let e = ParseError::at("bad token", Position::new(3, 7));
        assert_eq!(
            e.to_string(),
            "YAML parse error at line 3, column 7: bad token"
        );
    }

    #[test]
    fn display_unknown_position() {
        let e = ParseError::at("oops", Position::default());
        assert!(e.to_string().contains("<unknown>"));
    }
}
