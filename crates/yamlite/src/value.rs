//! The dynamic [`Value`] model shared by YAML documents, CWL inputs/outputs,
//! expression engines, and Parsl task payloads.

use std::fmt;

/// An insertion-ordered string-keyed map.
///
/// CWL semantics care about document order (e.g. the order of `inputs`
/// determines tie-breaking for command-line bindings), so we preserve it.
/// Backed by a `Vec<(String, Value)>`: CWL maps are small (tens of entries),
/// where linear scans beat hashing and keep ordering for free.
#[derive(Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty map with room for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            entries: Vec::with_capacity(n),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Insert or replace `key`, returning the previous value if any.
    /// New keys are appended, preserving insertion order.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        let key = key.into();
        let value = value.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Remove `key`, returning its value if present. Preserves the order of
    /// the remaining entries.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate mutably over `(key, value)` pairs in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterate over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl fmt::Debug for Map {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a str, &'a Value);
    type IntoIter = Box<dyn Iterator<Item = (&'a str, &'a Value)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// A dynamically typed YAML/CWL value.
#[derive(Clone, Default, PartialEq)]
pub enum Value {
    /// YAML `null` / `~` / empty node.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Insertion-ordered mapping.
    Map(Map),
}

impl Value {
    /// Shorthand for building a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// One-word name of this value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "mapping",
        }
    }

    /// True when this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// View as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// View as `i64`, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// View as `f64`, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// View as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as a sequence slice, if it is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// View as a mapping, if it is one.
    pub fn as_map(&self) -> Option<&Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable view as a mapping, if it is one.
    pub fn as_map_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable view as a sequence, if it is one.
    pub fn as_seq_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Map lookup that tolerates non-map values (returns `None`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Sequence index that tolerates non-seq values (returns `None`).
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_seq().and_then(|s| s.get(idx))
    }

    /// Coerce to a display string following CWL/JS stringification rules:
    /// `null` → empty, booleans lowercase, floats without trailing `.0` when
    /// integral, sequences space-joined (useful for command lines).
    pub fn to_display_string(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => s.clone(),
            Value::Seq(items) => items
                .iter()
                .map(Value::to_display_string)
                .collect::<Vec<_>>()
                .join(" "),
            Value::Map(_) => crate::emit::to_string_flow(self),
        }
    }

    /// Truthiness following JavaScript/Python shared conventions: `null`,
    /// `false`, `0`, `0.0`, `""`, empty seq/map are falsy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Seq(s) => !s.is_empty(),
            Value::Map(m) => !m.is_empty(),
        }
    }

    /// Deep-merge `other` into `self`: maps merge recursively, everything else
    /// is replaced. Used for layering configuration defaults.
    pub fn merge_from(&mut self, other: &Value) {
        match (self, other) {
            (Value::Map(dst), Value::Map(src)) => {
                for (k, v) in src.iter() {
                    match dst.get_mut(k) {
                        Some(existing) => existing.merge_from(v),
                        None => {
                            dst.insert(k.to_string(), v.clone());
                        }
                    }
                }
            }
            (dst, src) => *dst = src.clone(),
        }
    }
}

/// Format a float the way YAML/JSON emitters conventionally do: integral
/// values keep a trailing `.0` marker so they re-parse as floats.
pub(crate) fn format_float(f: f64) -> String {
    if f.is_nan() {
        ".nan".to_string()
    } else if f.is_infinite() {
        if f > 0.0 {
            ".inf".to_string()
        } else {
            "-.inf".to_string()
        }
    } else if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "Null"),
            Value::Bool(b) => write!(f, "Bool({b})"),
            Value::Int(i) => write!(f, "Int({i})"),
            Value::Float(x) => write!(f, "Float({x})"),
            Value::Str(s) => write!(f, "Str({s:?})"),
            Value::Seq(s) => f.debug_list().entries(s).finish(),
            Value::Map(m) => m.fmt(f),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_display_string())
    }
}

/// Indexing by map key. Panics are avoided: missing keys yield `Value::Null`
/// via a static sentinel, mirroring the ergonomics of dynamic languages.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// Indexing by sequence position; out-of-range yields `Value::Null`.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Seq(v)
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Map(m)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

/// Convenience macro for building [`Value`] maps inline in tests and examples.
#[macro_export]
macro_rules! vmap {
    ($($key:expr => $val:expr),* $(,)?) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key, $val); )*
        $crate::Value::Map(m)
    }};
}

/// Convenience macro for building [`Value`] sequences.
#[macro_export]
macro_rules! vseq {
    ($($val:expr),* $(,)?) => {
        $crate::Value::Seq(vec![ $( $crate::Value::from($val) ),* ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z", 1i64);
        m.insert("a", 2i64);
        m.insert("m", 3i64);
        let keys: Vec<_> = m.keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a", 1i64);
        m.insert("b", 2i64);
        let old = m.insert("a", 10i64);
        assert_eq!(old, Some(Value::Int(1)));
        assert_eq!(m.keys().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(m.get("a"), Some(&Value::Int(10)));
    }

    #[test]
    fn map_remove_preserves_order() {
        let mut m = Map::new();
        m.insert("a", 1i64);
        m.insert("b", 2i64);
        m.insert("c", 3i64);
        assert_eq!(m.remove("b"), Some(Value::Int(2)));
        assert_eq!(m.keys().collect::<Vec<_>>(), vec!["a", "c"]);
        assert_eq!(m.remove("nope"), None);
    }

    #[test]
    fn index_missing_yields_null() {
        let v = vmap! {"a" => 1i64};
        assert!(v["missing"].is_null());
        assert!(v["a"]["deeper"].is_null());
        assert!(v[42].is_null());
    }

    #[test]
    fn display_string_rules() {
        assert_eq!(Value::Null.to_display_string(), "");
        assert_eq!(Value::Bool(true).to_display_string(), "true");
        assert_eq!(Value::Int(-3).to_display_string(), "-3");
        assert_eq!(Value::Float(2.0).to_display_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_display_string(), "2.5");
        assert_eq!(vseq![1i64, "x"].to_display_string(), "1 x");
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(!Value::Seq(vec![]).truthy());
        assert!(Value::Int(1).truthy());
        assert!(Value::str("x").truthy());
        assert!(vmap! {"k" => 1i64}.truthy());
        assert!(!vmap! {}.truthy());
    }

    #[test]
    fn merge_recursive() {
        let mut base = vmap! {
            "executor" => vmap!{"kind" => "htex", "workers" => 4i64},
            "retries" => 0i64,
        };
        let overlay = vmap! {
            "executor" => vmap!{"workers" => 8i64},
            "label" => "prod",
        };
        base.merge_from(&overlay);
        assert_eq!(base["executor"]["kind"].as_str(), Some("htex"));
        assert_eq!(base["executor"]["workers"].as_int(), Some(8));
        assert_eq!(base["label"].as_str(), Some("prod"));
        assert_eq!(base["retries"].as_int(), Some(0));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_float(f64::NAN), ".nan");
        assert_eq!(format_float(f64::INFINITY), ".inf");
        assert_eq!(format_float(f64::NEG_INFINITY), "-.inf");
        assert_eq!(format_float(1.0), "1.0");
        assert_eq!(format_float(0.25), "0.25");
    }

    #[test]
    fn as_float_widens_int() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::str("3").as_float(), None);
    }
}
