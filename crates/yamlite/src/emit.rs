//! Emit [`Value`]s back to YAML text (block style) or to a compact flow
//! (JSON-like) representation.

use crate::parse::resolve_scalar;
use crate::value::{format_float, Value};

/// Emit a value as a block-style YAML document (trailing newline included).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    emit_block(value, 0, &mut out);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Emit a value in compact flow style (`{a: 1, b: [2, 3]}`), suitable for
/// single-line contexts such as log messages.
pub fn to_string_flow(value: &Value) -> String {
    let mut out = String::new();
    emit_flow(value, &mut out);
    out
}

fn emit_block(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Map(m) if !m.is_empty() => {
            for (k, v) in m.iter() {
                push_indent(indent, out);
                out.push_str(&quote_key(k));
                out.push(':');
                emit_block_value(v, indent, out);
            }
        }
        Value::Seq(items) if !items.is_empty() => {
            for item in items {
                push_indent(indent, out);
                out.push('-');
                emit_block_value(item, indent, out);
            }
        }
        other => {
            push_indent(indent, out);
            emit_scalar_line(other, out);
            out.push('\n');
        }
    }
}

/// Emit the value part after `key:` or `-`: scalars inline, collections on
/// following lines, multi-line strings as literal block scalars.
fn emit_block_value(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Map(m) if !m.is_empty() => {
            out.push('\n');
            emit_block(value, indent + 2, out);
            let _ = m;
        }
        Value::Seq(items) if !items.is_empty() => {
            out.push('\n');
            emit_block(value, indent + 2, out);
            let _ = items;
        }
        Value::Str(s) if s.contains('\n') => {
            // Literal block scalar. Chomping: strip when no trailing newline,
            // clip when exactly one.
            let body = s.strip_suffix('\n');
            out.push_str(if body.is_some() { " |\n" } else { " |-\n" });
            let body = body.unwrap_or(s);
            for line in body.split('\n') {
                if line.is_empty() {
                    out.push('\n');
                } else {
                    push_indent(indent + 2, out);
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        other => {
            out.push(' ');
            emit_scalar_line(other, out);
            out.push('\n');
        }
    }
}

fn emit_scalar_line(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => out.push_str(&format_float(*f)),
        Value::Str(s) => out.push_str(&quote_scalar(s)),
        Value::Seq(s) if s.is_empty() => out.push_str("[]"),
        Value::Map(m) if m.is_empty() => out.push_str("{}"),
        // Non-empty collections are handled by the block emitters.
        other => emit_flow(other, out),
    }
}

fn emit_flow(value: &Value, out: &mut String) {
    match value {
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_flow_scalar(item, out);
            }
            out.push(']');
        }
        Value::Map(m) => {
            out.push('{');
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&quote_key(k));
                out.push_str(": ");
                emit_flow_scalar(v, out);
            }
            out.push('}');
        }
        other => emit_scalar_line(other, out),
    }
}

fn emit_flow_scalar(value: &Value, out: &mut String) {
    match value {
        Value::Seq(_) | Value::Map(_) => emit_flow(value, out),
        Value::Str(s) => out.push_str(&quote_scalar_flow(s)),
        other => emit_scalar_line(other, out),
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push(' ');
    }
}

/// Quote a mapping key if it would not re-parse as itself.
fn quote_key(k: &str) -> String {
    if k.is_empty() || needs_quoting(k) || k.contains(':') {
        double_quote(k)
    } else {
        k.to_string()
    }
}

/// Quote a block-context string scalar when necessary.
fn quote_scalar(s: &str) -> String {
    if needs_quoting(s) {
        double_quote(s)
    } else {
        s.to_string()
    }
}

/// Flow context additionally reserves `, [ ] { } :`.
fn quote_scalar_flow(s: &str) -> String {
    if needs_quoting(s) || s.contains([',', '[', ']', '{', '}', ':']) {
        double_quote(s)
    } else {
        s.to_string()
    }
}

/// A plain string must be quoted when it would resolve to a different type,
/// contains structure-significant characters, or has fragile whitespace.
fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    if s.starts_with(' ') || s.ends_with(' ') {
        return true;
    }
    if !matches!(resolve_scalar(s), Value::Str(_)) {
        return true;
    }
    if s.starts_with([
        '-', '?', '|', '>', '&', '*', '!', '%', '@', '`', '"', '\'', '[', ']', '{', '}', '#',
    ]) && !s.is_empty()
    {
        // `-word` is fine, but `- word` or bare `-` is structural.
        if s == "-" || s.starts_with("- ") || !s.starts_with('-') {
            return true;
        }
    }
    if s.contains(": ")
        || s.ends_with(':')
        || s.contains(" #")
        || s.contains('\n')
        || s.contains('\t')
    {
        return true;
    }
    false
}

fn double_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_str;
    use crate::{vmap, vseq};

    fn roundtrip(v: &Value) -> Value {
        parse_str(&to_string(v)).unwrap()
    }

    #[test]
    fn emit_scalars() {
        assert_eq!(to_string(&Value::Null), "null\n");
        assert_eq!(to_string(&Value::Int(5)), "5\n");
        assert_eq!(to_string(&Value::Float(2.0)), "2.0\n");
        assert_eq!(to_string(&Value::str("hi")), "hi\n");
    }

    #[test]
    fn emit_map_and_seq() {
        let v = vmap! {"a" => 1i64, "xs" => vseq![1i64, 2i64]};
        let text = to_string(&v);
        assert_eq!(text, "a: 1\nxs:\n  - 1\n  - 2\n");
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn strings_needing_quotes_roundtrip() {
        for s in [
            "true",
            "null",
            "42",
            "3.5",
            "- dash",
            "a: b",
            "trailing ",
            " lead",
            "has # comment",
            "",
            "it's",
            "quote\"inside",
            "multi\nline",
            "0x10",
        ] {
            let v = vmap! {"k" => s};
            assert_eq!(roundtrip(&v), v, "failed for {s:?}");
        }
    }

    #[test]
    fn multiline_string_emits_block_scalar() {
        let v = vmap! {"code" => "def f():\n    return 1\n"};
        let text = to_string(&v);
        assert!(text.contains("code: |"), "got: {text}");
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn multiline_string_without_trailing_newline() {
        let v = vmap! {"code" => "a\nb"};
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn empty_collections() {
        let v = vmap! {"a" => Value::Seq(vec![]), "b" => Value::Map(crate::Map::new())};
        assert_eq!(to_string(&v), "a: []\nb: {}\n");
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn nested_structure_roundtrip() {
        let v = vmap! {
            "steps" => Value::Seq(vec![
                vmap!{"run" => "a.cwl", "in" => vmap!{"x" => "$(inputs.x)"}},
                vmap!{"run" => "b.cwl", "scatter" => vseq!["img"]},
            ]),
            "outputs" => vmap!{"out" => vmap!{"type" => "File"}},
        };
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn flow_string() {
        let v = vmap! {"a" => vseq![1i64, "x, y"]};
        assert_eq!(to_string_flow(&v), "{a: [1, \"x, y\"]}");
    }

    #[test]
    fn negative_word_unquoted() {
        // `-word` does not need quotes (it is not a sequence marker).
        let v = vmap! {"k" => "-v"};
        let text = to_string(&v);
        assert_eq!(text, "k: -v\n");
        assert_eq!(roundtrip(&v), v);
    }
}
