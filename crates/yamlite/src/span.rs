//! Source spans for parsed YAML nodes.
//!
//! [`crate::parse_str_spanned`] records, for every block mapping key and
//! block sequence item, the 1-based line/column where it appears in the
//! source text. Spans are kept in a side table keyed by the same dotted-path
//! syntax [`crate::path`] uses (`steps[0].run`, `inputs.message.type`), so a
//! consumer that walks the [`crate::Value`] tree can look up positions
//! without the tree itself carrying location data.
//!
//! Nodes nested inside flow collections (`[...]`/`{...}`) share the position
//! of the line they appear on; [`SpanIndex::resolve`] falls back to the
//! nearest recorded ancestor so every path yields *some* position.

use crate::error::Position;
use std::collections::HashMap;

/// Side table mapping dotted value paths to source positions.
#[derive(Debug, Clone, Default)]
pub struct SpanIndex {
    map: HashMap<String, Position>,
}

impl SpanIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the position of the node at `path`.
    pub fn insert(&mut self, path: String, pos: Position) {
        self.map.insert(path, pos);
    }

    /// Exact-match lookup.
    pub fn get(&self, path: &str) -> Option<Position> {
        self.map.get(path).copied()
    }

    /// Lookup with nearest-ancestor fallback: if `path` itself was not
    /// recorded (e.g. it lives inside a flow collection or a scalar), walk up
    /// through its ancestors (`a.b[2].c` → `a.b[2]` → `a.b` → `a`) and return
    /// the first recorded position.
    pub fn resolve(&self, path: &str) -> Option<Position> {
        let mut cur = path;
        loop {
            if let Some(pos) = self.map.get(cur) {
                return Some(*pos);
            }
            cur = parent_path(cur)?;
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Strip the last path segment: `a.b[2].c` → `a.b[2]` → `a.b` → `a` → None.
fn parent_path(path: &str) -> Option<&str> {
    if path.is_empty() {
        return None;
    }
    let last_dot = path.rfind('.');
    let last_bracket = path.rfind('[');
    match (last_dot, last_bracket) {
        (None, None) => None,
        (Some(d), None) => Some(&path[..d]),
        (None, Some(b)) => Some(&path[..b]),
        (Some(d), Some(b)) => Some(&path[..d.max(b)]),
    }
}

/// Join a mapping key onto a base path.
pub fn child_path(base: &str, key: &str) -> String {
    if base.is_empty() {
        key.to_string()
    } else {
        format!("{base}.{key}")
    }
}

/// Join a sequence index onto a base path.
pub fn item_path(base: &str, index: usize) -> String {
    format!("{base}[{index}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_walks_up() {
        assert_eq!(parent_path("a.b[2].c"), Some("a.b[2]"));
        assert_eq!(parent_path("a.b[2]"), Some("a.b"));
        assert_eq!(parent_path("a.b"), Some("a"));
        assert_eq!(parent_path("a"), None);
        assert_eq!(parent_path(""), None);
    }

    #[test]
    fn resolve_falls_back_to_ancestor() {
        let mut idx = SpanIndex::new();
        idx.insert("steps".to_string(), Position::new(10, 1));
        idx.insert("steps[0]".to_string(), Position::new(11, 3));
        assert_eq!(idx.get("steps[0].run"), None);
        assert_eq!(idx.resolve("steps[0].run"), Some(Position::new(11, 3)));
        assert_eq!(idx.resolve("steps[1].run"), Some(Position::new(10, 1)));
        assert_eq!(idx.resolve("nowhere"), None);
    }

    #[test]
    fn path_joins() {
        assert_eq!(child_path("", "a"), "a");
        assert_eq!(child_path("a", "b"), "a.b");
        assert_eq!(item_path("a.b", 3), "a.b[3]");
    }
}
