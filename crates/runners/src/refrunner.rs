//! The cwltool-like reference runner.

use crate::profile::ExecProfile;
use crate::report::RunReport;
use crate::wfexec::WorkflowExecutor;
use cwlexec::ToolDispatch;
use std::path::Path;
use std::sync::Arc;
use yamlite::Map;

/// A runner reproducing `cwltool`'s architecture: upfront validation, a
/// coordinator that launches ready jobs on threads (`--parallel`), a Python
/// job-runner process per step (modelled start-up + real per-job document
/// reprocessing), and a `node` process per JavaScript expression.
pub struct RefRunner {
    exec: WorkflowExecutor,
}

impl RefRunner {
    /// Runner with `slots` parallel job slots (the paper uses all cores).
    pub fn new(slots: usize, dispatch: Arc<dyn ToolDispatch>) -> Self {
        Self {
            exec: WorkflowExecutor::new(ExecProfile::cwltool_like(slots), dispatch),
        }
    }

    /// Runner with a custom profile (ablations).
    pub fn with_profile(profile: ExecProfile, dispatch: Arc<dyn ToolDispatch>) -> Self {
        Self {
            exec: WorkflowExecutor::new(profile, dispatch),
        }
    }

    /// Attach a per-run observability instance (spans and lineage records
    /// for subsequent runs land there).
    pub fn with_observability(mut self, obs: Arc<obs::Observability>) -> Self {
        self.exec = self.exec.with_observability(obs);
        self
    }

    /// Validate a document the way `cwltool --validate` does.
    pub fn validate(path: impl AsRef<Path>) -> Result<Vec<cwl::Diagnostic>, String> {
        let doc = yamlite::parse_file(path.as_ref()).map_err(|e| e.to_string())?;
        Ok(cwl::validate_document(&doc))
    }

    /// Execute a tool or workflow file.
    pub fn run(
        &self,
        path: impl AsRef<Path>,
        inputs: &Map,
        workdir: impl AsRef<Path>,
    ) -> Result<RunReport, String> {
        // cwltool validates the top-level document before running.
        let diags = Self::validate(path.as_ref())?;
        if !cwl::validate::is_valid(&diags) {
            return Err(format!("validation failed: {}", diags[0]));
        }
        self.exec.run_file(path, inputs, workdir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwlexec::BuiltinDispatch;
    use yamlite::{vmap, Value};

    fn fixtures() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
    }

    fn workdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("refrunner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn as_map(v: Value) -> Map {
        match v {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    #[test]
    fn runs_echo_tool() {
        let dir = workdir("echo");
        let runner = RefRunner::new(2, Arc::new(BuiltinDispatch));
        let report = runner
            .run(
                fixtures().join("echo.cwl"),
                &as_map(vmap! {"message" => "from refrunner"}),
                &dir,
            )
            .unwrap();
        assert_eq!(report.tasks, 1);
        assert_eq!(report.run_dir.parent(), Some(dir.as_path()));
        assert_eq!(
            std::fs::read_to_string(report.run_dir.join("hello.txt")).unwrap(),
            "from refrunner\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn runs_image_pipeline_workflow() {
        let dir = workdir("pipeline");
        imaging::write_rimg(dir.join("input.rimg"), &imaging::gradient(32, 32, 3)).unwrap();
        let runner = RefRunner::new(4, Arc::new(BuiltinDispatch));
        let report = runner
            .run(
                fixtures().join("image_pipeline.cwl"),
                &as_map(vmap! {
                    "input_image" => dir.join("input.rimg").to_string_lossy().into_owned(),
                    "size" => 16i64,
                    "sepia" => true,
                    "radius" => 1i64,
                }),
                &dir,
            )
            .unwrap();
        assert_eq!(report.tasks, 3);
        let final_path = report.outputs.get("final_output").unwrap()["path"]
            .as_str()
            .unwrap()
            .to_string();
        let img = imaging::read_rimg(&final_path).unwrap();
        assert_eq!((img.width(), img.height()), (16, 16));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn runs_scatter_over_images() {
        let dir = workdir("scatter");
        let mut paths = Vec::new();
        for i in 0..4 {
            let p = dir.join(format!("img{i}.rimg"));
            imaging::write_rimg(&p, &imaging::gradient(24, 24, i as u64)).unwrap();
            paths.push(Value::str(p.to_string_lossy().into_owned()));
        }
        let runner = RefRunner::new(4, Arc::new(BuiltinDispatch));
        let report = runner
            .run(
                fixtures().join("scatter_images.cwl"),
                &as_map(vmap! {
                    "input_images" => Value::Seq(paths),
                    "size" => 12i64,
                    "sepia" => true,
                    "radius" => 1i64,
                }),
                &dir,
            )
            .unwrap();
        // 4 images × 3 stages.
        assert_eq!(report.tasks, 12);
        let outs = report
            .outputs
            .get("final_outputs")
            .unwrap()
            .as_seq()
            .unwrap();
        assert_eq!(outs.len(), 4);
        for out in outs {
            let img = imaging::read_rimg(out["path"].as_str().unwrap()).unwrap();
            assert_eq!((img.width(), img.height()), (12, 12));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validation_failure_blocks_run() {
        let dir = workdir("badval");
        let bad = dir.join("bad.cwl");
        std::fs::write(
            &bad,
            "cwlVersion: v1.2\nclass: CommandLineTool\ninputs: {}\noutputs: {}\n",
        )
        .unwrap();
        let runner = RefRunner::new(2, Arc::new(BuiltinDispatch));
        let err = runner.run(&bad, &Map::new(), &dir).unwrap_err();
        assert!(err.contains("validation failed"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_reports_diagnostics() {
        let diags = RefRunner::validate(fixtures().join("image_pipeline.cwl")).unwrap();
        assert!(cwl::validate::is_valid(&diags), "{diags:?}");
    }

    #[test]
    fn failing_step_reports_step_id() {
        let dir = workdir("fail");
        // Missing input image file → resize step fails.
        let runner = RefRunner::new(2, Arc::new(BuiltinDispatch));
        let err = runner
            .run(
                fixtures().join("image_pipeline.cwl"),
                &as_map(vmap! {
                    "input_image" => "/ghost/missing.rimg",
                    "size" => 16i64,
                    "sepia" => false,
                    "radius" => 1i64,
                }),
                &dir,
            )
            .unwrap_err();
        assert!(err.contains("resize_image"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
