//! Execution profiles: the per-architecture cost structure of each runner.

use cwlexec::StagingSettings;
use datastore::StageMode;
use expr::JsCostModel;
use std::path::PathBuf;
use std::time::Duration;

/// The knobs distinguishing runner architectures. All `Duration` costs are
/// paid through [`gridsim::pay`] and therefore scale with
/// [`gridsim::TimeScale`]; boolean knobs select *real work* (file I/O,
/// re-parsing) that the original systems genuinely perform.
#[derive(Clone)]
pub struct ExecProfile {
    /// Runner name for reports.
    pub name: String,
    /// Concurrent job slots (the paper configures "all cores on the
    /// allocated nodes").
    pub slots: usize,
    /// Interpreter/process start-up paid per task (cwltool forks a Python
    /// job runner per step; measured CPython start-up is ~25 ms). Paid on
    /// the worker, so it overlaps across slots.
    pub per_task_overhead: Duration,
    /// Coordinator-side job construction paid per task, **serialized** on
    /// the scheduling thread (cwltool/Toil build each job's object —
    /// deep-copying the job order, provenance records — in the main
    /// process before dispatch).
    pub setup_per_task: Duration,
    /// Additional serialized coordinator cost per KiB of the job's input
    /// object (the deep copies grow with the inputs; this is what makes
    /// expression-heavy workflows with large contexts superlinear).
    pub setup_per_kib: Duration,
    /// Re-parse and re-validate the step's CWL document per task, as
    /// cwltool's per-job pipeline effectively does (real CPU work).
    pub revalidate_per_task: bool,
    /// Cost model for JavaScript expression evaluation (node process
    /// spawn + context marshalling).
    pub js_cost: JsCostModel,
    /// Batch-system submit latency per task (Toil's sbatch round trip).
    pub submit_latency: Duration,
    /// Leader poll interval; completed tasks become visible half an
    /// interval later on average (Toil's polling leader).
    pub poll_interval: Duration,
    /// Write job/result files into this job store per task (Toil's
    /// file-backed job store; real I/O).
    pub job_store: Option<PathBuf>,
    /// Run the `cwl::analyze` static pass before execution and refuse to
    /// start when it reports errors (cwltool's pre-flight `--validate`
    /// role, but with typed dataflow + expression linting).
    pub precheck: bool,
    /// Under `precheck`, also refuse to start on warnings.
    pub precheck_strict: bool,
    /// Data-plane configuration. The baseline profiles stage by byte
    /// copy (what cwltool and Toil actually do); `bare` uses the
    /// zero-copy ladder.
    pub staging: StagingSettings,
}

impl ExecProfile {
    /// A zero-overhead profile (unit tests, upper-bound measurements).
    pub fn bare(slots: usize) -> Self {
        Self {
            name: "bare".to_string(),
            slots,
            per_task_overhead: Duration::ZERO,
            setup_per_task: Duration::ZERO,
            setup_per_kib: Duration::ZERO,
            revalidate_per_task: false,
            js_cost: JsCostModel::free(),
            submit_latency: Duration::ZERO,
            poll_interval: Duration::ZERO,
            job_store: None,
            precheck: false,
            precheck_strict: false,
            staging: StagingSettings::default(),
        }
    }

    /// `cwltool --parallel`: thread-per-ready-job scheduling, per-job Python
    /// process start-up, per-job document re-processing, node-per-expression
    /// JS evaluation.
    pub fn cwltool_like(slots: usize) -> Self {
        Self {
            name: "cwltool".to_string(),
            slots,
            per_task_overhead: Duration::from_millis(25),
            setup_per_task: Duration::from_millis(2),
            setup_per_kib: Duration::from_millis(1),
            revalidate_per_task: true,
            js_cost: JsCostModel::cwltool_like(),
            submit_latency: Duration::ZERO,
            poll_interval: Duration::ZERO,
            job_store: None,
            precheck: true,
            precheck_strict: false,
            staging: StagingSettings {
                mode: StageMode::Copy,
                ..StagingSettings::default()
            },
        }
    }

    /// `toil-cwl-runner` with the slurm batch system: job-store round trips,
    /// sbatch submit latency, polling leader, node-per-expression JS.
    pub fn toil_like(slots: usize, job_store: PathBuf) -> Self {
        Self {
            name: "toil".to_string(),
            slots,
            per_task_overhead: Duration::from_millis(30),
            setup_per_task: Duration::from_millis(4),
            setup_per_kib: Duration::from_micros(1500),
            revalidate_per_task: false,
            js_cost: JsCostModel::toil_like(),
            submit_latency: Duration::from_millis(20),
            poll_interval: Duration::from_millis(40),
            job_store: Some(job_store),
            precheck: true,
            precheck_strict: false,
            staging: StagingSettings {
                mode: StageMode::Copy,
                ..StagingSettings::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_architecturally() {
        let bare = ExecProfile::bare(4);
        let cwl = ExecProfile::cwltool_like(4);
        let toil = ExecProfile::toil_like(4, "/tmp/js".into());
        assert!(bare.per_task_overhead.is_zero());
        assert!(cwl.revalidate_per_task);
        assert!(!toil.revalidate_per_task);
        assert!(toil.job_store.is_some());
        assert!(cwl.job_store.is_none());
        assert!(toil.submit_latency > Duration::ZERO);
        assert!(cwl.submit_latency.is_zero());
    }
}
