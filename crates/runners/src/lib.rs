//! `runners` — honest re-implementations of the CWL runners the paper
//! benchmarks against (§VI): the reference runner `cwltool` (with its
//! `--parallel` option) and `toil-cwl-runner` (job-store based, batch
//! submission, polling leader).
//!
//! Both are built from the same generic workflow executor
//! ([`wfexec::WorkflowExecutor`]) parameterized by an [`ExecProfile`] that
//! encodes each system's *architectural* costs — they do the extra work
//! their originals do (per-step document re-parsing and re-validation for
//! cwltool; job-store file round-trips, submit latency, and poll-discovery
//! delay for Toil), rather than applying a fudge factor. Per-process costs
//! that cannot be reproduced in-process (CPython/node start-up) are paid
//! through [`gridsim::pay`] and globally scalable via
//! [`gridsim::TimeScale`].

pub mod pool;
pub mod profile;
pub mod refrunner;
pub mod report;
pub mod toil;
pub mod wfexec;

pub use profile::ExecProfile;
pub use refrunner::RefRunner;
pub use report::RunReport;
pub use toil::ToilRunner;
pub use wfexec::WorkflowExecutor;
