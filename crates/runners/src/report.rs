//! Run reports: what a runner returns besides the output object.

use std::path::PathBuf;
use std::time::Duration;
use yamlite::Map;

/// The result of executing a tool or workflow.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Runner name.
    pub runner: String,
    /// The top-level output object.
    pub outputs: Map,
    /// Number of leaf tool tasks executed (scatter instances count
    /// individually).
    pub tasks: usize,
    /// Wall-clock makespan.
    pub elapsed: Duration,
    /// The run's private staging directory (a unique `run-*` subdirectory
    /// of the caller's workdir; all job directories live under it).
    pub run_dir: PathBuf,
}

impl RunReport {
    /// Tasks per second over the whole run.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return f64::INFINITY;
        }
        self.tasks as f64 / self.elapsed.as_secs_f64()
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} tasks in {:.3}s ({:.1} tasks/s)",
            self.runner,
            self.tasks,
            self.elapsed.as_secs_f64(),
            self.throughput()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_display() {
        let r = RunReport {
            runner: "x".into(),
            outputs: Map::new(),
            tasks: 10,
            elapsed: Duration::from_secs(2),
            run_dir: PathBuf::from("w/run-0"),
        };
        assert_eq!(r.throughput(), 5.0);
        assert!(r.to_string().contains("10 tasks in 2.000s"));
        let inst = RunReport {
            elapsed: Duration::ZERO,
            ..r
        };
        assert!(inst.throughput().is_infinite());
    }
}
