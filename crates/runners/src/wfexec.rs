//! The generic workflow executor both baseline runners are built from.
//!
//! Execution model (mirroring `cwltool --parallel`): repeatedly collect the
//! steps whose upstream steps have completed, expand scatter, and run the
//! resulting leaf jobs on a bounded slot pool. Architectural costs (process
//! start-up, job-store I/O, revalidation, submit/poll latency) come from the
//! [`ExecProfile`].

use crate::pool::run_parallel;
use crate::profile::ExecProfile;
use crate::report::RunReport;
use cwl::input::normalize_value;
use cwl::loader::{load_document, resolve_run, CwlDocument};
use cwl::workflow::{RunRef, Step, Workflow};
use cwl::CommandLineTool;
use cwlexec::{engine_for, execute_tool_staged, StageCtx, ToolDispatch};
use datastore::Stager;
use expr::{interpolate, EvalContext};
use obs::{Observability, SpanKind};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use yamlite::{Map, Value};

/// A step's resolved run target, loaded once up front (all runners cache
/// parsed documents; the *revalidation* knob models cwltool's per-job
/// reprocessing separately).
struct ResolvedStep {
    doc: CwlDocument,
    /// Raw document text, kept for per-task revalidation cost.
    raw: Option<String>,
    /// Directory for resolving the step document's own references.
    base_dir: PathBuf,
}

/// The generic executor. See [`crate::RefRunner`] / [`crate::ToilRunner`]
/// for the configured baselines.
pub struct WorkflowExecutor {
    /// Cost/scheduling profile.
    pub profile: ExecProfile,
    dispatch: Arc<dyn ToolDispatch>,
    tasks: AtomicUsize,
    /// Per-run observability; `None` falls back to the process-global
    /// instance (disabled unless a run enables it).
    obs: Option<Arc<Observability>>,
}

impl WorkflowExecutor {
    /// Build an executor.
    pub fn new(profile: ExecProfile, dispatch: Arc<dyn ToolDispatch>) -> Self {
        Self {
            profile,
            dispatch,
            tasks: AtomicUsize::new(0),
            obs: None,
        }
    }

    /// Attach a per-run observability instance (traces + lineage for this
    /// executor's runs land there instead of the process-global one).
    pub fn with_observability(mut self, obs: Arc<Observability>) -> Self {
        self.obs = Some(obs);
        self
    }

    fn obs(&self) -> &Observability {
        self.obs.as_deref().unwrap_or_else(|| obs::global())
    }

    /// Execute the CWL file at `path` with `provided` inputs, placing all
    /// working files under `workdir`. Works for both CommandLineTools and
    /// Workflows (including scatter and subworkflows).
    pub fn run_file(
        &self,
        path: impl AsRef<Path>,
        provided: &Map,
        workdir: impl AsRef<Path>,
    ) -> Result<RunReport, String> {
        let path = path.as_ref();
        let workdir = workdir.as_ref();
        std::fs::create_dir_all(workdir)
            .map_err(|e| format!("cannot create workdir {}: {e}", workdir.display()))?;
        // Every run stages under its own `run-*` subdirectory: two runs
        // sharing a workdir (concurrent invocations, or a rerun after a
        // crash) must never clobber each other's staged files.
        let run_dir = unique_run_dir(workdir)?;
        let raw = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = load_document(
            &yamlite::parse_str(&raw).map_err(|e| format!("{}: {e}", path.display()))?,
        )
        .map_err(|e| format!("{}: {e}", path.display()))?;
        let base_dir = path.parent().unwrap_or(Path::new(".")).to_path_buf();

        // Pre-run gate: refuse to start a run the static analyzer can
        // already prove broken (type-mismatched links, bad expressions).
        if self.profile.precheck {
            let report = cwl::analyze::analyze_str(&raw, Some(path));
            if !report.is_clean(self.profile.precheck_strict) {
                return Err(format!(
                    "static analysis found {} error(s), {} warning(s):\n{}",
                    report.error_count(),
                    report.warning_count(),
                    report.render_text().trim_end()
                ));
            }
        }

        // The run's data plane: a content store under the run directory
        // (or a shared one, if config pins `staging.dir`).
        let stager = self.profile.staging.build(&run_dir)?;

        self.tasks.store(0, Ordering::SeqCst);
        let start = Instant::now();
        // Root span for the whole run; every leaf task hangs off it. An
        // early-error `?` drops the span unfinished, which never records.
        let wf_label = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| self.profile.name.clone());
        let wf_span = self
            .obs()
            .start_span(SpanKind::WorkflowRun, 0, 0, &wf_label);
        let root = wf_span.id();
        let outputs = match &doc {
            CwlDocument::Tool(tool) => {
                // Single-tool runs pay the coordinator setup once.
                let bytes = yamlite::to_string_flow(&Value::Map(provided.clone())).len();
                let kib = (bytes as f64 / 1024.0).ceil() as u32;
                gridsim::pay(self.profile.setup_per_task + self.profile.setup_per_kib * kib);
                let label = tool.id.clone().unwrap_or_else(|| "tool".to_string());
                self.run_tool_task(
                    tool,
                    Some(&raw),
                    provided,
                    &run_dir,
                    &label,
                    None,
                    root,
                    &stager,
                )?
            }
            CwlDocument::Workflow(wf) => {
                self.run_workflow(wf, &base_dir, provided, &run_dir, root, &stager)?
            }
        };
        self.obs().finish_span(wf_span);
        // Fold the run's staging counters into the trace exactly once
        // (stagers are shared across tasks; deltas would race).
        cwlexec::publish_stage_stats(self.obs(), stager.stats());
        Ok(RunReport {
            runner: self.profile.name.clone(),
            outputs,
            tasks: self.tasks.load(Ordering::SeqCst),
            elapsed: start.elapsed(),
            run_dir,
        })
    }

    /// Execute one leaf tool task, paying the profile's per-task costs.
    #[allow(clippy::too_many_arguments)]
    fn run_tool_task(
        &self,
        tool: &CommandLineTool,
        raw: Option<&str>,
        provided: &Map,
        workdir: &Path,
        label: &str,
        step: Option<&str>,
        parent: u64,
        stager: &Arc<Stager>,
    ) -> Result<Map, String> {
        let task_no = self.tasks.fetch_add(1, Ordering::SeqCst);
        // Lineage ids are 1-based (0 means "no task" in span records).
        let lineage = task_no as u64 + 1;
        let obs = self.obs();
        let span = obs.start_span(SpanKind::ToolExec, lineage, parent, label);
        if obs.is_enabled() {
            obs.lineage_submit(lineage, label);
            obs.lineage_dispatch(lineage);
            if let Some(step) = step {
                obs.lineage_bind_step(lineage, step);
            }
        }

        // Per-task interpreter/process start-up.
        gridsim::pay(self.profile.per_task_overhead);

        // cwltool-style per-job document reprocessing (real work).
        if self.profile.revalidate_per_task {
            if let Some(raw) = raw {
                let doc = yamlite::parse_str(raw).map_err(|e| format!("revalidation: {e}"))?;
                let diags = cwl::validate_document(&doc);
                if !cwl::validate::is_valid(&diags) {
                    return Err(format!("revalidation failed: {}", diags[0]));
                }
            }
        }

        // Toil-style job store round trip: persist the job description,
        // pay the batch submit latency.
        let job_file = if let Some(store) = &self.profile.job_store {
            std::fs::create_dir_all(store).map_err(|e| format!("cannot create job store: {e}"))?;
            let job_file = store.join(format!("job-{task_no}.yml"));
            let mut desc = Map::new();
            desc.insert(
                "tool",
                tool.id.clone().unwrap_or_else(|| "anonymous".into()),
            );
            desc.insert("inputs", Value::Map(provided.clone()));
            std::fs::write(&job_file, yamlite::to_string(&Value::Map(desc)))
                .map_err(|e| format!("cannot write job file: {e}"))?;
            gridsim::pay(self.profile.submit_latency);
            Some(job_file)
        } else {
            None
        };

        let engine = engine_for(&tool.requirements, self.profile.js_cost.clone())?;
        let stage_ctx = StageCtx {
            stager,
            obs,
            lineage,
            parent: span.id(),
        };
        let result = execute_tool_staged(
            tool,
            provided,
            workdir,
            engine.as_ref(),
            self.dispatch.as_ref(),
            Some(&stage_ctx),
        );

        if let Some(job_file) = job_file {
            // Persist the outcome and pay the leader's poll-discovery delay
            // (half an interval on average).
            let status = if result.is_ok() { "done" } else { "failed" };
            let _ = std::fs::write(job_file.with_extension("status"), format!("{status}\n"));
            gridsim::pay(self.profile.poll_interval / 2);
        }

        if obs.is_enabled() {
            let outcome = if result.is_ok() {
                "completed"
            } else {
                "failed"
            };
            obs.lineage_complete(lineage, outcome);
        }
        obs.finish_span(span);
        result.map(|run| run.outputs)
    }

    /// Execute a workflow: ready-wave scheduling with scatter expansion.
    fn run_workflow(
        &self,
        wf: &Workflow,
        base_dir: &Path,
        provided: &Map,
        workdir: &Path,
        parent: u64,
        stager: &Arc<Stager>,
    ) -> Result<Map, String> {
        // Check structure first (cheap; mirrors runners validating upfront).
        wf.topo_order()?;

        // Resolve workflow inputs.
        let mut wf_inputs = Map::with_capacity(wf.inputs.len());
        for key in provided.keys() {
            if !wf.inputs.iter().any(|i| i.id == key) {
                return Err(format!("unknown workflow input {key:?}"));
            }
        }
        for input in &wf.inputs {
            let raw = provided
                .get(&input.id)
                .cloned()
                .or_else(|| input.default.clone())
                .unwrap_or(Value::Null);
            if raw.is_null() && !input.typ.allows_null() {
                return Err(format!("missing required workflow input {:?}", input.id));
            }
            let v = normalize_value(&raw, &input.typ)
                .map_err(|e| format!("workflow input {:?}: {e}", input.id))?;
            wf_inputs.insert(input.id.clone(), v);
        }

        // Load each step's run target once.
        let mut resolved: Vec<ResolvedStep> = Vec::with_capacity(wf.steps.len());
        for step in &wf.steps {
            let (doc, raw, step_base) = match &step.run {
                RunRef::Path(p) => {
                    let path = if Path::new(p).is_absolute() {
                        PathBuf::from(p)
                    } else {
                        base_dir.join(p)
                    };
                    let raw = std::fs::read_to_string(&path).map_err(|e| {
                        format!("step {:?}: cannot read {}: {e}", step.id, path.display())
                    })?;
                    let doc = load_document(
                        &yamlite::parse_str(&raw)
                            .map_err(|e| format!("step {:?}: {e}", step.id))?,
                    )
                    .map_err(|e| format!("step {:?}: {e}", step.id))?;
                    let dir = path.parent().unwrap_or(base_dir).to_path_buf();
                    (doc, Some(raw), dir)
                }
                inline @ RunRef::Inline(_) => {
                    let doc = resolve_run(inline, base_dir)
                        .map_err(|e| format!("step {:?}: {e}", step.id))?;
                    (doc, None, base_dir.to_path_buf())
                }
            };
            if matches!(doc, CwlDocument::Workflow(_)) && !wf.requirements.subworkflow {
                return Err(format!(
                    "step {:?} runs a nested workflow but SubworkflowFeatureRequirement is absent",
                    step.id
                ));
            }
            resolved.push(ResolvedStep {
                doc,
                raw,
                base_dir: step_base,
            });
        }

        // Expression engine for step-level valueFrom.
        let wf_engine = engine_for(&wf.requirements, self.profile.js_cost.clone())?;

        let mut completed: HashMap<String, Value> = HashMap::new();
        let mut done: HashSet<usize> = HashSet::new();

        while done.len() < wf.steps.len() {
            let ready: Vec<usize> = (0..wf.steps.len())
                .filter(|i| !done.contains(i))
                .filter(|&i| {
                    wf.steps[i].upstream_steps().iter().all(|up| {
                        wf.step(up).is_some()
                            && done.contains(
                                &wf.steps
                                    .iter()
                                    .position(|s| &s.id == up)
                                    .expect("validated"),
                            )
                    })
                })
                .collect();
            if ready.is_empty() {
                return Err("workflow scheduling deadlock (cycle?)".to_string());
            }

            // Expand every ready step into leaf jobs.
            struct Job<'a> {
                step_idx: usize,
                scatter_idx: Option<usize>,
                inputs: Map,
                rstep: &'a ResolvedStep,
                step: &'a Step,
            }
            let mut jobs: Vec<Job> = Vec::new();
            for &i in &ready {
                let step = &wf.steps[i];
                let rstep = &resolved[i];
                let base = self.step_base_inputs(step, &wf_inputs, &completed)?;
                if step.scatter.is_empty() {
                    let inputs = self.apply_value_from(step, base, wf_engine.as_ref())?;
                    jobs.push(Job {
                        step_idx: i,
                        scatter_idx: None,
                        inputs,
                        rstep,
                        step,
                    });
                } else {
                    let n = scatter_len(step, &base)?;
                    for k in 0..n {
                        let mut inst = base.clone();
                        for target in &step.scatter {
                            let arr = inst
                                .get(target)
                                .and_then(Value::as_seq)
                                .expect("scatter_len validated arrays");
                            let element = arr[k].clone();
                            inst.insert(target.clone(), element);
                        }
                        let inputs = self.apply_value_from(step, inst, wf_engine.as_ref())?;
                        jobs.push(Job {
                            step_idx: i,
                            scatter_idx: Some(k),
                            inputs,
                            rstep,
                            step,
                        });
                    }
                }
            }

            // Coordinator-side job construction: cwltool/Toil build each
            // job object (deep copies of the job order) serially in the
            // main process before any dispatch. Paid here, on the
            // scheduling thread, proportional to each job's input size.
            if !self.profile.setup_per_task.is_zero() || !self.profile.setup_per_kib.is_zero() {
                for job in &jobs {
                    let bytes = yamlite::to_string_flow(&Value::Map(job.inputs.clone())).len();
                    let kib = (bytes as f64 / 1024.0).ceil() as u32;
                    gridsim::pay(self.profile.setup_per_task + self.profile.setup_per_kib * kib);
                }
            }

            // Prestage: hash every distinct input file of this wave on
            // the staging pool before any job runs, so a file scattered
            // across the wave is ingested once, in parallel with its
            // siblings — per-job stage-in then only links.
            self.prestage_wave(jobs.iter().map(|job| &job.inputs), stager);

            // Run this wave's jobs on the bounded pool.
            let closures: Vec<_> = jobs
                .iter()
                .map(|job| {
                    let job_dir = match job.scatter_idx {
                        None => workdir.join(&job.step.id),
                        Some(k) => workdir.join(format!("{}_{k}", job.step.id)),
                    };
                    let inputs = job.inputs.clone();
                    let rstep = job.rstep;
                    let step = job.step;
                    // Scatter instances keep the index in the label but
                    // share the bare step id in the lineage record.
                    let label = match job.scatter_idx {
                        None => step.id.clone(),
                        Some(k) => format!("{}_{k}", step.id),
                    };
                    let wf_engine = &wf_engine;
                    move || -> Result<Map, String> {
                        // CWL v1.2 conditional execution: a falsy `when`
                        // skips the step; its outputs become null.
                        if let Some(when) = &step.when {
                            let ctx = expr::EvalContext::from_inputs(Value::Map(inputs.clone()));
                            let verdict = interpolate(when, wf_engine.as_ref(), &ctx)
                                .map_err(|e| format!("step {:?} when: {e}", step.id))?;
                            if !verdict.truthy() {
                                let mut skipped = Map::with_capacity(step.out.len());
                                for out_id in &step.out {
                                    skipped.insert(out_id.clone(), Value::Null);
                                }
                                return Ok(skipped);
                            }
                        }
                        match &rstep.doc {
                            CwlDocument::Tool(tool) => self
                                .run_tool_task(
                                    tool,
                                    rstep.raw.as_deref(),
                                    &inputs,
                                    &job_dir,
                                    &label,
                                    Some(&step.id),
                                    parent,
                                    stager,
                                )
                                .map_err(|e| format!("step {:?}: {e}", step.id)),
                            CwlDocument::Workflow(sub) => self
                                .run_workflow(
                                    sub,
                                    &rstep.base_dir,
                                    &inputs,
                                    &job_dir,
                                    parent,
                                    stager,
                                )
                                .map_err(|e| format!("step {:?}: {e}", step.id)),
                        }
                    }
                })
                .collect();
            let results = run_parallel(closures, self.profile.slots);

            // Gather results back into `completed`.
            let mut scatter_acc: HashMap<usize, Vec<Map>> = HashMap::new();
            for (job, result) in jobs.iter().zip(results) {
                let outputs = result?;
                match job.scatter_idx {
                    None => record_outputs(&wf.steps[job.step_idx], outputs, &mut completed)?,
                    Some(_) => scatter_acc.entry(job.step_idx).or_default().push(outputs),
                }
            }
            for (step_idx, parts) in scatter_acc {
                let step = &wf.steps[step_idx];
                for out_id in &step.out {
                    let collected: Result<Vec<Value>, String> = parts
                        .iter()
                        .map(|m| {
                            m.get(out_id).cloned().ok_or_else(|| {
                                format!("step {:?} did not produce output {out_id:?}", step.id)
                            })
                        })
                        .collect();
                    completed.insert(format!("{}/{}", step.id, out_id), Value::Seq(collected?));
                }
            }
            for i in ready {
                done.insert(i);
            }
        }

        // Wire workflow outputs.
        let mut outputs = Map::with_capacity(wf.outputs.len());
        for out in &wf.outputs {
            let value = if out.output_source.contains('/') {
                completed
                    .get(&out.output_source)
                    .cloned()
                    .ok_or_else(|| format!("outputSource {:?} never produced", out.output_source))?
            } else {
                wf_inputs.get(&out.output_source).cloned().ok_or_else(|| {
                    format!("outputSource {:?} is not an input", out.output_source)
                })?
            };
            outputs.insert(out.id.clone(), value);
        }
        Ok(outputs)
    }

    /// Ingest every distinct `class: File` referenced by a wave's job
    /// inputs on the bounded staging pool. Errors are deliberately
    /// swallowed here: a missing file surfaces with full context when the
    /// owning task stages it for real.
    fn prestage_wave<'a>(&self, inputs: impl Iterator<Item = &'a Map>, stager: &Arc<Stager>) {
        let mut seen: HashSet<PathBuf> = HashSet::new();
        for map in inputs {
            for (_, v) in map.iter() {
                collect_file_paths(v, &mut seen);
            }
        }
        if seen.len() < 2 {
            // One file (or none) gains nothing from the pool; the task's
            // own stage-in handles it.
            for path in &seen {
                let _ = stager.store().ingest(path);
            }
            return;
        }
        let store = stager.store();
        let jobs: Vec<_> = seen
            .into_iter()
            .map(|path| {
                let store = Arc::clone(store);
                move || {
                    let _ = store.ingest(&path);
                    Ok::<(), String>(())
                }
            })
            .collect();
        let _ = run_parallel(jobs, self.profile.staging.pool.max(1));
    }

    /// Resolve a step's inputs from sources and defaults (pre-scatter,
    /// pre-valueFrom).
    fn step_base_inputs(
        &self,
        step: &Step,
        wf_inputs: &Map,
        completed: &HashMap<String, Value>,
    ) -> Result<Map, String> {
        let mut out = Map::with_capacity(step.inputs.len());
        for input in &step.inputs {
            let resolve_one = |src: &str| -> Result<Value, String> {
                if src.contains('/') {
                    completed.get(src).cloned().ok_or_else(|| {
                        format!(
                            "step {:?} input {:?}: source {src:?} not ready",
                            step.id, input.id
                        )
                    })
                } else {
                    wf_inputs.get(src).cloned().ok_or_else(|| {
                        format!(
                            "step {:?} input {:?}: unknown workflow input {src:?}",
                            step.id, input.id
                        )
                    })
                }
            };
            let mut value = if input.is_multi_source() {
                // Gather a source list according to linkMerge (default
                // merge_nested: one array element per listed source).
                let gathered: Vec<Value> = input
                    .sources
                    .iter()
                    .map(|s| resolve_one(s))
                    .collect::<Result<_, _>>()?;
                match input.link_merge.as_deref().unwrap_or("merge_nested") {
                    "merge_flattened" => {
                        let mut flat = Vec::new();
                        for v in gathered {
                            match v {
                                Value::Seq(items) => flat.extend(items),
                                other => flat.push(other),
                            }
                        }
                        Value::Seq(flat)
                    }
                    "merge_nested" => Value::Seq(gathered),
                    other => {
                        return Err(format!(
                            "step {:?} input {:?}: unknown linkMerge method {other:?}",
                            step.id, input.id
                        ))
                    }
                }
            } else {
                match &input.source {
                    Some(src) => resolve_one(src)?,
                    None => Value::Null,
                }
            };
            if value.is_null() {
                if let Some(default) = &input.default {
                    value = default.clone();
                }
            }
            out.insert(input.id.clone(), value);
        }
        Ok(out)
    }

    /// Apply `valueFrom` transforms: each sees `inputs` (the full
    /// pre-transform map) and `self` (its own current value).
    fn apply_value_from(
        &self,
        step: &Step,
        base: Map,
        engine: &dyn expr::ExpressionEngine,
    ) -> Result<Map, String> {
        let frozen = Value::Map(base.clone());
        let mut out = base;
        for input in &step.inputs {
            if let Some(vf) = &input.value_from {
                let mut ctx = EvalContext::from_inputs(frozen.clone());
                ctx.self_ = out.get(&input.id).cloned().unwrap_or(Value::Null);
                let v = interpolate(vf, engine, &ctx).map_err(|e| {
                    format!("step {:?} input {:?} valueFrom: {e}", step.id, input.id)
                })?;
                out.insert(input.id.clone(), v);
            }
        }
        Ok(out)
    }
}

/// Name of the persisted run counter inside a work dir.
const RUN_SEQ_FILE: &str = ".run-seq";

/// Create a fresh `run-<pid>-<n>` subdirectory of `workdir`. Uniqueness is
/// claimed by `create_dir`'s atomicity, not by the name alone. The counter
/// `n` is *persisted in the work dir* rather than held in a process-global:
/// a long-lived daemon that restarts (possibly with a recycled pid, so
/// `run-<pid>-0` would repeat) continues the sequence instead of reissuing
/// run identities that earlier incarnations already used — even when their
/// directories have since been cleaned up. The pid stays in the name purely
/// for debuggability.
fn unique_run_dir(workdir: &Path) -> Result<PathBuf, String> {
    let pid = std::process::id();
    let seq_path = workdir.join(RUN_SEQ_FILE);
    let mut n: usize = std::fs::read_to_string(&seq_path)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    loop {
        let candidate = workdir.join(format!("run-{pid}-{n}"));
        match std::fs::create_dir(&candidate) {
            Ok(()) => {
                // Persist the next counter via a unique temp file + rename
                // so concurrent allocators never read a torn write. A racer
                // may persist a smaller value last; correctness still rests
                // on `create_dir` arbitration above — the counter only has
                // to keep moving forward across process restarts.
                let tmp = workdir.join(format!("{RUN_SEQ_FILE}.tmp-{pid}-{n}"));
                if std::fs::write(&tmp, format!("{}\n", n + 1)).is_ok() {
                    let _ = std::fs::rename(&tmp, &seq_path);
                }
                return Ok(candidate);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => n += 1,
            Err(e) => {
                return Err(format!(
                    "cannot create run directory {}: {e}",
                    candidate.display()
                ))
            }
        }
    }
}

/// Collect the `path` of every `class: File` object in a value.
fn collect_file_paths(value: &Value, out: &mut HashSet<PathBuf>) {
    match value {
        Value::Map(map) => {
            if map.get("class").and_then(Value::as_str) == Some("File") {
                if let Some(p) = map.get("path").and_then(Value::as_str) {
                    out.insert(PathBuf::from(p));
                }
                return;
            }
            for (_, v) in map.iter() {
                collect_file_paths(v, out);
            }
        }
        Value::Seq(items) => {
            for v in items {
                collect_file_paths(v, out);
            }
        }
        _ => {}
    }
}

/// Validate scatter targets are equal-length arrays; return the length.
fn scatter_len(step: &Step, inputs: &Map) -> Result<usize, String> {
    let mut len: Option<usize> = None;
    for target in &step.scatter {
        let arr = inputs.get(target).and_then(Value::as_seq).ok_or_else(|| {
            format!(
                "step {:?}: scatter target {target:?} is not an array",
                step.id
            )
        })?;
        match len {
            None => len = Some(arr.len()),
            Some(n) if n != arr.len() => {
                return Err(format!(
                    "step {:?}: scatter arrays have different lengths ({n} vs {})",
                    step.id,
                    arr.len()
                ))
            }
            _ => {}
        }
    }
    len.ok_or_else(|| format!("step {:?}: empty scatter", step.id))
}

/// Record a non-scattered step's outputs under `step/out` keys.
fn record_outputs(
    step: &Step,
    outputs: Map,
    completed: &mut HashMap<String, Value>,
) -> Result<(), String> {
    for out_id in &step.out {
        let v = outputs.get(out_id).cloned().ok_or_else(|| {
            format!(
                "step {:?} did not produce declared output {out_id:?}",
                step.id
            )
        })?;
        completed.insert(format!("{}/{}", step.id, out_id), v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression (daemon restart): the run counter must survive the
    /// process. Before the persisted counter, a restarted daemon whose pid
    /// the OS recycled restarted its in-process sequence at zero and
    /// reissued `run-<pid>-0` over an existing work tree — or, worse, after
    /// the old run dir was cleaned up, silently reused a run identity an
    /// earlier incarnation had already published. Simulate exactly that:
    /// allocate, delete the directory (old run cleaned up), allocate again
    /// "after restart" — the second allocation must advance, not reuse.
    #[test]
    fn run_dirs_never_reuse_identities_across_restarts() {
        let workdir = std::env::temp_dir().join(format!("wfexec-runseq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&workdir);
        std::fs::create_dir_all(&workdir).unwrap();
        let pid = std::process::id();

        let first = unique_run_dir(&workdir).unwrap();
        assert_eq!(
            first.file_name().unwrap().to_str().unwrap(),
            format!("run-{pid}-0")
        );
        // The previous incarnation's run dir gets cleaned up; with only an
        // in-process counter a "restarted" allocator would hand out
        // run-<pid>-0 again.
        std::fs::remove_dir_all(&first).unwrap();
        let second = unique_run_dir(&workdir).unwrap();
        assert_eq!(
            second.file_name().unwrap().to_str().unwrap(),
            format!("run-{pid}-1"),
            "persisted counter must advance past cleaned-up runs"
        );
        // A stale leftover directory is still resolved by create_dir
        // arbitration, and the counter skips past it afterwards.
        std::fs::create_dir(workdir.join(format!("run-{pid}-2"))).unwrap();
        let third = unique_run_dir(&workdir).unwrap();
        assert_eq!(
            third.file_name().unwrap().to_str().unwrap(),
            format!("run-{pid}-3")
        );
        std::fs::remove_dir_all(&workdir).unwrap();
    }
}
