//! The Toil-like runner.

use crate::profile::ExecProfile;
use crate::report::RunReport;
use crate::wfexec::WorkflowExecutor;
use cwlexec::ToolDispatch;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use yamlite::Map;

/// A runner reproducing `toil-cwl-runner`'s architecture: a leader that
/// persists every job to a file-backed *job store*, submits tasks through a
/// batch system (paying submit latency), and discovers completions by
/// polling. Distributed deployments take their slot count from the
/// simulated cluster.
pub struct ToilRunner {
    exec: WorkflowExecutor,
    job_store: PathBuf,
}

impl ToilRunner {
    /// Single-machine deployment (`--batchSystem single_machine`).
    pub fn single_machine(
        slots: usize,
        job_store: PathBuf,
        dispatch: Arc<dyn ToolDispatch>,
    ) -> Self {
        Self {
            exec: WorkflowExecutor::new(ExecProfile::toil_like(slots, job_store.clone()), dispatch),
            job_store,
        }
    }

    /// Slurm deployment over the simulated cluster: slot count = total
    /// cluster cores, submit latency per task as with real sbatch.
    pub fn slurm(
        cluster: &gridsim::ClusterSpec,
        job_store: PathBuf,
        dispatch: Arc<dyn ToolDispatch>,
    ) -> Self {
        Self::single_machine(cluster.total_cores(), job_store, dispatch)
    }

    /// Execute a tool or workflow file.
    pub fn run(
        &self,
        path: impl AsRef<Path>,
        inputs: &Map,
        workdir: impl AsRef<Path>,
    ) -> Result<RunReport, String> {
        std::fs::create_dir_all(&self.job_store)
            .map_err(|e| format!("cannot create job store: {e}"))?;
        self.exec.run_file(path, inputs, workdir)
    }

    /// Number of job files currently in the job store.
    pub fn job_store_entries(&self) -> usize {
        std::fs::read_dir(&self.job_store)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "yml"))
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwlexec::BuiltinDispatch;
    use yamlite::{vmap, Value};

    fn fixtures() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
    }

    fn workdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("toil-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn as_map(v: Value) -> Map {
        match v {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    #[test]
    fn runs_pipeline_and_populates_job_store() {
        let dir = workdir("pipeline");
        imaging::write_rimg(dir.join("input.rimg"), &imaging::gradient(24, 24, 5)).unwrap();
        let runner =
            ToilRunner::single_machine(4, dir.join("job-store"), Arc::new(BuiltinDispatch));
        let report = runner
            .run(
                fixtures().join("image_pipeline.cwl"),
                &as_map(vmap! {
                    "input_image" => dir.join("input.rimg").to_string_lossy().into_owned(),
                    "size" => 12i64,
                    "sepia" => false,
                    "radius" => 2i64,
                }),
                &dir,
            )
            .unwrap();
        assert_eq!(report.tasks, 3);
        assert_eq!(runner.job_store_entries(), 3);
        // Every job has a terminal status file.
        let statuses: Vec<String> = std::fs::read_dir(dir.join("job-store"))
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "status"))
            .map(|e| std::fs::read_to_string(e.path()).unwrap())
            .collect();
        assert_eq!(statuses.len(), 3);
        assert!(statuses.iter().all(|s| s.trim() == "done"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slurm_deployment_uses_cluster_width() {
        let cluster = gridsim::ClusterSpec::small(3, 4);
        let dir = workdir("slurm");
        let runner = ToilRunner::slurm(&cluster, dir.join("js"), Arc::new(BuiltinDispatch));
        assert_eq!(runner.exec.profile.slots, 12);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_job_records_failed_status() {
        let dir = workdir("fail");
        let runner = ToilRunner::single_machine(2, dir.join("js"), Arc::new(BuiltinDispatch));
        let err = runner
            .run(
                fixtures().join("image_pipeline.cwl"),
                &as_map(vmap! {
                    "input_image" => "/ghost.rimg",
                    "size" => 8i64,
                    "sepia" => false,
                    "radius" => 1i64,
                }),
                &dir,
            )
            .unwrap_err();
        assert!(err.contains("resize_image"), "{err}");
        let statuses: Vec<String> = std::fs::read_dir(dir.join("js"))
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "status"))
            .map(|e| std::fs::read_to_string(e.path()).unwrap())
            .collect();
        assert!(statuses.iter().any(|s| s.trim() == "failed"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
