//! Bounded parallel execution of a batch of jobs — the scheduling shape of
//! `cwltool --parallel` (a thread per ready job, capped at a slot count).

use crossbeam::channel::unbounded;

/// Run `jobs` with at most `slots` running concurrently. Results come back
/// in job order. Panics in jobs are isolated per job and reported as `Err`.
pub fn run_parallel<T, F>(jobs: Vec<F>, slots: usize) -> Vec<Result<T, String>>
where
    T: Send,
    F: FnOnce() -> Result<T, String> + Send,
{
    let slots = slots.max(1);
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let (tx, rx) = unbounded::<(usize, F)>();
    for (i, job) in jobs.into_iter().enumerate() {
        tx.send((i, job)).expect("queue open");
    }
    drop(tx);

    let mut results: Vec<Option<Result<T, String>>> = (0..n).map(|_| None).collect();
    let (rtx, rrx) = unbounded::<(usize, Result<T, String>)>();
    crossbeam::thread::scope(|scope| {
        for _ in 0..slots.min(n) {
            let rx = rx.clone();
            let rtx = rtx.clone();
            scope.spawn(move |_| {
                while let Ok((i, job)) = rx.recv() {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                        .unwrap_or_else(|p| {
                            let msg = p
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| p.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "job panicked".to_string());
                            Err(format!("job panicked: {msg}"))
                        });
                    let _ = rtx.send((i, result));
                }
            });
        }
        drop(rtx);
        while let Ok((i, r)) = rrx.recv() {
            results[i] = Some(r);
        }
    })
    .expect("scoped threads join");
    results
        .into_iter()
        .map(|r| r.expect("every job reported a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn results_in_order() {
        let jobs: Vec<_> = (0..20)
            .map(|i| move || -> Result<usize, String> { Ok(i * 2) })
            .collect();
        let results = run_parallel(jobs, 4);
        for (i, r) in results.into_iter().enumerate() {
            assert_eq!(r.unwrap(), i * 2);
        }
    }

    #[test]
    fn respects_slot_bound() {
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..12)
            .map(|_| {
                let running = running.clone();
                let peak = peak.clone();
                move || -> Result<(), String> {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(15));
                    running.fetch_sub(1, Ordering::SeqCst);
                    Ok(())
                }
            })
            .collect();
        run_parallel(jobs, 3);
        let p = peak.load(Ordering::SeqCst);
        assert!(p <= 3, "peak concurrency {p} exceeded 3 slots");
        assert!(p >= 2, "no parallelism observed");
    }

    #[test]
    fn failures_and_panics_isolated() {
        let jobs: Vec<Box<dyn FnOnce() -> Result<i32, String> + Send>> = vec![
            Box::new(|| Ok(1)),
            Box::new(|| Err("bad".to_string())),
            Box::new(|| panic!("kaboom")),
            Box::new(|| Ok(4)),
        ];
        let results = run_parallel(jobs, 2);
        assert_eq!(results[0].as_ref().unwrap(), &1);
        assert_eq!(results[1].as_ref().unwrap_err(), "bad");
        assert!(results[2].as_ref().unwrap_err().contains("kaboom"));
        assert_eq!(results[3].as_ref().unwrap(), &4);
    }

    #[test]
    fn empty_and_zero_slots() {
        let empty: Vec<fn() -> Result<(), String>> = vec![];
        assert!(run_parallel(empty, 4).is_empty());
        let one = vec![|| -> Result<i32, String> { Ok(9) }];
        assert_eq!(run_parallel(one, 0)[0].as_ref().unwrap(), &9);
    }
}
