//! Edge-case tests for the generic workflow executor: scatter validation,
//! conditional steps, subworkflow gating, and error reporting.

use cwlexec::BuiltinDispatch;
use runners::{ExecProfile, WorkflowExecutor};
use std::path::PathBuf;
use std::sync::Arc;
use yamlite::{Map, Value};

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("wfexec-edge-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn exec() -> WorkflowExecutor {
    WorkflowExecutor::new(ExecProfile::bare(2), Arc::new(BuiltinDispatch))
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p
}

const ECHO_TOOL: &str = r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  msg:
    type: string
    inputBinding: {position: 1}
outputs:
  out:
    type: stdout
stdout: msg.txt
"#;

#[test]
fn multi_target_scatter_dotproduct() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("dot");
    write(
        &dir,
        "pair.cwl",
        r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  a:
    type: string
    inputBinding: {position: 1}
  b:
    type: string
    inputBinding: {position: 2}
outputs:
  out:
    type: stdout
stdout: pair.txt
"#,
    );
    let wf = write(
        &dir,
        "wf.cwl",
        r#"
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  xs: string[]
  ys: string[]
outputs:
  pairs:
    type: File[]
    outputSource: s/out
steps:
  s:
    run: pair.cwl
    scatter: [a, b]
    in:
      a: xs
      b: ys
    out: [out]
"#,
    );
    let mut inputs = Map::new();
    inputs.insert("xs", yamlite::vseq!["1", "2"]);
    inputs.insert("ys", yamlite::vseq!["x", "y"]);
    let report = exec().run_file(&wf, &inputs, dir.join("run")).unwrap();
    let pairs = report.outputs.get("pairs").unwrap().as_seq().unwrap();
    let texts: Vec<String> = pairs
        .iter()
        .map(|f| std::fs::read_to_string(f["path"].as_str().unwrap()).unwrap())
        .collect();
    assert_eq!(texts, vec!["1 x\n", "2 y\n"]);

    // Length mismatch is rejected.
    let mut bad = Map::new();
    bad.insert("xs", yamlite::vseq!["1", "2"]);
    bad.insert("ys", yamlite::vseq!["only"]);
    let err = exec().run_file(&wf, &bad, dir.join("bad")).unwrap_err();
    assert!(err.contains("different lengths"), "{err}");
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scatter_over_non_array_rejected() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("nonarray");
    write(&dir, "echo.cwl", ECHO_TOOL);
    let wf = write(
        &dir,
        "wf.cwl",
        r#"
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  one: string
outputs: {}
steps:
  s:
    run: echo.cwl
    scatter: msg
    in:
      msg: one
    out: [out]
"#,
    );
    let mut inputs = Map::new();
    inputs.insert("one", Value::str("not-an-array"));
    let err = exec().run_file(&wf, &inputs, dir.join("run")).unwrap_err();
    assert!(err.contains("not an array"), "{err}");
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn subworkflow_requires_feature_requirement() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("subreq");
    write(&dir, "echo.cwl", ECHO_TOOL);
    write(
        &dir,
        "inner.cwl",
        r#"
cwlVersion: v1.2
class: Workflow
inputs:
  msg: string
outputs:
  out:
    type: File
    outputSource: e/out
steps:
  e:
    run: echo.cwl
    in:
      msg: msg
    out: [out]
"#,
    );
    let wf = write(
        &dir,
        "outer.cwl",
        r#"
cwlVersion: v1.2
class: Workflow
inputs:
  msg: string
outputs: {}
steps:
  nested:
    run: inner.cwl
    in:
      msg: msg
    out: [out]
"#,
    );
    let mut inputs = Map::new();
    inputs.insert("msg", Value::str("hi"));
    let err = exec().run_file(&wf, &inputs, dir.join("run")).unwrap_err();
    assert!(err.contains("SubworkflowFeatureRequirement"), "{err}");
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn conditional_scatter_instances_skip_individually() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("condscatter");
    write(
        &dir,
        "num.cwl",
        r#"
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  n:
    type: int
    inputBinding: {position: 1}
outputs:
  out:
    type: stdout
stdout: n.txt
"#,
    );
    let wf = write(
        &dir,
        "wf.cwl",
        r#"
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  ns: int[]
outputs:
  outs:
    type: File[]
    outputSource: s/out
steps:
  s:
    run: num.cwl
    scatter: n
    when: $(inputs.n % 2 == 0)
    in:
      n: ns
    out: [out]
"#,
    );
    let mut inputs = Map::new();
    inputs.insert("ns", yamlite::vseq![1i64, 2i64, 3i64, 4i64]);
    let report = exec().run_file(&wf, &inputs, dir.join("run")).unwrap();
    let outs = report.outputs.get("outs").unwrap().as_seq().unwrap();
    assert_eq!(outs.len(), 4);
    assert!(outs[0].is_null(), "odd instance must be skipped");
    assert!(!outs[1].is_null());
    assert!(outs[2].is_null());
    assert!(!outs[3].is_null());
    // Only the even instances executed.
    assert_eq!(report.tasks, 2);
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workflow_output_can_forward_an_input() {
    gridsim::TimeScale::set(0.0);
    let dir = scratch("fwd");
    write(&dir, "echo.cwl", ECHO_TOOL);
    let wf = write(
        &dir,
        "wf.cwl",
        r#"
cwlVersion: v1.2
class: Workflow
inputs:
  msg: string
outputs:
  echoed:
    type: File
    outputSource: e/out
  original:
    type: string
    outputSource: msg
steps:
  e:
    run: echo.cwl
    in:
      msg: msg
    out: [out]
"#,
    );
    let mut inputs = Map::new();
    inputs.insert("msg", Value::str("roundtrip"));
    let report = exec().run_file(&wf, &inputs, dir.join("run")).unwrap();
    assert_eq!(
        report.outputs.get("original").unwrap(),
        &Value::str("roundtrip")
    );
    assert!(report.outputs.get("echoed").unwrap()["path"]
        .as_str()
        .is_some());
    gridsim::TimeScale::set(1.0);
    let _ = std::fs::remove_dir_all(&dir);
}
