//! A small sharded in-memory index from canonical path to content
//! digest, validated by `(len, mtime)` so an edited file never serves a
//! stale digest. One process-global instance backs every store: the same
//! input scattered to 1000 tasks is hashed once, and `parsl::File` can
//! answer `checksum()`/`size()` without touching the data plane crates.

use crate::digest::Digest;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::Metadata;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Stripe count; a power of two so stripe selection is a mask.
pub const STRIPES: usize = 16;

#[derive(Clone, Copy)]
struct Entry {
    len: u64,
    mtime_ns: i128,
    digest: Digest,
}

/// Sharded `(path, len, mtime) -> digest` cache.
pub struct PathIndex {
    stripes: [Mutex<HashMap<PathBuf, Entry>>; STRIPES],
    hits: AtomicU64,
}

impl Default for PathIndex {
    fn default() -> Self {
        Self::new()
    }
}

fn mtime_ns(meta: &Metadata) -> i128 {
    meta.modified()
        .ok()
        .and_then(|t| {
            t.duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as i128)
                .ok()
        })
        .unwrap_or(-1)
}

fn stripe_of(path: &Path) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    path.hash(&mut h);
    (h.finish() as usize) & (STRIPES - 1)
}

impl PathIndex {
    pub fn new() -> Self {
        PathIndex {
            stripes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
        }
    }

    /// Digest for `path` if cached and still valid against `meta`.
    pub fn lookup(&self, path: &Path, meta: &Metadata) -> Option<Digest> {
        let stripe = self.stripes[stripe_of(path)].lock();
        let e = stripe.get(path)?;
        if e.len == meta.len() && e.mtime_ns == mtime_ns(meta) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(e.digest)
        } else {
            None
        }
    }

    /// Digest for `path` if cached and still valid on disk right now.
    pub fn lookup_current(&self, path: &Path) -> Option<Digest> {
        let canonical = path.canonicalize().ok()?;
        let meta = std::fs::metadata(&canonical).ok()?;
        self.lookup(&canonical, &meta)
    }

    /// Record a freshly computed digest.
    pub fn record(&self, path: &Path, meta: &Metadata, digest: Digest) {
        let entry = Entry {
            len: meta.len(),
            mtime_ns: mtime_ns(meta),
            digest,
        };
        self.stripes[stripe_of(path)]
            .lock()
            .insert(path.to_path_buf(), entry);
    }

    /// How many lookups were served from the cache (digest not recomputed).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// The process-global index.
pub fn global() -> &'static PathIndex {
    static GLOBAL: OnceLock<PathIndex> = OnceLock::new();
    GLOBAL.get_or_init(PathIndex::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_metadata_misses() {
        let dir = std::env::temp_dir().join(format!("ds-index-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("f.txt");
        std::fs::write(&p, b"one").unwrap();
        let canonical = p.canonicalize().unwrap();
        let meta = std::fs::metadata(&canonical).unwrap();
        let idx = PathIndex::new();
        let d = Digest::of_bytes(b"one");
        idx.record(&canonical, &meta, d);
        assert_eq!(idx.lookup(&canonical, &meta), Some(d));
        assert_eq!(idx.lookup_current(&p), Some(d));

        std::fs::write(&p, b"grew bigger").unwrap();
        assert_eq!(idx.lookup_current(&p), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
