//! Content digests for the data plane.
//!
//! The store keys objects by **XXH64** of their bytes. The ckpt crate's
//! FNV-1a is fine for short identity strings (run hashes over YAML), but
//! an object store hashes whole files on the hot staging path, and XXH64
//! consumes input 8 bytes per round with far better dispersion — the
//! standard choice for content addressing when cryptographic strength is
//! not required (the CAS is a private cache, not a trust boundary).
//!
//! Digests render as `xxh64:<16 lowercase hex digits>`, the same
//! `algo:value` shape CWL uses for `checksum` fields (`sha1$...` in the
//! spec; we keep our own prefix so nothing mistakes it for SHA-1).

use std::fmt;
use std::io::Read;
use std::path::Path;

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME_5: u64 = 0x27D4_EB2F_1656_67C5;

/// Streaming XXH64 (seed 0). Feed bytes with [`Xxh64::update`], finish
/// with [`Xxh64::digest`].
pub struct Xxh64 {
    total: u64,
    acc: [u64; 4],
    buf: [u8; 32],
    buf_len: usize,
}

impl Default for Xxh64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Xxh64 {
    pub fn new() -> Self {
        Xxh64 {
            total: 0,
            acc: [
                PRIME_1.wrapping_add(PRIME_2),
                PRIME_2,
                0,
                0u64.wrapping_sub(PRIME_1),
            ],
            buf: [0u8; 32],
            buf_len: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let want = 32 - self.buf_len;
            let take = want.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 32 {
                return;
            }
            let buf = self.buf;
            self.consume_stripe(&buf);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(32);
        for stripe in &mut chunks {
            self.consume_stripe(stripe);
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    fn consume_stripe(&mut self, stripe: &[u8]) {
        for (i, lane) in stripe.chunks_exact(8).enumerate() {
            let v = u64::from_le_bytes(lane.try_into().expect("8-byte lane"));
            self.acc[i] = round(self.acc[i], v);
        }
    }

    pub fn digest(&self) -> u64 {
        let mut h = if self.total >= 32 {
            let [a, b, c, d] = self.acc;
            let mut h = a
                .rotate_left(1)
                .wrapping_add(b.rotate_left(7))
                .wrapping_add(c.rotate_left(12))
                .wrapping_add(d.rotate_left(18));
            for acc in [a, b, c, d] {
                h = (h ^ round(0, acc))
                    .wrapping_mul(PRIME_1)
                    .wrapping_add(PRIME_4);
            }
            h
        } else {
            PRIME_5
        };
        h = h.wrapping_add(self.total);

        let mut rem = &self.buf[..self.buf_len];
        while rem.len() >= 8 {
            let v = u64::from_le_bytes(rem[..8].try_into().expect("8 bytes"));
            h = (h ^ round(0, v))
                .rotate_left(27)
                .wrapping_mul(PRIME_1)
                .wrapping_add(PRIME_4);
            rem = &rem[8..];
        }
        if rem.len() >= 4 {
            let v = u32::from_le_bytes(rem[..4].try_into().expect("4 bytes")) as u64;
            h = (h ^ v.wrapping_mul(PRIME_1))
                .rotate_left(23)
                .wrapping_mul(PRIME_2)
                .wrapping_add(PRIME_3);
            rem = &rem[4..];
        }
        for &b in rem {
            h = (h ^ (b as u64).wrapping_mul(PRIME_5))
                .rotate_left(11)
                .wrapping_mul(PRIME_1);
        }

        h ^= h >> 33;
        h = h.wrapping_mul(PRIME_2);
        h ^= h >> 29;
        h = h.wrapping_mul(PRIME_3);
        h ^= h >> 32;
        h
    }
}

fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME_2))
        .rotate_left(31)
        .wrapping_mul(PRIME_1)
}

/// A content digest: XXH64 plus the byte length, which both disambiguates
/// the (astronomically unlikely) 64-bit collision within a run and lets
/// `File::size()` be answered from the index without a stat.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Digest {
    pub hash: u64,
    pub len: u64,
}

impl Digest {
    pub fn of_bytes(bytes: &[u8]) -> Digest {
        let mut x = Xxh64::new();
        x.update(bytes);
        Digest {
            hash: x.digest(),
            len: bytes.len() as u64,
        }
    }

    /// Hash a file by streaming it in 64 KiB chunks.
    pub fn of_file(path: &Path) -> std::io::Result<Digest> {
        let mut f = std::fs::File::open(path)?;
        let mut x = Xxh64::new();
        let mut buf = [0u8; 64 * 1024];
        let mut len = 0u64;
        loop {
            let n = f.read(&mut buf)?;
            if n == 0 {
                break;
            }
            len += n as u64;
            x.update(&buf[..n]);
        }
        Ok(Digest {
            hash: x.digest(),
            len,
        })
    }

    /// The CWL-style `checksum` string: `xxh64:<16 hex>`.
    pub fn checksum(&self) -> String {
        format!("xxh64:{:016x}", self.hash)
    }

    /// Parse a `checksum()` string back. `None` on any other shape.
    pub fn parse_checksum(s: &str, len: u64) -> Option<Digest> {
        let hex = s.strip_prefix("xxh64:")?;
        if hex.len() != 16 {
            return None;
        }
        let hash = u64::from_str_radix(hex, 16).ok()?;
        Some(Digest { hash, len })
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xxh64:{:016x}-{}", self.hash, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the canonical xxHash implementation
    // (XXH64 with seed 0).
    #[test]
    fn known_vectors() {
        assert_eq!(Digest::of_bytes(b"").hash, 0xEF46_DB37_51D8_E999);
        assert_eq!(Digest::of_bytes(b"a").hash, 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(Digest::of_bytes(b"abc").hash, 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            Digest::of_bytes(b"Nobody inspects the spammish repetition").hash,
            0xFBCE_A83C_8A37_8BF1
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_every_split() {
        let data: Vec<u8> = (0..200u32).map(|i| (i * 7 + 3) as u8).collect();
        let oneshot = Digest::of_bytes(&data);
        for split in 0..data.len() {
            let mut x = Xxh64::new();
            x.update(&data[..split]);
            x.update(&data[split..]);
            assert_eq!(x.digest(), oneshot.hash, "split at {split}");
        }
    }

    #[test]
    fn file_digest_matches_bytes() {
        let dir = std::env::temp_dir().join(format!("ds-digest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("payload.bin");
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&p, &data).unwrap();
        assert_eq!(Digest::of_file(&p).unwrap(), Digest::of_bytes(&data));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_round_trip() {
        let d = Digest::of_bytes(b"hello");
        let s = d.checksum();
        assert!(s.starts_with("xxh64:"));
        assert_eq!(Digest::parse_checksum(&s, d.len), Some(d));
        assert_eq!(Digest::parse_checksum("sha1$abc", 3), None);
        assert_eq!(Digest::parse_checksum("xxh64:zz", 3), None);
    }
}
