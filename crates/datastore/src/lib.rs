//! Content-addressed data plane for `parsl-cwl`.
//!
//! The paper's Fig. 1 workload scatters one input over up to 1000 tool
//! invocations. A copying stager moves the same bytes a thousand times;
//! this crate replaces that with a content-addressed store ([`cas`]), a
//! sharded path-to-digest index ([`index`]) so bytes are hashed exactly
//! once, and a zero-copy stager ([`stage`]) whose materialization ladder
//! — hardlink, then reflink (`FICLONE`), then copy — is chosen at
//! runtime per filesystem pair.
//!
//! Execution layers consume this through three calls:
//!
//! - [`Stager::stage_value`] — rewrite a CWL input object so every
//!   `class: File` points at a workdir materialization, with `checksum`
//!   and `size` attached from the index;
//! - [`Stager::register_output`] — bind a collected output into the
//!   store (a CAS handle) instead of copying it, so the next step's
//!   stage-in links from the object;
//! - [`index::global`] — the process-wide digest index that also serves
//!   `parsl::File::checksum()` without re-reading data.

pub mod cas;
pub mod digest;
pub mod index;
pub mod stage;

pub use cas::{ContentStore, Ingest};
pub use digest::{Digest, Xxh64};
pub use stage::{Method, StageMode, StageStats, Staged, Stager};
