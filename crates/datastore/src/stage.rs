//! Zero-copy staging: materialize CAS objects into task workdirs.
//!
//! The materialization ladder, per file:
//!
//! 1. **hardlink** — same filesystem, zero bytes, one dirent;
//! 2. **reflink** — `FICLONE` clone for CoW filesystems (btrfs, XFS)
//!    when hardlinks are refused (e.g. sealing policy, quota);
//! 3. **copy** — the portable fallback, and the forced behavior of
//!    `StageMode::Copy` (the measured baseline).
//!
//! `StageMode::Auto` remembers which rung worked per
//! `(source device, destination device)` pair, so a 1000-way scatter
//! probes the filesystem once and links 999 more times without retrying
//! failed rungs.

use crate::cas::{ContentStore, Ingest};
use crate::digest::Digest;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use yamlite::Value;

/// How staging materializes files in workdirs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StageMode {
    /// Always byte-copy (baseline; what cwltool-style staging does).
    Copy,
    /// Always attempt the hardlink -> reflink -> copy ladder.
    Link,
    /// The ladder, with the winning rung cached per filesystem pair.
    #[default]
    Auto,
}

impl StageMode {
    pub fn parse(s: &str) -> Option<StageMode> {
        match s {
            "copy" => Some(StageMode::Copy),
            "link" => Some(StageMode::Link),
            "auto" => Some(StageMode::Auto),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            StageMode::Copy => "copy",
            StageMode::Link => "link",
            StageMode::Auto => "auto",
        }
    }
}

/// Which rung of the ladder materialized a file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    /// Nothing to do: destination already held the right content (or the
    /// "destination" was the source itself).
    Hit,
    Hardlink,
    Reflink,
    Copy,
}

/// Counters for the observability layer. Snapshot via [`Stager::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Digest or destination served from the index — no bytes read.
    pub hits: u64,
    /// Files materialized by hardlink or reflink.
    pub links: u64,
    /// Files materialized by byte copy.
    pub copies: u64,
    /// Bytes a copying stager would have written that links avoided.
    pub bytes_saved: u64,
    /// Bytes actually copied.
    pub bytes_copied: u64,
}

/// A staging session bound to one store and one mode.
pub struct Stager {
    store: Arc<ContentStore>,
    mode: StageMode,
    /// (src dev, dest dev) -> first ladder rung worth attempting.
    probed: Mutex<HashMap<(u64, u64), Method>>,
    hits: AtomicU64,
    links: AtomicU64,
    copies: AtomicU64,
    bytes_saved: AtomicU64,
    bytes_copied: AtomicU64,
}

/// A staged file: where it landed and what it contains.
#[derive(Clone, Debug)]
pub struct Staged {
    pub path: PathBuf,
    pub digest: Digest,
    pub method: Method,
}

impl Stager {
    pub fn new(store: Arc<ContentStore>, mode: StageMode) -> Arc<Stager> {
        Arc::new(Stager {
            store,
            mode,
            probed: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            links: AtomicU64::new(0),
            copies: AtomicU64::new(0),
            bytes_saved: AtomicU64::new(0),
            bytes_copied: AtomicU64::new(0),
        })
    }

    pub fn mode(&self) -> StageMode {
        self.mode
    }

    pub fn store(&self) -> &Arc<ContentStore> {
        &self.store
    }

    pub fn stats(&self) -> StageStats {
        StageStats {
            hits: self.hits.load(Ordering::Relaxed),
            links: self.links.load(Ordering::Relaxed),
            copies: self.copies.load(Ordering::Relaxed),
            bytes_saved: self.bytes_saved.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
        }
    }

    /// Register a run-produced output with the store (output collection
    /// binds a CAS handle instead of copying). Returns its digest.
    pub fn register_output(&self, path: &Path) -> std::io::Result<Digest> {
        let (digest, _, how) = self.store.ingest(path)?;
        if how == Ingest::Cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(digest)
    }

    /// Stage `src` into `dest`. The source is ingested (index-cached), and
    /// the destination materialized per the mode.
    pub fn stage_file(&self, src: &Path, dest: &Path) -> std::io::Result<Staged> {
        let (digest, obj, how) = self.store.ingest(src)?;
        if how == Ingest::Cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        self.stage_prepared(src, dest, digest, &obj)
    }

    /// Materialize `dest` from an already-ingested source.
    fn stage_prepared(
        &self,
        src: &Path,
        dest: &Path,
        digest: Digest,
        obj: &Path,
    ) -> std::io::Result<Staged> {
        // Staging a file onto itself (input already lives in the workdir)
        // is a no-op, not a copy.
        if let (Ok(s), Ok(d)) = (src.canonicalize(), dest_canonical(dest)) {
            if s == d {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Staged {
                    path: dest.to_path_buf(),
                    digest,
                    method: Method::Hit,
                });
            }
        }
        if dest.exists() {
            if crate::index::global().lookup_current(dest) == Some(digest) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Staged {
                    path: dest.to_path_buf(),
                    digest,
                    method: Method::Hit,
                });
            }
            std::fs::remove_file(dest)?;
        }
        if let Some(parent) = dest.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Prefer the materialized object as link anchor; it survives even
        // if the original source is later edited in place.
        let anchor = if obj.exists() { obj } else { src };
        let method = self.materialize(anchor, dest, digest.len)?;
        if let Ok(meta) = std::fs::metadata(dest) {
            crate::index::global().record(&dest.canonicalize()?, &meta, digest);
        }
        Ok(Staged {
            path: dest.to_path_buf(),
            digest,
            method,
        })
    }

    fn materialize(&self, src: &Path, dest: &Path, len: u64) -> std::io::Result<Method> {
        if self.mode == StageMode::Copy {
            std::fs::copy(src, dest)?;
            self.copies.fetch_add(1, Ordering::Relaxed);
            self.bytes_copied.fetch_add(len, Ordering::Relaxed);
            return Ok(Method::Copy);
        }
        let start = if self.mode == StageMode::Auto {
            self.probed
                .lock()
                .get(&dev_pair(src, dest))
                .copied()
                .unwrap_or(Method::Hardlink)
        } else {
            Method::Hardlink
        };
        let method = self.climb(start, src, dest)?;
        if self.mode == StageMode::Auto {
            self.probed.lock().insert(dev_pair(src, dest), method);
        }
        match method {
            Method::Copy => {
                self.copies.fetch_add(1, Ordering::Relaxed);
                self.bytes_copied.fetch_add(len, Ordering::Relaxed);
            }
            _ => {
                self.links.fetch_add(1, Ordering::Relaxed);
                self.bytes_saved.fetch_add(len, Ordering::Relaxed);
            }
        }
        Ok(method)
    }

    fn climb(&self, start: Method, src: &Path, dest: &Path) -> std::io::Result<Method> {
        if start == Method::Hardlink {
            match std::fs::hard_link(src, dest) {
                Ok(()) => return Ok(Method::Hardlink),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    return Err(e);
                }
                Err(_) => {}
            }
        }
        if matches!(start, Method::Hardlink | Method::Reflink) && reflink(src, dest).is_ok() {
            return Ok(Method::Reflink);
        }
        std::fs::copy(src, dest)?;
        Ok(Method::Copy)
    }

    /// Stage every `class: File` in a CWL value into `dir`, returning the
    /// value rewritten to the staged paths with `checksum` and `size`
    /// attached. Basename collisions with differing content get a
    /// disambiguating `_<n>` suffix on the name root.
    pub fn stage_value(&self, value: &Value, dir: &Path) -> std::io::Result<Value> {
        let mut claimed: HashMap<String, Digest> = HashMap::new();
        self.stage_walk(value, dir, &mut claimed)
    }

    fn stage_walk(
        &self,
        value: &Value,
        dir: &Path,
        claimed: &mut HashMap<String, Digest>,
    ) -> std::io::Result<Value> {
        match value {
            Value::Map(map) => {
                if map.get("class").and_then(Value::as_str) == Some("File") {
                    if let Some(src) = map.get("path").and_then(Value::as_str) {
                        return self.stage_file_value(map, Path::new(src), dir, claimed);
                    }
                }
                let mut out = yamlite::Map::new();
                for (k, v) in map.iter() {
                    out.insert(k, self.stage_walk(v, dir, claimed)?);
                }
                Ok(Value::Map(out))
            }
            Value::Seq(items) => {
                let mut out = Vec::with_capacity(items.len());
                for v in items {
                    out.push(self.stage_walk(v, dir, claimed)?);
                }
                Ok(Value::Seq(out))
            }
            other => Ok(other.clone()),
        }
    }

    fn stage_file_value(
        &self,
        map: &yamlite::Map,
        src: &Path,
        dir: &Path,
        claimed: &mut HashMap<String, Digest>,
    ) -> std::io::Result<Value> {
        let basename = src
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "input".to_string());
        // Ingest up front so collision handling can compare digests.
        let (digest, obj, how) = self.store.ingest(src)?;
        if how == Ingest::Cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        let name = match claimed.get(&basename) {
            Some(prior) if *prior != digest => {
                let mut n = 1;
                loop {
                    let candidate = disambiguate(&basename, n);
                    match claimed.get(&candidate) {
                        Some(p) if *p != digest => n += 1,
                        _ => break candidate,
                    }
                }
            }
            _ => basename,
        };
        claimed.insert(name.clone(), digest);
        let staged = self.stage_prepared(src, &dir.join(&name), digest, &obj)?;
        let mut out = map.clone();
        out.insert("path", staged.path.to_string_lossy().into_owned());
        out.insert("basename", name.clone());
        let p = Path::new(&name);
        out.insert(
            "nameroot",
            p.file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default(),
        );
        out.insert(
            "nameext",
            p.extension()
                .map(|e| format!(".{}", e.to_string_lossy()))
                .unwrap_or_default(),
        );
        out.insert("size", digest.len as i64);
        out.insert("checksum", digest.checksum());
        Ok(Value::Map(out))
    }
}

fn disambiguate(basename: &str, n: usize) -> String {
    match basename.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}_{n}.{ext}"),
        _ => format!("{basename}_{n}"),
    }
}

fn dest_canonical(dest: &Path) -> std::io::Result<PathBuf> {
    // The destination usually doesn't exist yet; canonicalize its parent.
    if dest.exists() {
        return dest.canonicalize();
    }
    let parent = dest.parent().unwrap_or(Path::new("."));
    let name = dest.file_name().unwrap_or_default();
    Ok(parent.canonicalize()?.join(name))
}

#[cfg(unix)]
fn dev_of(path: &Path) -> u64 {
    use std::os::unix::fs::MetadataExt;
    std::fs::metadata(path)
        .or_else(|_| std::fs::metadata(path.parent().unwrap_or(Path::new("."))))
        .map(|m| m.dev())
        .unwrap_or(0)
}

#[cfg(not(unix))]
fn dev_of(_path: &Path) -> u64 {
    0
}

fn dev_pair(src: &Path, dest: &Path) -> (u64, u64) {
    (dev_of(src), dev_of(dest))
}

/// Clone `src` into a fresh `dest` via the Linux `FICLONE` ioctl (reflink
/// on btrfs/XFS/bcachefs). Fails cleanly (`Unsupported`/`EOPNOTSUPP`) on
/// filesystems without CoW cloning and on non-Linux targets.
#[cfg(target_os = "linux")]
pub fn reflink(src: &Path, dest: &Path) -> std::io::Result<()> {
    use std::os::unix::io::AsRawFd;
    // From linux/fs.h: #define FICLONE _IOW(0x94, 9, int)
    const FICLONE: u64 = 0x4004_9409;
    extern "C" {
        fn ioctl(fd: i32, request: u64, ...) -> i32;
    }
    let s = std::fs::File::open(src)?;
    let d = std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(dest)?;
    let rc = unsafe { ioctl(d.as_raw_fd(), FICLONE, s.as_raw_fd()) };
    if rc != 0 {
        let err = std::io::Error::last_os_error();
        drop(d);
        let _ = std::fs::remove_file(dest);
        return Err(err);
    }
    Ok(())
}

#[cfg(not(target_os = "linux"))]
pub fn reflink(_src: &Path, _dest: &Path) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "reflink is Linux-only",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ds-stage-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[cfg(unix)]
    fn inode(p: &Path) -> u64 {
        use std::os::unix::fs::MetadataExt;
        std::fs::metadata(p).unwrap().ino()
    }

    #[test]
    fn link_mode_shares_inode_copy_mode_does_not() {
        let dir = scratch("modes");
        let src = dir.join("input.dat");
        std::fs::write(&src, vec![7u8; 4096]).unwrap();
        let store = ContentStore::open(dir.join("cas")).unwrap();

        let linker = Stager::new(store.clone(), StageMode::Link);
        let staged = linker
            .stage_file(&src, &dir.join("job1/input.dat"))
            .unwrap();
        assert!(matches!(staged.method, Method::Hardlink | Method::Reflink));
        #[cfg(unix)]
        if staged.method == Method::Hardlink {
            assert_eq!(inode(&src), inode(&dir.join("job1/input.dat")));
        }
        assert_eq!(linker.stats().links, 1);
        assert_eq!(linker.stats().bytes_saved, 4096);

        let copier = Stager::new(store, StageMode::Copy);
        let staged = copier
            .stage_file(&src, &dir.join("job2/input.dat"))
            .unwrap();
        assert_eq!(staged.method, Method::Copy);
        #[cfg(unix)]
        assert_ne!(inode(&src), inode(&dir.join("job2/input.dat")));
        assert_eq!(copier.stats().copies, 1);
        assert_eq!(copier.stats().bytes_copied, 4096);
        assert_eq!(
            std::fs::read(dir.join("job1/input.dat")).unwrap(),
            std::fs::read(dir.join("job2/input.dat")).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scatter_hashes_once_links_many() {
        let dir = scratch("scatter");
        let src = dir.join("image.img");
        std::fs::write(&src, vec![42u8; 10_000]).unwrap();
        let store = ContentStore::open(dir.join("cas")).unwrap();
        let stager = Stager::new(store.clone(), StageMode::Auto);
        for k in 0..50 {
            stager
                .stage_file(&src, &dir.join(format!("job{k}/image.img")))
                .unwrap();
        }
        let stats = stager.stats();
        assert_eq!(stats.links + stats.copies, 50);
        // Hashed once: 49 of the 50 ingests were index hits.
        assert_eq!(stats.hits, 49);
        assert_eq!(store.ingested_bytes(), 10_000);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restaging_same_content_is_a_hit() {
        let dir = scratch("rehit");
        let src = dir.join("a.txt");
        std::fs::write(&src, b"idempotent").unwrap();
        let store = ContentStore::open(dir.join("cas")).unwrap();
        let stager = Stager::new(store, StageMode::Link);
        let dest = dir.join("job/a.txt");
        stager.stage_file(&src, &dest).unwrap();
        let again = stager.stage_file(&src, &dest).unwrap();
        assert_eq!(again.method, Method::Hit);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stage_onto_self_is_noop() {
        let dir = scratch("self");
        let src = dir.join("in_workdir.txt");
        std::fs::write(&src, b"already here").unwrap();
        let store = ContentStore::open(dir.join("cas")).unwrap();
        let stager = Stager::new(store, StageMode::Copy);
        let staged = stager.stage_file(&src, &src).unwrap();
        assert_eq!(staged.method, Method::Hit);
        assert_eq!(std::fs::read(&src).unwrap(), b"already here");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stage_value_rewrites_files_and_attaches_checksums() {
        let dir = scratch("value");
        let f1 = dir.join("one.txt");
        let f2 = dir.join("two.txt");
        std::fs::write(&f1, b"first").unwrap();
        std::fs::write(&f2, b"second").unwrap();
        let yaml = format!(
            "{{img: {{class: File, path: {}}}, batch: [{{class: File, path: {}}}], n: 3}}",
            f1.display(),
            f2.display()
        );
        let value = yamlite::parse_str(&yaml).unwrap();
        let store = ContentStore::open(dir.join("cas")).unwrap();
        let stager = Stager::new(store, StageMode::Link);
        let jobdir = dir.join("job");
        std::fs::create_dir_all(&jobdir).unwrap();
        let staged = stager.stage_value(&value, &jobdir).unwrap();

        let img = &staged["img"];
        assert_eq!(
            img["path"].as_str(),
            Some(jobdir.join("one.txt").to_string_lossy().as_ref())
        );
        assert_eq!(img["size"].as_int(), Some(5));
        assert_eq!(
            img["checksum"].as_str(),
            Some(Digest::of_bytes(b"first").checksum().as_str())
        );
        assert_eq!(staged["batch"][0]["basename"].as_str(), Some("two.txt"));
        assert_eq!(staged["n"].as_int(), Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn basename_collisions_disambiguate() {
        let dir = scratch("collide");
        std::fs::create_dir_all(dir.join("a")).unwrap();
        std::fs::create_dir_all(dir.join("b")).unwrap();
        let f1 = dir.join("a/data.txt");
        let f2 = dir.join("b/data.txt");
        std::fs::write(&f1, b"alpha").unwrap();
        std::fs::write(&f2, b"beta").unwrap();
        let yaml = format!(
            "[{{class: File, path: {}}}, {{class: File, path: {}}}]",
            f1.display(),
            f2.display()
        );
        let value = yamlite::parse_str(&yaml).unwrap();
        let store = ContentStore::open(dir.join("cas")).unwrap();
        let stager = Stager::new(store, StageMode::Link);
        let jobdir = dir.join("job");
        std::fs::create_dir_all(&jobdir).unwrap();
        let staged = stager.stage_value(&value, &jobdir).unwrap();
        assert_eq!(staged[0]["basename"].as_str(), Some("data.txt"));
        assert_eq!(staged[1]["basename"].as_str(), Some("data_1.txt"));
        assert_eq!(std::fs::read(jobdir.join("data_1.txt")).unwrap(), b"beta");
        std::fs::remove_dir_all(&dir).ok();
    }
}
