//! The content-addressed object store.
//!
//! Layout on disk (`root` is per-run by default, shareable via config):
//!
//! ```text
//! <root>/objects/<2-hex shard>/<16-hex xxh64>-<len>
//! ```
//!
//! Objects are immutable once present. Ingestion prefers a **hardlink**
//! from the source (zero bytes moved); when the source sits on another
//! filesystem the bytes are copied to a unique temp name and atomically
//! renamed in. Copy-created objects are **sealed** read-only (0444) —
//! they are store-private inodes, so sealing cannot affect anything else.
//! A hardlink-ingested object shares the source's inode, whose
//! permissions belong to the caller; sealing it would chmod user inputs
//! and freshly collected outputs in place, so those keep their mode (the
//! store never opens an object for writing either way).
//!
//! Two runs may share one store directory: `hard_link` returning
//! `AlreadyExists` is dedupe, not an error, and the copy path goes
//! through a per-process temp name plus `rename`, which on POSIX
//! atomically replaces an identical object if both writers race.

use crate::digest::Digest;
use crate::index::{self, PathIndex};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How an object landed in the store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ingest {
    /// Digest was served from the path index; no bytes were even read.
    Cached,
    /// Object already present under this digest (another path, or another
    /// run sharing the store).
    Deduped,
    /// Hardlinked from the source: zero bytes moved.
    Linked,
    /// Byte copy (cross-device source, or hardlinks unsupported).
    Copied,
}

/// What one ingest produced: digest, object path, and how it got there.
pub type IngestResult = std::io::Result<(Digest, PathBuf, Ingest)>;

/// A content-addressed store rooted at one directory.
pub struct ContentStore {
    root: PathBuf,
    /// digest -> materialized object path, sharded to keep scatter-wide
    /// ingest contention off a single lock.
    objects: [Mutex<HashMap<Digest, PathBuf>>; index::STRIPES],
    ingested_bytes: AtomicU64,
}

impl ContentStore {
    /// Open (creating if needed) a store at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Arc<ContentStore>> {
        let root = root.into();
        std::fs::create_dir_all(root.join("objects"))?;
        Ok(Arc::new(ContentStore {
            root,
            objects: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            ingested_bytes: AtomicU64::new(0),
        }))
    }

    /// Store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Total bytes hashed into the store by this process (cache misses
    /// only — a scatter of 1000 identical inputs counts its bytes once).
    pub fn ingested_bytes(&self) -> u64 {
        self.ingested_bytes.load(Ordering::Relaxed)
    }

    /// Where an object with this digest lives (whether or not present).
    pub fn object_path(&self, d: &Digest) -> PathBuf {
        let shard = (d.hash >> 56) as u8;
        self.root
            .join("objects")
            .join(format!("{shard:02x}"))
            .join(format!("{:016x}-{}", d.hash, d.len))
    }

    /// The materialized object for a digest, if this process ingested it.
    pub fn lookup(&self, d: &Digest) -> Option<PathBuf> {
        let stripe = &self.objects[(d.hash as usize) & (index::STRIPES - 1)];
        stripe.lock().get(d).cloned()
    }

    /// Ingest a file: digest it (once per (path, len, mtime) — repeat
    /// ingests are index hits) and materialize it in the store. Returns
    /// the digest, the object path, and how the work was (not) done.
    pub fn ingest(&self, src: &Path) -> std::io::Result<(Digest, PathBuf, Ingest)> {
        let canonical = src.canonicalize()?;
        let meta = std::fs::metadata(&canonical)?;
        if let Some(d) = index::global().lookup(&canonical, &meta) {
            if let Some(obj) = self.lookup(&d) {
                return Ok((d, obj, Ingest::Cached));
            }
            // Known digest, but the object is not in *this* store yet
            // (e.g. a fresh per-run store): fall through to materialize.
            let (obj, how) = self.materialize(&canonical, &d)?;
            return Ok((d, obj, how));
        }
        let d = Digest::of_file(&canonical)?;
        self.ingested_bytes.fetch_add(d.len, Ordering::Relaxed);
        index::global().record(&canonical, &meta, d);
        let (obj, how) = self.materialize(&canonical, &d)?;
        Ok((d, obj, how))
    }

    /// Digest many files on a bounded worker pool (root-input prestage).
    /// Result order matches input order; per-file errors are per-slot.
    pub fn ingest_parallel(
        self: &Arc<Self>,
        paths: &[PathBuf],
        workers: usize,
    ) -> Vec<IngestResult> {
        let workers = workers.max(1).min(paths.len().max(1));
        let next = AtomicU64::new(0);
        let results: Vec<Mutex<Option<IngestResult>>> =
            (0..paths.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if i >= paths.len() {
                        break;
                    }
                    *results[i].lock() = Some(self.ingest(&paths[i]));
                });
            }
        });
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }

    fn materialize(&self, src: &Path, d: &Digest) -> std::io::Result<(PathBuf, Ingest)> {
        let obj = self.object_path(d);
        {
            let stripe = &self.objects[(d.hash as usize) & (index::STRIPES - 1)];
            let mut map = stripe.lock();
            if map.contains_key(d) {
                return Ok((obj, Ingest::Deduped));
            }
            if obj.exists() {
                map.insert(*d, obj.clone());
                return Ok((obj, Ingest::Deduped));
            }
        }
        if let Some(parent) = obj.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let how = match std::fs::hard_link(src, &obj) {
            Ok(()) => Ingest::Linked,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ingest::Deduped,
            Err(_) => {
                // Cross-device (or a filesystem without hardlinks): copy
                // through a unique temp name, seal, and rename into place.
                let tmp = obj.with_extension(format!("tmp.{}", std::process::id()));
                std::fs::copy(src, &tmp)?;
                seal(&tmp)?;
                std::fs::rename(&tmp, &obj)?;
                Ingest::Copied
            }
        };
        let stripe = &self.objects[(d.hash as usize) & (index::STRIPES - 1)];
        stripe.lock().insert(*d, obj.clone());
        Ok((obj, how))
    }
}

/// Seal a store-private file read-only. No-op off Unix.
pub fn seal(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        let mut perms = std::fs::metadata(path)?.permissions();
        perms.set_mode(0o444);
        std::fs::set_permissions(path, perms)?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Convenience: the process-global path index (digests by canonical path).
pub fn path_index() -> &'static PathIndex {
    index::global()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ds-cas-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ingest_links_then_caches() {
        let dir = scratch("basic");
        let src = dir.join("input.txt");
        std::fs::write(&src, b"forty-two").unwrap();
        let store = ContentStore::open(dir.join("cas")).unwrap();

        let (d1, obj, how) = store.ingest(&src).unwrap();
        assert_eq!(how, Ingest::Linked);
        assert!(obj.exists());
        assert_eq!(d1, Digest::of_bytes(b"forty-two"));

        let (d2, _, how2) = store.ingest(&src).unwrap();
        assert_eq!(d2, d1);
        assert_eq!(how2, Ingest::Cached);
        // Bytes were hashed exactly once.
        assert_eq!(store.ingested_bytes(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_content_dedupes_across_paths() {
        let dir = scratch("dedupe");
        let a = dir.join("a.bin");
        let b = dir.join("b.bin");
        std::fs::write(&a, b"same bytes").unwrap();
        std::fs::write(&b, b"same bytes").unwrap();
        let store = ContentStore::open(dir.join("cas")).unwrap();
        let (da, obj_a, _) = store.ingest(&a).unwrap();
        let (db, obj_b, how_b) = store.ingest(&b).unwrap();
        assert_eq!(da, db);
        assert_eq!(obj_a, obj_b);
        assert_eq!(how_b, Ingest::Deduped);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn modified_file_gets_new_digest() {
        let dir = scratch("modify");
        let src = dir.join("mut.txt");
        std::fs::write(&src, b"v1").unwrap();
        let store = ContentStore::open(dir.join("cas")).unwrap();
        let (d1, _, _) = store.ingest(&src).unwrap();
        // Force a different mtime second (coarse-timestamp filesystems).
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&src, b"v2 longer").unwrap();
        let (d2, _, _) = store.ingest(&src).unwrap();
        assert_ne!(d1, d2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_ingest_hashes_each_file_once() {
        let dir = scratch("par");
        let paths: Vec<PathBuf> = (0..32)
            .map(|i| {
                let p = dir.join(format!("f{i}.bin"));
                std::fs::write(&p, vec![(i % 7) as u8; 100]).unwrap();
                p
            })
            .collect();
        let store = ContentStore::open(dir.join("cas")).unwrap();
        let results = store.ingest_parallel(&paths, 8);
        assert_eq!(results.len(), 32);
        for r in &results {
            assert!(r.is_ok());
        }
        // 7 distinct contents -> 7 objects on disk.
        let mut objects = 0;
        for shard in std::fs::read_dir(store.root().join("objects")).unwrap() {
            objects += std::fs::read_dir(shard.unwrap().path()).unwrap().count();
        }
        assert_eq!(objects, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn two_stores_share_one_directory() {
        let dir = scratch("shared");
        let src = dir.join("shared.txt");
        std::fs::write(&src, b"cohabitation").unwrap();
        let a = ContentStore::open(dir.join("cas")).unwrap();
        let b = ContentStore::open(dir.join("cas")).unwrap();
        let (da, obj_a, _) = a.ingest(&src).unwrap();
        let (db, obj_b, how_b) = b.ingest(&src).unwrap();
        assert_eq!(da, db);
        assert_eq!(obj_a, obj_b);
        // Store b sees the object a materialized (index hit gives Cached
        // or Deduped depending on interleaving; never a second Linked).
        assert_ne!(how_b, Ingest::Linked);
        std::fs::remove_dir_all(&dir).ok();
    }
}
