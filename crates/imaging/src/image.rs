//! The in-memory RGB image type.

/// An 8-bit RGB pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rgb {
    pub r: u8,
    pub g: u8,
    pub b: u8,
}

impl Rgb {
    /// Build a pixel.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Self { r, g, b }
    }

    /// Perceptual luma (BT.601), used by tests and `imgtool info`.
    pub fn luma(&self) -> f32 {
        0.299 * self.r as f32 + 0.587 * self.g as f32 + 0.114 * self.b as f32
    }
}

/// A row-major 8-bit RGB raster image.
#[derive(Clone, PartialEq, Eq)]
pub struct Image {
    width: u32,
    height: u32,
    /// `width * height * 3` bytes, row-major, RGB interleaved.
    data: Vec<u8>,
}

impl std::fmt::Debug for Image {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Image({}x{})", self.width, self.height)
    }
}

impl Image {
    /// A black image of the given dimensions.
    ///
    /// # Panics
    /// Panics when either dimension is zero or the pixel count would
    /// overflow addressable memory.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        let len = (width as usize)
            .checked_mul(height as usize)
            .and_then(|n| n.checked_mul(3))
            .expect("image too large");
        Self {
            width,
            height,
            data: vec![0; len],
        }
    }

    /// Wrap raw RGB bytes (must be exactly `width * height * 3` long).
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Result<Self, String> {
        if width == 0 || height == 0 {
            return Err("image dimensions must be non-zero".to_string());
        }
        let expect = (width as usize) * (height as usize) * 3;
        if data.len() != expect {
            return Err(format!(
                "raw buffer is {} bytes, expected {expect} for {width}x{height}",
                data.len()
            ));
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw RGB bytes.
    pub fn raw(&self) -> &[u8] {
        &self.data
    }

    #[inline]
    fn offset(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        ((y as usize) * (self.width as usize) + (x as usize)) * 3
    }

    /// Read the pixel at `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        let o = self.offset(x, y);
        Rgb::new(self.data[o], self.data[o + 1], self.data[o + 2])
    }

    /// Write the pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, p: Rgb) {
        let o = self.offset(x, y);
        self.data[o] = p.r;
        self.data[o + 1] = p.g;
        self.data[o + 2] = p.b;
    }

    /// Clamped pixel read: coordinates outside the image snap to the edge
    /// (the boundary convention the blur kernel uses).
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> Rgb {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.get(cx, cy)
    }

    /// Mean channel values (used by `imgtool info` and tests).
    pub fn mean_rgb(&self) -> (f64, f64, f64) {
        let mut sums = [0u64; 3];
        for chunk in self.data.chunks_exact(3) {
            sums[0] += chunk[0] as u64;
            sums[1] += chunk[1] as u64;
            sums[2] += chunk[2] as u64;
        }
        let n = (self.width as f64) * (self.height as f64);
        (sums[0] as f64 / n, sums[1] as f64 / n, sums[2] as f64 / n)
    }

    /// FNV-1a hash of dimensions and pixel data — a cheap content
    /// fingerprint for integrity checks and output comparison.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        for b in self
            .width
            .to_le_bytes()
            .into_iter()
            .chain(self.height.to_le_bytes())
        {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
        for &b in &self.data {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = Image::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.get(3, 2), Rgb::new(0, 0, 0));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = Image::new(5, 5);
        img.set(2, 3, Rgb::new(10, 20, 30));
        assert_eq!(img.get(2, 3), Rgb::new(10, 20, 30));
        assert_eq!(img.get(3, 2), Rgb::new(0, 0, 0));
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(Image::from_raw(2, 2, vec![0; 12]).is_ok());
        assert!(Image::from_raw(2, 2, vec![0; 11]).is_err());
        assert!(Image::from_raw(0, 2, vec![]).is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimensions_panic() {
        let _ = Image::new(0, 5);
    }

    #[test]
    fn clamped_reads() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, Rgb::new(255, 0, 0));
        assert_eq!(img.get_clamped(-5, -5), Rgb::new(255, 0, 0));
        assert_eq!(img.get_clamped(0, 0), Rgb::new(255, 0, 0));
        assert_eq!(img.get_clamped(10, 0), img.get(1, 0));
    }

    #[test]
    fn mean_rgb() {
        let mut img = Image::new(2, 1);
        img.set(0, 0, Rgb::new(0, 0, 0));
        img.set(1, 0, Rgb::new(255, 100, 50));
        let (r, g, b) = img.mean_rgb();
        assert_eq!(r, 127.5);
        assert_eq!(g, 50.0);
        assert_eq!(b, 25.0);
    }

    #[test]
    fn fingerprint_sensitivity() {
        let a = Image::new(4, 4);
        let mut b = Image::new(4, 4);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.set(1, 1, Rgb::new(1, 0, 0));
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same bytes, different shape → different fingerprint.
        let c = Image::new(2, 8);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn luma() {
        assert_eq!(Rgb::new(255, 255, 255).luma(), 255.0);
        assert_eq!(Rgb::new(0, 0, 0).luma(), 0.0);
    }
}
