//! `imaging` — the raster-image substrate behind the paper's evaluation
//! workload.
//!
//! The paper's §IV/§VI workflow resizes, sepia-filters, and blurs PNG images.
//! PNG codecs are out of scope for a from-scratch reproduction, so this crate
//! provides the closest synthetic equivalent that exercises the same code
//! path: a real in-memory RGB image type, real pixel kernels (bilinear
//! resize, sepia matrix, separable box blur), a simple uncompressed on-disk
//! format (`.rimg`) with integrity checking, deterministic synthetic image
//! generators, and an `imgtool` command-line binary so CWL
//! `CommandLineTool`s can invoke the operations as genuine subprocesses.
//!
//! The per-image compute is real work — the scaling curves in the Fig. 1
//! reproduction come from actually crunching pixels, not from sleeps.

pub mod codec;
pub mod gen;
pub mod image;
pub mod ops;

pub use codec::{read_rimg, write_rimg, CodecError};
pub use gen::{checkerboard, gradient, noise};
pub use image::{Image, Rgb};
pub use ops::{box_blur, gaussian_blur_approx, resize_bilinear, sepia};
