//! Pixel kernels: bilinear resize, sepia tone, separable box blur, and a
//! 3-pass box approximation of Gaussian blur. These are the three stages of
//! the paper's image-processing workflow (Listing 3).

use crate::image::{Image, Rgb};

/// Resize with bilinear interpolation to `new_w` × `new_h`.
pub fn resize_bilinear(src: &Image, new_w: u32, new_h: u32) -> Image {
    assert!(new_w > 0 && new_h > 0, "target dimensions must be non-zero");
    let mut dst = Image::new(new_w, new_h);
    let sx = src.width() as f32 / new_w as f32;
    let sy = src.height() as f32 / new_h as f32;
    for y in 0..new_h {
        // Sample at pixel centers to keep edges stable.
        let fy = ((y as f32 + 0.5) * sy - 0.5).max(0.0);
        let y0 = fy.floor() as u32;
        let y1 = (y0 + 1).min(src.height() - 1);
        let wy = fy - y0 as f32;
        for x in 0..new_w {
            let fx = ((x as f32 + 0.5) * sx - 0.5).max(0.0);
            let x0 = fx.floor() as u32;
            let x1 = (x0 + 1).min(src.width() - 1);
            let wx = fx - x0 as f32;

            let p00 = src.get(x0, y0);
            let p10 = src.get(x1, y0);
            let p01 = src.get(x0, y1);
            let p11 = src.get(x1, y1);
            let lerp = |a: u8, b: u8, t: f32| a as f32 + (b as f32 - a as f32) * t;
            let ch = |c: fn(Rgb) -> u8| {
                let top = lerp(c(p00), c(p10), wx);
                let bot = lerp(c(p01), c(p11), wx);
                (top + (bot - top) * wy).round().clamp(0.0, 255.0) as u8
            };
            dst.set(x, y, Rgb::new(ch(|p| p.r), ch(|p| p.g), ch(|p| p.b)));
        }
    }
    dst
}

/// Apply the classic sepia tone matrix.
pub fn sepia(src: &Image) -> Image {
    let mut dst = Image::new(src.width(), src.height());
    for y in 0..src.height() {
        for x in 0..src.width() {
            let p = src.get(x, y);
            let (r, g, b) = (p.r as f32, p.g as f32, p.b as f32);
            let nr = (0.393 * r + 0.769 * g + 0.189 * b).min(255.0) as u8;
            let ng = (0.349 * r + 0.686 * g + 0.168 * b).min(255.0) as u8;
            let nb = (0.272 * r + 0.534 * g + 0.131 * b).min(255.0) as u8;
            dst.set(x, y, Rgb::new(nr, ng, nb));
        }
    }
    dst
}

/// Separable box blur with clamp-to-edge boundary handling.
/// `radius == 0` returns a copy.
pub fn box_blur(src: &Image, radius: u32) -> Image {
    if radius == 0 {
        return src.clone();
    }
    let r = radius as i64;
    let norm = (2 * r + 1) as u32;
    let (w, h) = (src.width(), src.height());

    // Horizontal pass with a sliding window per row: O(w) per row.
    let mut mid = Image::new(w, h);
    for y in 0..h {
        let mut sums = [0u32; 3];
        for dx in -r..=r {
            let p = src.get_clamped(dx, y as i64);
            sums[0] += p.r as u32;
            sums[1] += p.g as u32;
            sums[2] += p.b as u32;
        }
        for x in 0..w {
            mid.set(
                x,
                y,
                Rgb::new(
                    (sums[0] / norm) as u8,
                    (sums[1] / norm) as u8,
                    (sums[2] / norm) as u8,
                ),
            );
            let out = src.get_clamped(x as i64 - r, y as i64);
            let inn = src.get_clamped(x as i64 + r + 1, y as i64);
            sums[0] = sums[0] + inn.r as u32 - out.r as u32;
            sums[1] = sums[1] + inn.g as u32 - out.g as u32;
            sums[2] = sums[2] + inn.b as u32 - out.b as u32;
        }
    }

    // Vertical pass.
    let mut dst = Image::new(w, h);
    for x in 0..w {
        let mut sums = [0u32; 3];
        for dy in -r..=r {
            let p = mid.get_clamped(x as i64, dy);
            sums[0] += p.r as u32;
            sums[1] += p.g as u32;
            sums[2] += p.b as u32;
        }
        for y in 0..h {
            dst.set(
                x,
                y,
                Rgb::new(
                    (sums[0] / norm) as u8,
                    (sums[1] / norm) as u8,
                    (sums[2] / norm) as u8,
                ),
            );
            let out = mid.get_clamped(x as i64, y as i64 - r);
            let inn = mid.get_clamped(x as i64, y as i64 + r + 1);
            sums[0] = sums[0] + inn.r as u32 - out.r as u32;
            sums[1] = sums[1] + inn.g as u32 - out.g as u32;
            sums[2] = sums[2] + inn.b as u32 - out.b as u32;
        }
    }
    dst
}

/// Gaussian blur approximated by three successive box blurs — the standard
/// fast approximation; visually indistinguishable for workflow purposes.
pub fn gaussian_blur_approx(src: &Image, radius: u32) -> Image {
    if radius == 0 {
        return src.clone();
    }
    let pass = (radius / 2).max(1);
    let a = box_blur(src, pass);
    let b = box_blur(&a, pass);
    box_blur(&b, pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{checkerboard, gradient};

    #[test]
    fn resize_identity_dimensions() {
        let img = gradient(16, 12, 7);
        let out = resize_bilinear(&img, 16, 12);
        assert_eq!(out.width(), 16);
        assert_eq!(out.height(), 12);
        // Identity resize at pixel centers reproduces the image.
        assert_eq!(out, img);
    }

    #[test]
    fn resize_changes_dimensions() {
        let img = gradient(32, 32, 1);
        let out = resize_bilinear(&img, 8, 16);
        assert_eq!((out.width(), out.height()), (8, 16));
    }

    #[test]
    fn resize_uniform_image_stays_uniform() {
        let mut img = Image::new(10, 10);
        for y in 0..10 {
            for x in 0..10 {
                img.set(x, y, Rgb::new(90, 120, 200));
            }
        }
        let out = resize_bilinear(&img, 23, 7);
        for y in 0..7 {
            for x in 0..23 {
                assert_eq!(out.get(x, y), Rgb::new(90, 120, 200));
            }
        }
    }

    #[test]
    fn sepia_known_values() {
        let mut img = Image::new(1, 1);
        img.set(0, 0, Rgb::new(100, 100, 100));
        let out = sepia(&img);
        // 100 * (0.393+0.769+0.189) = 135.1 etc.
        assert_eq!(out.get(0, 0), Rgb::new(135, 120, 93));
    }

    #[test]
    fn sepia_saturates() {
        let mut img = Image::new(1, 1);
        img.set(0, 0, Rgb::new(255, 255, 255));
        let out = sepia(&img);
        assert_eq!(out.get(0, 0).r, 255);
    }

    #[test]
    fn blur_zero_radius_is_identity() {
        let img = checkerboard(8, 8, 2);
        assert_eq!(box_blur(&img, 0), img);
        assert_eq!(gaussian_blur_approx(&img, 0), img);
    }

    #[test]
    fn blur_preserves_uniform_regions() {
        let mut img = Image::new(9, 9);
        for y in 0..9 {
            for x in 0..9 {
                img.set(x, y, Rgb::new(40, 50, 60));
            }
        }
        let out = box_blur(&img, 3);
        assert_eq!(out.get(4, 4), Rgb::new(40, 50, 60));
        assert_eq!(out.get(0, 0), Rgb::new(40, 50, 60)); // edge clamping
    }

    #[test]
    fn blur_reduces_contrast() {
        let img = checkerboard(16, 16, 1);
        let out = box_blur(&img, 2);
        // A blurred checkerboard has interior pixels pulled toward the mean.
        let p = out.get(8, 8);
        assert!(p.r > 30 && p.r < 225, "blur did not mix: {p:?}");
        // Mean brightness is approximately preserved.
        let (m_in, _, _) = img.mean_rgb();
        let (m_out, _, _) = out.mean_rgb();
        assert!((m_in - m_out).abs() < 8.0, "in={m_in} out={m_out}");
    }

    #[test]
    fn blur_matches_naive_reference() {
        // Sliding-window blur must equal the O(r) naive convolution.
        let img = gradient(7, 5, 3);
        let r = 2u32;
        let fast = box_blur(&img, r);
        for y in 0..5i64 {
            for x in 0..7i64 {
                let mut sums = [0u32; 3];
                for dy in -(r as i64)..=r as i64 {
                    for dx in -(r as i64)..=r as i64 {
                        // Reference: horizontal clamp then vertical clamp,
                        // matching the separable implementation.
                        let p = {
                            let px = img.get_clamped(x + dx, y);
                            let _ = px;
                            img.get_clamped((x + dx).clamp(0, 6), (y + dy).clamp(0, 4))
                        };
                        sums[0] += p.r as u32;
                        sums[1] += p.g as u32;
                        sums[2] += p.b as u32;
                    }
                }
                let n = (2 * r + 1) * (2 * r + 1);
                let got = fast.get(x as u32, y as u32);
                // Integer division in two passes loses at most 1 per pass.
                assert!(
                    (got.r as i32 - (sums[0] / n) as i32).abs() <= 2,
                    "at ({x},{y})"
                );
                assert!((got.g as i32 - (sums[1] / n) as i32).abs() <= 2);
                assert!((got.b as i32 - (sums[2] / n) as i32).abs() <= 2);
            }
        }
    }

    #[test]
    fn pipeline_resize_sepia_blur() {
        // The full paper workflow over one synthetic image.
        let img = gradient(64, 64, 42);
        let resized = resize_bilinear(&img, 32, 32);
        let filtered = sepia(&resized);
        let blurred = gaussian_blur_approx(&filtered, 1);
        assert_eq!((blurred.width(), blurred.height()), (32, 32));
        // Sepia pushes red above blue on average; blur preserves that.
        let (r, _, b) = blurred.mean_rgb();
        assert!(r > b, "sepia ordering lost: r={r} b={b}");
    }
}
