//! Deterministic synthetic image generators — the workload inputs for the
//! Fig. 1 reproduction (the paper used arbitrary PNGs; any pixel content
//! exercises the same kernels).

use crate::image::{Image, Rgb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-axis color gradient; `seed` rotates the channel phases so different
/// seeds give different (but deterministic) images.
pub fn gradient(width: u32, height: u32, seed: u64) -> Image {
    let mut img = Image::new(width, height);
    let (pr, pg, pb) = (
        (seed % 251) as u32,
        (seed / 251 % 241) as u32,
        (seed / 251 / 241 % 239) as u32,
    );
    for y in 0..height {
        for x in 0..width {
            let r = ((x * 255 / width.max(1)) + pr) % 256;
            let g = ((y * 255 / height.max(1)) + pg) % 256;
            let b = (((x + y) * 255 / (width + height).max(1)) + pb) % 256;
            img.set(x, y, Rgb::new(r as u8, g as u8, b as u8));
        }
    }
    img
}

/// Uniform random noise from a seeded RNG.
pub fn noise(width: u32, height: u32, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut img = Image::new(width, height);
    for y in 0..height {
        for x in 0..width {
            img.set(x, y, Rgb::new(rng.gen(), rng.gen(), rng.gen()));
        }
    }
    img
}

/// A black/white checkerboard with `cell`-pixel squares (high-contrast input
/// for blur tests).
pub fn checkerboard(width: u32, height: u32, cell: u32) -> Image {
    let cell = cell.max(1);
    let mut img = Image::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let on = ((x / cell) + (y / cell)).is_multiple_of(2);
            let v = if on { 255 } else { 0 };
            img.set(x, y, Rgb::new(v, v, v));
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gradient(16, 16, 5), gradient(16, 16, 5));
        assert_eq!(noise(16, 16, 5), noise(16, 16, 5));
        assert_ne!(noise(16, 16, 5), noise(16, 16, 6));
        assert_ne!(gradient(16, 16, 5), gradient(16, 16, 6));
    }

    #[test]
    fn checkerboard_pattern() {
        let img = checkerboard(4, 4, 2);
        assert_eq!(img.get(0, 0), Rgb::new(255, 255, 255));
        assert_eq!(img.get(2, 0), Rgb::new(0, 0, 0));
        assert_eq!(img.get(2, 2), Rgb::new(255, 255, 255));
    }

    #[test]
    fn checkerboard_zero_cell_clamped() {
        let img = checkerboard(4, 4, 0);
        assert_eq!(img.width(), 4);
    }

    #[test]
    fn noise_has_spread() {
        let img = noise(32, 32, 7);
        let (r, g, b) = img.mean_rgb();
        for m in [r, g, b] {
            assert!(
                m > 100.0 && m < 155.0,
                "mean {m} implausible for uniform noise"
            );
        }
    }
}
