//! `imgtool` — the command-line image processor invoked by the CWL
//! `CommandLineTool` definitions in this repository (resize_image.cwl,
//! filter_image.cwl, blur_image.cwl).
//!
//! Subcommands:
//! ```text
//! imgtool gen    <out.rimg> --width W --height H [--seed S] [--kind gradient|noise|checker]
//! imgtool resize <in.rimg> <out.rimg> --size N
//! imgtool sepia  <in.rimg> <out.rimg> [--sepia true|false]
//! imgtool blur   <in.rimg> <out.rimg> --radius R
//! imgtool info   <in.rimg>
//! ```

use imaging::{
    box_blur, checkerboard, gradient, noise, read_rimg, resize_bilinear, sepia, write_rimg,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("imgtool: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Positional arguments plus `--flag value` option pairs.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Split positional arguments from `--flag value` options.
fn split_args(args: &[String]) -> Result<ParsedArgs<'_>, String> {
    let mut pos = Vec::new();
    let mut opts = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("option --{name} requires a value"))?;
            opts.push((name, value.as_str()));
            i += 2;
        } else {
            pos.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((pos, opts))
}

fn opt<'a>(opts: &[(&'a str, &'a str)], name: &str) -> Option<&'a str> {
    opts.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

fn parse_u32(opts: &[(&str, &str)], name: &str) -> Result<Option<u32>, String> {
    match opt(opts, name) {
        None => Ok(None),
        Some(v) => v
            .parse::<u32>()
            .map(Some)
            .map_err(|_| format!("--{name} must be a non-negative integer, got {v:?}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("usage: imgtool <gen|resize|sepia|blur|info> ...".to_string());
    };
    let (pos, opts) = split_args(&args[1..])?;
    match cmd.as_str() {
        "gen" => {
            let [out] = pos[..] else {
                return Err("usage: imgtool gen <out.rimg> --width W --height H".to_string());
            };
            let width = parse_u32(&opts, "width")?.ok_or("--width is required")?;
            let height = parse_u32(&opts, "height")?.ok_or("--height is required")?;
            let seed = opt(&opts, "seed")
                .map(|s| s.parse::<u64>().map_err(|_| format!("bad --seed {s:?}")))
                .transpose()?
                .unwrap_or(0);
            let img = match opt(&opts, "kind").unwrap_or("gradient") {
                "gradient" => gradient(width, height, seed),
                "noise" => noise(width, height, seed),
                "checker" => checkerboard(width, height, (seed.max(1)) as u32),
                other => return Err(format!("unknown --kind {other:?}")),
            };
            write_rimg(out, &img).map_err(|e| e.to_string())
        }
        "resize" => {
            let [input, output] = pos[..] else {
                return Err("usage: imgtool resize <in> <out> --size N".to_string());
            };
            let size = parse_u32(&opts, "size")?.ok_or("--size is required")?;
            if size == 0 {
                return Err("--size must be positive".to_string());
            }
            let img = read_rimg(input).map_err(|e| e.to_string())?;
            let out = resize_bilinear(&img, size, size);
            write_rimg(output, &out).map_err(|e| e.to_string())
        }
        "sepia" => {
            let [input, output] = pos[..] else {
                return Err("usage: imgtool sepia <in> <out> [--sepia true|false]".to_string());
            };
            let apply = match opt(&opts, "sepia").unwrap_or("true") {
                "true" => true,
                "false" => false,
                other => return Err(format!("--sepia must be true or false, got {other:?}")),
            };
            let img = read_rimg(input).map_err(|e| e.to_string())?;
            let out = if apply { sepia(&img) } else { img };
            write_rimg(output, &out).map_err(|e| e.to_string())
        }
        "blur" => {
            let [input, output] = pos[..] else {
                return Err("usage: imgtool blur <in> <out> --radius R".to_string());
            };
            let radius = parse_u32(&opts, "radius")?.ok_or("--radius is required")?;
            let img = read_rimg(input).map_err(|e| e.to_string())?;
            let out = box_blur(&img, radius);
            write_rimg(output, &out).map_err(|e| e.to_string())
        }
        "info" => {
            let [input] = pos[..] else {
                return Err("usage: imgtool info <in>".to_string());
            };
            let img = read_rimg(input).map_err(|e| e.to_string())?;
            let (r, g, b) = img.mean_rgb();
            println!(
                "{}x{} mean_rgb=({r:.1}, {g:.1}, {b:.1}) fingerprint={:#018x}",
                img.width(),
                img.height(),
                img.fingerprint()
            );
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}
