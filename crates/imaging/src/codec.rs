//! The `.rimg` on-disk format: a tiny uncompressed raster container with an
//! integrity checksum. Stands in for PNG in the reproduced workflow — same
//! role (image file exchanged between workflow steps), none of the
//! compression complexity.
//!
//! Layout (little-endian):
//! ```text
//! magic   [u8; 4]  = b"RIMG"
//! version u8       = 1
//! width   u32
//! height  u32
//! pixels  [u8]     width * height * 3 RGB bytes
//! check   u64      FNV-1a over header + pixels
//! ```

use crate::image::Image;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RIMG";
const VERSION: u8 = 1;
/// Refuse absurd dimensions before allocating.
const MAX_DIM: u32 = 1 << 16;

/// Errors reading or writing `.rimg` files.
#[derive(Debug)]
pub enum CodecError {
    Io(std::io::Error),
    /// The file is not an RIMG container or is structurally invalid.
    Format(String),
    /// The checksum did not match (corrupt or truncated file).
    Corrupt(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "I/O error: {e}"),
            CodecError::Format(m) => write!(f, "format error: {m}"),
            CodecError::Corrupt(m) => write!(f, "corrupt file: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

fn fnv1a(parts: &[&[u8]]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for part in parts {
        for &b in *part {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    }
    h
}

/// Serialize an image into `.rimg` bytes.
pub fn encode(img: &Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 8 + img.raw().len() + 8);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&img.width().to_le_bytes());
    out.extend_from_slice(&img.height().to_le_bytes());
    out.extend_from_slice(img.raw());
    let check = fnv1a(&[&out]);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

/// Deserialize `.rimg` bytes into an image.
pub fn decode(bytes: &[u8]) -> Result<Image, CodecError> {
    if bytes.len() < 4 + 1 + 8 + 8 {
        return Err(CodecError::Format(format!(
            "file too short ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[..4] != MAGIC {
        return Err(CodecError::Format(
            "bad magic (not an .rimg file)".to_string(),
        ));
    }
    if bytes[4] != VERSION {
        return Err(CodecError::Format(format!(
            "unsupported version {}",
            bytes[4]
        )));
    }
    let width = u32::from_le_bytes(bytes[5..9].try_into().expect("fixed slice"));
    let height = u32::from_le_bytes(bytes[9..13].try_into().expect("fixed slice"));
    if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
        return Err(CodecError::Format(format!(
            "invalid dimensions {width}x{height}"
        )));
    }
    let pixel_len = (width as usize) * (height as usize) * 3;
    let expect = 13 + pixel_len + 8;
    if bytes.len() != expect {
        return Err(CodecError::Format(format!(
            "file is {} bytes, expected {expect} for {width}x{height}",
            bytes.len()
        )));
    }
    let body = &bytes[..13 + pixel_len];
    let stored = u64::from_le_bytes(bytes[13 + pixel_len..].try_into().expect("fixed slice"));
    let computed = fnv1a(&[body]);
    if stored != computed {
        return Err(CodecError::Corrupt(format!(
            "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    Image::from_raw(width, height, bytes[13..13 + pixel_len].to_vec()).map_err(CodecError::Format)
}

/// Write an image to a `.rimg` file.
pub fn write_rimg(path: impl AsRef<Path>, img: &Image) -> Result<(), CodecError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode(img))?;
    Ok(())
}

/// Read an image from a `.rimg` file.
pub fn read_rimg(path: impl AsRef<Path>) -> Result<Image, CodecError> {
    let mut f = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::noise;

    #[test]
    fn encode_decode_roundtrip() {
        let img = noise(13, 7, 99);
        let bytes = encode(&img);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rimg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("img.rimg");
        let img = noise(8, 8, 1);
        write_rimg(&path, &img).unwrap();
        assert_eq!(read_rimg(&path).unwrap(), img);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&noise(4, 4, 0));
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(CodecError::Format(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&noise(4, 4, 0));
        bytes[4] = 9;
        assert!(matches!(decode(&bytes), Err(CodecError::Format(_))));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode(&noise(4, 4, 0));
        assert!(matches!(
            decode(&bytes[..bytes.len() - 3]),
            Err(CodecError::Format(_))
        ));
        assert!(matches!(decode(&bytes[..10]), Err(CodecError::Format(_))));
        assert!(matches!(decode(b""), Err(CodecError::Format(_))));
    }

    #[test]
    fn detects_corruption() {
        let mut bytes = encode(&noise(4, 4, 0));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(decode(&bytes), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn rejects_absurd_dimensions() {
        let mut bytes = encode(&noise(4, 4, 0));
        bytes[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CodecError::Format(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_rimg("/no/such/file.rimg"),
            Err(CodecError::Io(_))
        ));
    }
}
