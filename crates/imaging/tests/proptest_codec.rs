//! Property tests for the imaging substrate: codec roundtrips, corruption
//! rejection, and kernel invariants.

use imaging::{box_blur, codec, resize_bilinear, sepia, Image};
use proptest::prelude::*;

fn image_strategy() -> impl Strategy<Value = Image> {
    (1u32..24, 1u32..24, any::<u64>()).prop_map(|(w, h, seed)| imaging::noise(w, h, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_roundtrip_identity(img in image_strategy()) {
        let bytes = codec::encode(&img);
        let back = codec::decode(&bytes).unwrap();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn single_byte_corruption_never_yields_wrong_image(
        img in image_strategy(),
        flip_at in any::<proptest::sample::Index>(),
        flip_bits in 1u8..=255,
    ) {
        let mut bytes = codec::encode(&img);
        let i = flip_at.index(bytes.len());
        bytes[i] ^= flip_bits;
        // Decoding may fail (expected) — but if it somehow succeeds, the
        // checksum guarantees the corruption was in ignorable bytes, which
        // the format has none of; so success must mean content equality.
        match codec::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded, img),
        }
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode(&bytes);
    }

    #[test]
    fn resize_dimensions_always_match_request(
        img in image_strategy(),
        w in 1u32..32,
        h in 1u32..32,
    ) {
        let out = resize_bilinear(&img, w, h);
        prop_assert_eq!((out.width(), out.height()), (w, h));
    }

    #[test]
    fn sepia_is_idempotent_on_saturated_white(w in 1u32..16, h in 1u32..16) {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, imaging::Rgb::new(255, 255, 255));
            }
        }
        let once = sepia(&img);
        let twice = sepia(&once);
        // White saturates every channel; further sepia keeps it saturated
        // in R (the matrix rows all exceed 1.0 for saturated inputs in R/G).
        prop_assert_eq!(once.get(0, 0).r, 255);
        prop_assert_eq!(twice.get(0, 0).r, 255);
    }

    #[test]
    fn blur_preserves_mean_within_tolerance(img in image_strategy(), r in 0u32..4) {
        // Only meaningful when the kernel fits inside the image; on smaller
        // images edge clamping legitimately reweights border pixels.
        prop_assume!(img.width() > 2 * r && img.height() > 2 * r);
        let out = box_blur(&img, r);
        let (m_in, _, _) = img.mean_rgb();
        let (m_out, _, _) = out.mean_rgb();
        // Edge clamping plus integer division shifts the mean slightly;
        // bound the drift.
        prop_assert!((m_in - m_out).abs() < 16.0, "in={m_in} out={m_out} r={r}");
    }

    #[test]
    fn blur_output_range_bounded_by_input_range(img in image_strategy(), r in 1u32..4) {
        let minmax = |im: &Image| {
            let mut lo = 255u8;
            let mut hi = 0u8;
            for b in im.raw() {
                lo = lo.min(*b);
                hi = hi.max(*b);
            }
            (lo, hi)
        };
        let (in_lo, in_hi) = minmax(&img);
        let (out_lo, out_hi) = minmax(&box_blur(&img, r));
        prop_assert!(out_lo >= in_lo.saturating_sub(1));
        prop_assert!(out_hi <= in_hi.saturating_add(1));
    }
}
