//! End-to-end tests of the real `imgtool` binary (the executable the CWL
//! fixtures name in `baseCommand` when running with subprocess dispatch).

use std::path::PathBuf;
use std::process::Command;

fn imgtool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_imgtool"))
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("imgtool-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn gen_resize_sepia_blur_info_pipeline() {
    let dir = scratch("pipeline");
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

    let run = |args: &[&str]| {
        let out = imgtool().args(args).output().expect("imgtool runs");
        assert!(
            out.status.success(),
            "imgtool {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };

    run(&[
        "gen",
        &p("src.rimg"),
        "--width",
        "64",
        "--height",
        "48",
        "--seed",
        "5",
    ]);
    run(&["resize", &p("src.rimg"), &p("r.rimg"), "--size", "32"]);
    run(&["sepia", &p("r.rimg"), &p("s.rimg"), "--sepia", "true"]);
    run(&["blur", &p("s.rimg"), &p("b.rimg"), "--radius", "2"]);
    let info = run(&["info", &p("b.rimg")]);
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.starts_with("32x32 "), "info: {text}");
    assert!(text.contains("fingerprint=0x"), "info: {text}");

    // The binary's output must equal the library's computation.
    let src = imaging::read_rimg(dir.join("src.rimg")).unwrap();
    let expect = imaging::box_blur(&imaging::sepia(&imaging::resize_bilinear(&src, 32, 32)), 2);
    let got = imaging::read_rimg(dir.join("b.rimg")).unwrap();
    assert_eq!(got.fingerprint(), expect.fingerprint());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_error_paths() {
    let dir = scratch("errors");
    let fail = |args: &[&str]| {
        let out = imgtool().args(args).output().expect("imgtool runs");
        assert!(
            !out.status.success(),
            "imgtool {args:?} unexpectedly succeeded"
        );
        String::from_utf8_lossy(&out.stderr).into_owned()
    };
    assert!(fail(&[]).contains("usage"));
    assert!(fail(&["frobnicate"]).contains("unknown subcommand"));
    assert!(fail(&["gen", dir.join("x.rimg").to_str().unwrap()]).contains("--width"));
    assert!(fail(&["resize", "ghost.rimg", "out.rimg", "--size", "4"]).contains("imgtool:"));
    assert!(fail(&["resize", "a", "b", "--size", "0"]).contains("positive"));
    assert!(fail(&["blur", "a", "b"]).contains("--radius"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generated_kinds_differ() {
    let dir = scratch("kinds");
    for kind in ["gradient", "noise", "checker"] {
        let out = imgtool()
            .args([
                "gen",
                dir.join(format!("{kind}.rimg")).to_str().unwrap(),
                "--width",
                "16",
                "--height",
                "16",
                "--seed",
                "3",
                "--kind",
                kind,
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
    }
    let g = imaging::read_rimg(dir.join("gradient.rimg")).unwrap();
    let n = imaging::read_rimg(dir.join("noise.rimg")).unwrap();
    let c = imaging::read_rimg(dir.join("checker.rimg")).unwrap();
    assert_ne!(g.fingerprint(), n.fingerprint());
    assert_ne!(n.fingerprint(), c.fingerprint());
    let _ = std::fs::remove_dir_all(&dir);
}
