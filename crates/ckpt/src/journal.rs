//! The journal file format and its reader/writer.
//!
//! Layout:
//!
//! ```text
//! [8-byte magic "CKPTJNL1"]
//! [frame]*
//!
//! frame  := [u32 le payload_len][u32 le crc32(payload)][payload]
//! payload:= 0x01 header-body   (exactly one, first)
//!         | 0x02 task-body     (zero or more)
//! ```
//!
//! The header body is `version:u32, run_hash:u64, label:(u32 len + utf8)`.
//! A task body is `label, fingerprint:u64, step_flag:u8 [step], result`
//! where strings are `u32 len + utf8`. All integers little-endian.
//!
//! Because frames are only ever appended, a crash can damage at most the
//! final frame. [`load`] stops at the first frame that is short, oversized,
//! or fails its checksum and reports everything before it as the valid
//! prefix; [`Journal::resume`] truncates the file to that prefix. A
//! corrupted *interior* frame therefore also drops everything after it —
//! the cost of not maintaining a side index, and safe because dropped
//! records only mean re-execution, never wrong results.

use crate::crc32;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// File magic: identifies a parsl-cwl checkpoint journal, version 1.
pub const MAGIC: &[u8; 8] = b"CKPTJNL1";

const TAG_HEADER: u8 = 0x01;
const TAG_TASK: u8 = 0x02;
/// Frames above this size are treated as corruption, not allocated.
const MAX_PAYLOAD: u32 = 64 << 20;

/// The journal's identity frame, written once at creation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Header {
    /// Format version (currently 1).
    pub version: u32,
    /// Binds the journal to one logical run: a hash of the workflow
    /// definition (all referenced CWL files) and the root input object.
    /// A journal whose hash does not match the run being resumed must be
    /// invalidated wholesale.
    pub run_hash: u64,
    /// Human-readable run label (workflow file name).
    pub label: String,
}

/// One journaled task completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Task label — the DFK memo key's first half.
    pub label: String,
    /// Input fingerprint — the memo key's second half.
    pub fingerprint: u64,
    /// Originating CWL step id, when the task came from a workflow step.
    pub step: Option<String>,
    /// The task's result value, serialized with `yamlite::to_string_flow`.
    pub result: String,
}

/// Result of reading a journal from disk.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The identity frame.
    pub header: Header,
    /// All intact task records, in append order.
    pub records: Vec<Record>,
    /// Byte offset of the end of the last intact frame.
    pub valid_len: u64,
    /// True when trailing bytes past `valid_len` were damaged (torn write
    /// or corruption) and must be truncated before appending.
    pub torn: bool,
}

/// Durability policy for appends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncMode {
    /// fsync after every append: a record is durable the moment the task
    /// that produced it completes.
    TaskExit,
    /// Appends hit the OS page cache immediately; a background flusher
    /// fsyncs on this interval. Loses at most one interval of completions
    /// on power failure (a process crash alone loses nothing — the page
    /// cache survives it).
    Periodic(Duration),
}

// ---------------------------------------------------------------- encoding

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err("truncated payload".into());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid utf-8 in payload".to_string())
    }
}

fn encode_header(h: &Header) -> Vec<u8> {
    let mut buf = vec![TAG_HEADER];
    buf.extend_from_slice(&h.version.to_le_bytes());
    buf.extend_from_slice(&h.run_hash.to_le_bytes());
    put_str(&mut buf, &h.label);
    buf
}

fn encode_record(r: &Record) -> Vec<u8> {
    let mut buf = vec![TAG_TASK];
    put_str(&mut buf, &r.label);
    buf.extend_from_slice(&r.fingerprint.to_le_bytes());
    match &r.step {
        Some(step) => {
            buf.push(1);
            put_str(&mut buf, step);
        }
        None => buf.push(0),
    }
    put_str(&mut buf, &r.result);
    buf
}

fn decode_record(payload: &[u8]) -> Result<Record, String> {
    let mut c = Cursor {
        buf: payload,
        pos: 1, // tag already checked
    };
    let label = c.str()?;
    let fingerprint = c.u64()?;
    let step = match c.u8()? {
        0 => None,
        1 => Some(c.str()?),
        _ => return Err("bad step flag".into()),
    };
    let result = c.str()?;
    Ok(Record {
        label,
        fingerprint,
        step,
        result,
    })
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

// ----------------------------------------------------------------- loading

/// Read a journal, verifying every frame. Corrupt or incomplete trailing
/// frames are dropped (reported via `torn`/`valid_len`), never trusted. A
/// missing or damaged header frame is a hard error — the file cannot be
/// bound to a run. (Journal creation fsyncs the header before any task can
/// complete, so a crash cannot produce a headerless journal.)
pub fn load(path: &Path) -> Result<LoadedJournal, String> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("ckpt: cannot read journal {}: {e}", path.display()))?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(format!(
            "ckpt: {} is not a checkpoint journal (bad magic)",
            path.display()
        ));
    }

    let mut pos = MAGIC.len();
    let mut header: Option<Header> = None;
    let mut records = Vec::new();
    let mut torn = false;

    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < 8 {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len == 0 || len > MAX_PAYLOAD || rest.len() - 8 < len as usize {
            torn = true;
            break;
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            torn = true;
            break;
        }
        match (payload[0], &header) {
            (TAG_HEADER, None) => {
                let parse = |payload: &[u8]| -> Result<Header, String> {
                    let mut c = Cursor {
                        buf: payload,
                        pos: 1,
                    };
                    Ok(Header {
                        version: c.u32()?,
                        run_hash: c.u64()?,
                        label: c.str()?,
                    })
                };
                match parse(payload) {
                    Ok(h) => header = Some(h),
                    Err(e) => {
                        return Err(format!(
                            "ckpt: {} has a corrupt header frame: {e}",
                            path.display()
                        ))
                    }
                }
            }
            (TAG_TASK, Some(_)) => match decode_record(payload) {
                Ok(r) => records.push(r),
                Err(_) => {
                    torn = true;
                    break;
                }
            },
            _ => {
                // Unknown tag, duplicate header, or task-before-header:
                // treat as corruption starting here.
                if header.is_none() {
                    return Err(format!("ckpt: {} has no header frame", path.display()));
                }
                torn = true;
                break;
            }
        }
        pos += 8 + len as usize;
    }

    let header = header.ok_or_else(|| format!("ckpt: {} has no header frame", path.display()))?;
    Ok(LoadedJournal {
        header,
        records,
        valid_len: pos as u64,
        torn,
    })
}

// ----------------------------------------------------------------- writing

struct WriterState {
    file: File,
}

/// An open journal accepting appends. Thread-safe; clone the `Arc` it is
/// normally held in. Dropping the journal flushes and fsyncs outstanding
/// appends and stops the periodic flusher, if any.
pub struct Journal {
    path: PathBuf,
    mode: SyncMode,
    state: Arc<Mutex<WriterState>>,
    appended: AtomicUsize,
    stop: Arc<AtomicBool>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl Journal {
    /// Create a fresh journal at `path`. Fails if the file already exists —
    /// an existing journal means a previous run's completed work, and
    /// clobbering it silently would defeat the point; callers resume it or
    /// remove it explicitly.
    pub fn create(
        path: impl Into<PathBuf>,
        header: &Header,
        mode: SyncMode,
    ) -> Result<Self, String> {
        Self::create_with_clock(path, header, mode, simtest::real_clock())
    }

    /// [`Journal::create`] with an explicit clock for the periodic flusher —
    /// under a virtual clock the flush cadence follows logical time.
    pub fn create_with_clock(
        path: impl Into<PathBuf>,
        header: &Header,
        mode: SyncMode,
        clock: simtest::ClockRef,
    ) -> Result<Self, String> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("ckpt: cannot create {}: {e}", dir.display()))?;
        }
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| format!("ckpt: cannot create journal {}: {e}", path.display()))?;
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&frame(&encode_header(header)));
        file.write_all(&buf)
            .and_then(|_| file.sync_data())
            .map_err(|e| format!("ckpt: cannot write journal header: {e}"))?;
        sync_parent_dir(&path);
        Ok(Self::from_file(path, file, mode, clock))
    }

    /// Open an existing journal for appending: verify it with [`load`],
    /// truncate any torn tail, and position at the end of the valid prefix.
    /// Returns the journal alongside what was loaded from it.
    pub fn resume(
        path: impl Into<PathBuf>,
        mode: SyncMode,
    ) -> Result<(Self, LoadedJournal), String> {
        Self::resume_with_clock(path, mode, simtest::real_clock())
    }

    /// [`Journal::resume`] with an explicit clock for the periodic flusher.
    pub fn resume_with_clock(
        path: impl Into<PathBuf>,
        mode: SyncMode,
        clock: simtest::ClockRef,
    ) -> Result<(Self, LoadedJournal), String> {
        let path = path.into();
        let loaded = load(&path)?;
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| format!("ckpt: cannot open journal {}: {e}", path.display()))?;
        if loaded.torn {
            file.set_len(loaded.valid_len)
                .and_then(|_| file.sync_data())
                .map_err(|e| format!("ckpt: cannot truncate torn tail: {e}"))?;
        }
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| format!("ckpt: cannot seek journal: {e}"))?;
        Ok((Self::from_file(path, file, mode, clock), loaded))
    }

    fn from_file(path: PathBuf, file: File, mode: SyncMode, clock: simtest::ClockRef) -> Self {
        let state = Arc::new(Mutex::new(WriterState { file }));
        let stop = Arc::new(AtomicBool::new(false));
        let flusher = if let SyncMode::Periodic(period) = mode {
            let state = state.clone();
            let stop = stop.clone();
            Some(std::thread::spawn(move || {
                // Short ticks (on the journal's clock) so a stop request is
                // honoured promptly even when the period is long.
                let tick = period
                    .min(Duration::from_millis(50))
                    .max(Duration::from_millis(1));
                let mut since_sync = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    clock.sleep(tick);
                    since_sync += tick;
                    if since_sync >= period {
                        let _ = state.lock().file.sync_data();
                        since_sync = Duration::ZERO;
                    }
                }
            }))
        } else {
            None
        };
        Self {
            path,
            mode,
            state,
            appended: AtomicUsize::new(0),
            stop,
            flusher: Mutex::new(flusher),
        }
    }

    /// Append one task record. In [`SyncMode::TaskExit`] the record is
    /// durable (fsync'd) when this returns.
    pub fn append(&self, record: &Record) -> Result<(), String> {
        let buf = frame(&encode_record(record));
        let mut state = self.state.lock();
        state
            .file
            .write_all(&buf)
            .map_err(|e| format!("ckpt: journal append failed: {e}"))?;
        if self.mode == SyncMode::TaskExit {
            state
                .file
                .sync_data()
                .map_err(|e| format!("ckpt: journal fsync failed: {e}"))?;
        }
        drop(state);
        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Force outstanding appends to stable storage.
    pub fn flush(&self) -> Result<(), String> {
        self.state
            .lock()
            .file
            .sync_data()
            .map_err(|e| format!("ckpt: journal fsync failed: {e}"))
    }

    /// Records appended through this handle (not counting pre-existing ones).
    pub fn appended(&self) -> usize {
        self.appended.load(Ordering::Relaxed)
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
        let _ = self.state.lock().file.sync_data();
    }
}

/// Best-effort fsync of the containing directory so the new file's
/// directory entry is durable too (Linux allows fsync on a directory fd).
fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn header() -> Header {
        Header {
            version: 1,
            run_hash: 0xDEAD_BEEF_CAFE_F00D,
            label: "diamond.cwl".into(),
        }
    }

    fn rec(label: &str, fp: u64) -> Record {
        Record {
            label: label.into(),
            fingerprint: fp,
            step: Some(format!("step_{label}")),
            result: format!("{{output: {label}}}"),
        }
    }

    #[test]
    fn roundtrip_create_append_load() {
        let path = tmp("roundtrip.ckpt");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create(&path, &header(), SyncMode::TaskExit).unwrap();
        journal.append(&rec("seed", 11)).unwrap();
        journal.append(&rec("left", 22)).unwrap();
        let mut no_step = rec("right", 33);
        no_step.step = None;
        journal.append(&no_step).unwrap();
        assert_eq!(journal.appended(), 3);
        drop(journal);

        let loaded = load(&path).unwrap();
        assert_eq!(loaded.header, header());
        assert!(!loaded.torn);
        assert_eq!(loaded.records.len(), 3);
        assert_eq!(loaded.records[0], rec("seed", 11));
        assert_eq!(loaded.records[1], rec("left", 22));
        assert_eq!(loaded.records[2].step, None);
        assert_eq!(loaded.valid_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn create_refuses_existing_journal() {
        let path = tmp("exists.ckpt");
        let _ = std::fs::remove_file(&path);
        let _j = Journal::create(&path, &header(), SyncMode::TaskExit).unwrap();
        let err = match Journal::create(&path, &header(), SyncMode::TaskExit) {
            Err(e) => e,
            Ok(_) => panic!("expected create to refuse an existing journal"),
        };
        assert!(err.contains("cannot create journal"), "{err}");
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let path = tmp("torn.ckpt");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create(&path, &header(), SyncMode::TaskExit).unwrap();
        journal.append(&rec("a", 1)).unwrap();
        journal.append(&rec("b", 2)).unwrap();
        drop(journal);
        let good_len = std::fs::metadata(&path).unwrap().len();

        // Simulate a crash mid-append: a frame whose payload is cut short.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&1000u32.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"partial garbage").unwrap();
        drop(f);

        let loaded = load(&path).unwrap();
        assert!(loaded.torn);
        assert_eq!(loaded.valid_len, good_len);
        assert_eq!(loaded.records.len(), 2);

        // Resume truncates the tail and further appends stay readable.
        let (journal, loaded) = Journal::resume(&path, SyncMode::TaskExit).unwrap();
        assert!(loaded.torn);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        journal.append(&rec("c", 3)).unwrap();
        drop(journal);
        let reloaded = load(&path).unwrap();
        assert!(!reloaded.torn);
        assert_eq!(
            reloaded
                .records
                .iter()
                .map(|r| r.label.as_str())
                .collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
    }

    #[test]
    fn short_frame_header_is_torn() {
        let path = tmp("shorthdr.ckpt");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create(&path, &header(), SyncMode::TaskExit).unwrap();
        journal.append(&rec("a", 1)).unwrap();
        drop(journal);
        // Only 3 bytes of the next frame's length field made it to disk.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x10, 0x00, 0x00]).unwrap();
        drop(f);
        let loaded = load(&path).unwrap();
        assert!(loaded.torn);
        assert_eq!(loaded.records.len(), 1);
    }

    #[test]
    fn checksum_failure_drops_tail() {
        let path = tmp("crc.ckpt");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create(&path, &header(), SyncMode::TaskExit).unwrap();
        journal.append(&rec("a", 1)).unwrap();
        let after_a = std::fs::metadata(&path).unwrap().len();
        journal.append(&rec("b", 2)).unwrap();
        drop(journal);

        // Flip one payload byte of record "b".
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = after_a as usize + 9; // inside b's payload
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let loaded = load(&path).unwrap();
        assert!(loaded.torn);
        assert_eq!(loaded.valid_len, after_a);
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.records[0].label, "a");
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = tmp("notajournal.txt");
        std::fs::write(&path, b"hello world, definitely yaml").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains("bad magic"), "{err}");
    }

    #[test]
    fn periodic_mode_is_durable_after_drop() {
        let path = tmp("periodic.ckpt");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create(
            &path,
            &header(),
            SyncMode::Periodic(Duration::from_secs(30)),
        )
        .unwrap();
        for i in 0..10 {
            journal.append(&rec("t", i)).unwrap();
        }
        journal.flush().unwrap();
        drop(journal);
        let loaded = load(&path).unwrap();
        assert!(!loaded.torn);
        assert_eq!(loaded.records.len(), 10);
    }

    #[test]
    fn empty_journal_has_header_only() {
        let path = tmp("empty.ckpt");
        let _ = std::fs::remove_file(&path);
        drop(Journal::create(&path, &header(), SyncMode::TaskExit).unwrap());
        let loaded = load(&path).unwrap();
        assert!(!loaded.torn);
        assert!(loaded.records.is_empty());
        assert_eq!(loaded.header.run_hash, header().run_hash);
    }
}
