//! Trust rules for loaded journal records.
//!
//! A journal record is a *claim* that a task completed with a given result.
//! Before seeding the memo table from it, the resume path must check the
//! claim still holds:
//!
//! - the journal's `run_hash` matches the workflow + inputs being resumed
//!   (checked by the caller against [`crate::Header::run_hash`]);
//! - every `class: File` object in the result still exists on disk — a
//!   deleted or moved output means the task must re-run, not replay.

use std::path::{Path, PathBuf};
use yamlite::Value;

/// Parse a record's serialized result back into a value. Fails only on a
/// journal written by a buggy or incompatible serializer; callers treat a
/// failure as "invalidate this record".
pub fn parse_result(serialized: &str) -> Result<Value, String> {
    yamlite::parse_str(serialized).map_err(|e| format!("ckpt: unparseable journaled result: {e}"))
}

/// Walk a result value and collect the `path` of every `class: File`
/// object that no longer exists on disk. An empty return means the record
/// is replayable as far as file outputs are concerned.
pub fn missing_file_outputs(value: &Value) -> Vec<PathBuf> {
    let mut missing = Vec::new();
    walk(value, &mut missing);
    missing
}

fn walk(value: &Value, missing: &mut Vec<PathBuf>) {
    match value {
        Value::Map(map) => {
            let is_file = map.get("class").and_then(Value::as_str) == Some("File");
            if is_file {
                if let Some(path) = map.get("path").and_then(Value::as_str) {
                    if !Path::new(path).exists() {
                        missing.push(PathBuf::from(path));
                    }
                }
            }
            for (_, v) in map.iter() {
                walk(v, missing);
            }
        }
        Value::Seq(items) => {
            for v in items {
                walk(v, missing);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_missing_file_paths() {
        let dir = std::env::temp_dir().join(format!("ckpt-inv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let present = dir.join("present.txt");
        std::fs::write(&present, "x").unwrap();
        let gone = dir.join("gone.txt");
        let _ = std::fs::remove_file(&gone);

        let yaml = format!(
            "{{out: {{class: File, path: {}, basename: present.txt}}, extra: [{{class: File, path: {}}}]}}",
            present.display(),
            gone.display()
        );
        let value = parse_result(&yaml).unwrap();
        let missing = missing_file_outputs(&value);
        assert_eq!(missing, vec![gone]);
    }

    #[test]
    fn non_file_values_are_replayable() {
        let value = parse_result("{count: 3, name: hello, nested: {class: Directory}}").unwrap();
        assert!(missing_file_outputs(&value).is_empty());
    }

    #[test]
    fn garbage_results_fail_parse() {
        assert!(parse_result("{unclosed: [").is_err());
    }
}
