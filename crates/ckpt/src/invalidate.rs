//! Trust rules for loaded journal records.
//!
//! A journal record is a *claim* that a task completed with a given result.
//! Before seeding the memo table from it, the resume path must check the
//! claim still holds:
//!
//! - the journal's `run_hash` matches the workflow + inputs being resumed
//!   (checked by the caller against [`crate::Header::run_hash`]);
//! - every `class: File` object in the result still exists on disk — a
//!   deleted or moved output means the task must re-run, not replay.

use std::path::{Path, PathBuf};
use yamlite::Value;

/// Parse a record's serialized result back into a value. Fails only on a
/// journal written by a buggy or incompatible serializer; callers treat a
/// failure as "invalidate this record".
pub fn parse_result(serialized: &str) -> Result<Value, String> {
    yamlite::parse_str(serialized).map_err(|e| format!("ckpt: unparseable journaled result: {e}"))
}

/// Walk a result value and collect the `path` of every `class: File`
/// object that no longer exists on disk. An empty return means the record
/// is replayable as far as file outputs are concerned.
pub fn missing_file_outputs(value: &Value) -> Vec<PathBuf> {
    let mut stale = Vec::new();
    walk(value, &mut |_, _| true, false, &mut stale);
    stale
}

/// Like [`missing_file_outputs`], but a `class: File` that *does* exist
/// is additionally checked against `verify(path, expected_checksum)` when
/// the record carries a `checksum` — so an output truncated or modified
/// in place invalidates the record instead of replaying as a stale memo
/// hit. `verify` returns whether the on-disk content still matches.
pub fn stale_file_outputs(
    value: &Value,
    verify: &mut dyn FnMut(&Path, &str) -> bool,
) -> Vec<PathBuf> {
    let mut stale = Vec::new();
    walk(value, verify, true, &mut stale);
    stale
}

fn walk(
    value: &Value,
    verify: &mut dyn FnMut(&Path, &str) -> bool,
    check_content: bool,
    stale: &mut Vec<PathBuf>,
) {
    match value {
        Value::Map(map) => {
            let is_file = map.get("class").and_then(Value::as_str) == Some("File");
            if is_file {
                if let Some(path) = map.get("path").and_then(Value::as_str) {
                    let p = Path::new(path);
                    if !p.exists() {
                        stale.push(PathBuf::from(path));
                    } else if check_content {
                        if let Some(sum) = map.get("checksum").and_then(Value::as_str) {
                            // Cheap pre-check: a recorded size mismatch is
                            // already disqualifying without hashing.
                            let size_ok = match map.get("size").and_then(Value::as_int) {
                                Some(len) => std::fs::metadata(p)
                                    .map(|m| m.len() == len as u64)
                                    .unwrap_or(false),
                                None => true,
                            };
                            if !size_ok || !verify(p, sum) {
                                stale.push(PathBuf::from(path));
                            }
                        }
                    }
                }
            }
            for (_, v) in map.iter() {
                walk(v, verify, check_content, stale);
            }
        }
        Value::Seq(items) => {
            for v in items {
                walk(v, verify, check_content, stale);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_missing_file_paths() {
        let dir = std::env::temp_dir().join(format!("ckpt-inv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let present = dir.join("present.txt");
        std::fs::write(&present, "x").unwrap();
        let gone = dir.join("gone.txt");
        let _ = std::fs::remove_file(&gone);

        let yaml = format!(
            "{{out: {{class: File, path: {}, basename: present.txt}}, extra: [{{class: File, path: {}}}]}}",
            present.display(),
            gone.display()
        );
        let value = parse_result(&yaml).unwrap();
        let missing = missing_file_outputs(&value);
        assert_eq!(missing, vec![gone]);
    }

    #[test]
    fn non_file_values_are_replayable() {
        let value = parse_result("{count: 3, name: hello, nested: {class: Directory}}").unwrap();
        assert!(missing_file_outputs(&value).is_empty());
    }

    #[test]
    fn garbage_results_fail_parse() {
        assert!(parse_result("{unclosed: [").is_err());
    }

    #[test]
    fn checksum_mismatch_marks_record_stale() {
        let dir = std::env::temp_dir().join(format!("ckpt-sum-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("out.txt");
        std::fs::write(&out, b"payload").unwrap();
        let yaml = format!(
            "{{out: {{class: File, path: {}, size: 7, checksum: 'xxh64:0000000000000001'}}}}",
            out.display()
        );
        let value = parse_result(&yaml).unwrap();

        // Digest verifier agrees: replayable.
        assert!(stale_file_outputs(&value, &mut |_, _| true).is_empty());
        // Digest verifier disagrees: the existing file is stale.
        assert_eq!(
            stale_file_outputs(&value, &mut |_, _| false),
            vec![out.clone()]
        );

        // A truncated output fails the recorded-size pre-check before any
        // verifier runs.
        std::fs::write(&out, b"pay").unwrap();
        let mut called = false;
        let stale = stale_file_outputs(&value, &mut |_, _| {
            called = true;
            true
        });
        assert_eq!(stale, vec![out.clone()]);
        assert!(!called);

        // The legacy exists-only check still replays it.
        assert!(missing_file_outputs(&value).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
