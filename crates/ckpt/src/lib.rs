//! Durable checkpoint journal for workflow runs.
//!
//! Parsl's fault-tolerance story (Babuji et al. '19) checkpoints completed
//! app results to disk so a re-run skips finished tasks. This crate is the
//! storage half of that story for parsl-cwl: an append-only, CRC-checksummed,
//! fsync'd log of task completions. Each record carries the task label, the
//! input fingerprint the memo table keys on, the serialized result value,
//! and (for workflow runs) the originating CWL step id.
//!
//! Design points:
//!
//! - **Append-only framing.** Every record is `[len][crc32][payload]`; a
//!   crash can only damage the final record, never an earlier one.
//! - **Torn-tail recovery.** [`load`] walks the frames and stops at the
//!   first short, oversized, or checksum-failing frame, reporting the valid
//!   prefix; [`Journal::resume`] truncates the file there so the damaged
//!   tail cannot poison later appends.
//! - **Run binding.** The header frame stores a caller-supplied `run_hash`
//!   (workflow content + root inputs). A resume against a different hash
//!   must invalidate the journal instead of trusting it.
//! - **Sync modes.** [`SyncMode::TaskExit`] fsyncs on every append (maximum
//!   durability); [`SyncMode::Periodic`] batches appends and a background
//!   flusher syncs on an interval (cheaper, bounded loss window).
//!
//! Trust rules for loaded records live in [`invalidate`]: results that name
//! `class: File` outputs are only replayable while those paths still exist.

mod crc32;
pub mod invalidate;
mod journal;

pub use crc32::crc32;
pub use journal::{load, Header, Journal, LoadedJournal, Record, SyncMode, MAGIC};

/// FNV-1a over a byte slice, chained from `seed` (use [`FNV_OFFSET`] to
/// start a fresh hash). The same primitive the DFK uses for input
/// fingerprints, exported here so run hashes stay consistent across crates.
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis — the seed for a fresh [`fnv1a`] chain.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_chain_differs_by_order() {
        let a = fnv1a(fnv1a(FNV_OFFSET, b"one"), b"two");
        let b = fnv1a(fnv1a(FNV_OFFSET, b"two"), b"one");
        assert_ne!(a, b);
        assert_eq!(a, fnv1a(fnv1a(FNV_OFFSET, b"one"), b"two"));
    }
}
