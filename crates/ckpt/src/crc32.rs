//! CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the variant
//! used by gzip/zlib. Table-driven; the table is built at compile time so
//! the hot path is one lookup per byte.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"checkpoint");
        let b = crc32(b"checkpoins");
        assert_ne!(a, b);
    }
}
