//! Real and virtual time sources behind one trait.

use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A monotone time source the executor stack reads and sleeps through.
///
/// `now()` is the time since the clock's epoch (process start for the shared
/// real clock, construction for a virtual one). All durations measured
/// through one clock are mutually consistent; mixing clocks is a bug.
pub trait Clock: Send + Sync {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;

    /// Block the calling thread for `d` of this clock's time.
    fn sleep(&self, d: Duration);

    /// True for virtual clocks; lets callers skip real-time pacing.
    fn is_virtual(&self) -> bool {
        false
    }
}

/// Shared handle to a clock implementation.
pub type ClockRef = Arc<dyn Clock>;

/// Wall-clock time, anchored at the first call to [`real_clock`].
pub struct RealClock {
    start: Instant,
}

impl RealClock {
    pub fn new() -> Self {
        RealClock {
            start: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Duration {
        self.start.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// The process-wide real clock. Every component that is not explicitly
/// configured with a virtual clock shares this one, so timestamps taken in
/// different crates are comparable.
pub fn real_clock() -> ClockRef {
    static GLOBAL: OnceLock<Arc<RealClock>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(RealClock::new())).clone()
}

struct VcState {
    now: Duration,
    next_ticket: u64,
    /// Pending sleeper deadlines, ordered by (deadline, arrival ticket).
    /// The head of this queue is the next logical instant anything can
    /// happen at; auto-advance jumps straight to it.
    sleepers: BTreeSet<(Duration, u64)>,
}

/// Virtual time advanced by an event queue of sleeper deadlines.
///
/// Every `sleep(d)` registers a deadline and blocks. When auto-advance is on
/// (the default) and the system has been idle for a short real-time grace
/// window, the clock jumps to the earliest registered deadline and wakes its
/// sleeper — so a 250ms heartbeat timeout "elapses" in about a millisecond
/// of real time, and sleepers always fire in logical-deadline order
/// (ties broken by registration order).
///
/// The grace window exists because the clock cannot see threads that are
/// *about* to sleep: it only advances once every running thread has either
/// blocked on the clock or stayed silent for `grace` of real time. Tests
/// that want full manual control call `set_auto(false)` and drive time with
/// [`VirtualClock::advance`].
pub struct VirtualClock {
    state: Mutex<VcState>,
    cond: Condvar,
    auto: AtomicBool,
    grace: Duration,
}

impl VirtualClock {
    /// Auto-advancing virtual clock with a 1ms idle grace window.
    pub fn new() -> Arc<Self> {
        Self::with_grace(Duration::from_millis(1))
    }

    /// Auto-advancing virtual clock with an explicit idle grace window.
    pub fn with_grace(grace: Duration) -> Arc<Self> {
        Arc::new(VirtualClock {
            state: Mutex::new(VcState {
                now: Duration::ZERO,
                next_ticket: 0,
                sleepers: BTreeSet::new(),
            }),
            cond: Condvar::new(),
            auto: AtomicBool::new(true),
            grace,
        })
    }

    /// Enable or disable idle auto-advance.
    pub fn set_auto(&self, on: bool) {
        self.auto.store(on, Ordering::SeqCst);
        self.cond.notify_all();
    }

    /// Advance virtual time by `d`, waking every sleeper whose deadline has
    /// now passed.
    pub fn advance(&self, d: Duration) {
        let mut st = self.state.lock();
        st.now += d;
        self.cond.notify_all();
    }

    /// Advance virtual time to `t` (no-op if time is already past it).
    pub fn advance_to(&self, t: Duration) {
        let mut st = self.state.lock();
        if t > st.now {
            st.now = t;
            self.cond.notify_all();
        }
    }

    /// Number of threads currently blocked in `sleep`.
    pub fn sleeper_count(&self) -> usize {
        self.state.lock().sleepers.len()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        self.state.lock().now
    }

    fn sleep(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        let mut st = self.state.lock();
        let deadline = st.now + d;
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.sleepers.insert((deadline, ticket));
        loop {
            if st.now >= deadline {
                st.sleepers.remove(&(deadline, ticket));
                // A new sleeper now holds the queue head; make sure it
                // re-evaluates instead of waiting out another grace window.
                self.cond.notify_all();
                return;
            }
            let timed_out = self.cond.wait_for(&mut st, self.grace).timed_out();
            // Only the sleeper holding the earliest deadline advances the
            // clock, and only after a full grace window of real idleness —
            // that is what serialises wakeups into logical order.
            if timed_out
                && self.auto.load(Ordering::SeqCst)
                && st.sleepers.iter().next().copied() == Some((deadline, ticket))
            {
                st.now = deadline;
                self.cond.notify_all();
            }
        }
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;

    #[test]
    fn real_clock_is_monotone_and_shared() {
        let c1 = real_clock();
        let c2 = real_clock();
        let a = c1.now();
        let b = c2.now();
        assert!(b >= a);
        assert!(!c1.is_virtual());
    }

    #[test]
    fn virtual_sleep_fires_without_wall_time() {
        let vc = VirtualClock::new();
        let start = Instant::now();
        // An hour of virtual time must elapse in well under a second.
        vc.sleep(Duration::from_secs(3600));
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(vc.now(), Duration::from_secs(3600));
    }

    #[test]
    fn sleepers_wake_in_deadline_order() {
        let vc = VirtualClock::new();
        let order: Arc<PMutex<Vec<u32>>> = Arc::new(PMutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Spawn in reverse-deadline order to prove the queue, not spawn
        // order, decides who wakes first.
        for (label, ms) in [(3u32, 30u64), (2, 20), (1, 10)] {
            let vc = vc.clone();
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                vc.sleep(Duration::from_millis(ms));
                order.lock().push(label);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn manual_advance_wakes_sleeper() {
        let vc = VirtualClock::new();
        vc.set_auto(false);
        let vc2 = vc.clone();
        let h = std::thread::spawn(move || {
            vc2.sleep(Duration::from_millis(500));
            vc2.now()
        });
        // Wait until the sleeper has registered, then drive time by hand.
        while vc.sleeper_count() == 0 {
            std::thread::sleep(Duration::from_micros(100));
        }
        vc.advance(Duration::from_millis(499));
        assert_eq!(vc.sleeper_count(), 1);
        vc.advance(Duration::from_millis(1));
        assert!(h.join().unwrap() >= Duration::from_millis(500));
    }

    #[test]
    fn simultaneous_deadlines_all_wake() {
        let vc = VirtualClock::new();
        vc.set_auto(false);
        let order: Arc<PMutex<Vec<u32>>> = Arc::new(PMutex::new(Vec::new()));
        let mut handles = Vec::new();
        for label in 0u32..4 {
            let vc = vc.clone();
            let order = order.clone();
            while vc.sleeper_count() != label as usize {
                std::thread::sleep(Duration::from_micros(100));
            }
            handles.push(std::thread::spawn(move || {
                vc.sleep(Duration::from_millis(10));
                order.lock().push(label);
            }));
        }
        while vc.sleeper_count() != 4 {
            std::thread::sleep(Duration::from_micros(100));
        }
        vc.advance(Duration::from_millis(10));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(order.lock().len(), 4);
    }
}
