//! Seeded, splittable PRNG for replayable schedules.

use std::time::{SystemTime, UNIX_EPOCH};

/// xoshiro256** seeded through splitmix64.
///
/// Not cryptographic; chosen for speed and for the seed discipline the
/// simulation harness needs: the same `u64` seed yields the same draw
/// sequence on every platform, and [`SimRng::fork`] derives independent
/// child streams so components can draw concurrently without sharing a
/// lock or perturbing each other's sequences.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Deterministic stream for `seed`.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Nondeterministic stream (system time entropy); the default outside
    /// simulations.
    pub fn from_entropy() -> Self {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        let tid = std::thread::current().id();
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the thread id
        for b in format!("{tid:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::seeded(nanos ^ h)
    }

    /// Derive an independent child stream named by `label`. Forking with
    /// the same label at the same point in the parent sequence always
    /// yields the same child.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::seeded(self.next_u64() ^ h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`; `n` must be nonzero. Multiply-shift (Lemire
    /// without the rejection step — bias is < 2^-32 for the ranges the
    /// simulator uses, and determinism matters more than the last ulp).
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform in `[lo, hi)` (returns `lo` when the range is empty).
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + ((self.next_u64() as u128 * (hi - lo) as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)` (returns `lo` when the range is empty).
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.gen_f64() * (hi - lo)
    }

    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn forks_are_reproducible_and_independent() {
        let mut p1 = SimRng::seeded(7);
        let mut p2 = SimRng::seeded(7);
        let mut c1 = p1.fork("latency");
        let mut c2 = p2.fork("latency");
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut p3 = SimRng::seeded(7);
        let mut other = p3.fork("faults");
        assert!((0..16).any(|_| c1.next_u64() != other.next_u64()));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SimRng::seeded(9);
        for _ in 0..1000 {
            let v = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.gen_range_f64(-0.25, 0.25);
            assert!((-0.25..0.25).contains(&f));
            let i = r.gen_index(3);
            assert!(i < 3);
        }
        // Degenerate ranges collapse to the lower bound.
        assert_eq!(r.gen_range_u64(5, 5), 5);
        assert_eq!(r.gen_range_f64(1.0, 1.0), 1.0);
    }

    #[test]
    fn gen_f64_is_half_open_unit() {
        let mut r = SimRng::seeded(11);
        for _ in 0..1000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
