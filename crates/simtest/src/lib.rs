//! Deterministic simulation harness.
//!
//! Three pieces, each usable on its own:
//!
//! * [`Clock`] — the one interface through which the executor stack reads
//!   time and sleeps. [`RealClock`] is wall-clock; [`VirtualClock`] advances
//!   via an event queue of sleeper deadlines, so a test run that "waits"
//!   hundreds of milliseconds of heartbeat/backoff time completes in
//!   microseconds, and always in the same logical order.
//! * [`SimRng`] — a seeded, splittable PRNG (xoshiro256** seeded through
//!   splitmix64). Identical seeds produce identical draw sequences, which is
//!   what makes a failing schedule replayable from its seed alone.
//! * [`wait_until`] — a deadline-bounded condition wait for tests that must
//!   observe a concurrent real-time system (no fixed sleeps, no unbounded
//!   spins).

mod clock;
mod rng;

pub use clock::{real_clock, Clock, ClockRef, RealClock, VirtualClock};
pub use rng::SimRng;

use std::time::{Duration, Instant};

/// Deadline-bounded condition wait against real time.
///
/// Polls `pred` with exponential backoff (50µs → 5ms) until it returns true
/// or `timeout` elapses; returns the final value of `pred`. This is the
/// replacement for the `loop { sleep(5ms); if cond { break } }` pattern:
/// bounded above by the deadline, and never *asserting* on elapsed time —
/// only on the condition itself.
pub fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    let mut backoff = Duration::from_micros(50);
    loop {
        if pred() {
            return true;
        }
        if Instant::now() >= deadline {
            // One last look: the condition may have become true while we
            // were sleeping out the final interval.
            return pred();
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn wait_until_sees_late_condition() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            h.store(1, Ordering::SeqCst);
        });
        assert!(wait_until(Duration::from_secs(5), || {
            hits.load(Ordering::SeqCst) == 1
        }));
        t.join().unwrap();
    }

    #[test]
    fn wait_until_gives_up_at_deadline() {
        let start = Instant::now();
        assert!(!wait_until(Duration::from_millis(30), || false));
        assert!(start.elapsed() >= Duration::from_millis(30));
    }
}
