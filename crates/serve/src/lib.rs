//! `serve` — the `parsl-serve` multi-run workflow service.
//!
//! The standalone `parsl-cwl` runner pays full kernel/executor startup on
//! every invocation and gives each workflow the machine to itself. This
//! crate turns the same stack into a long-running daemon: one warm
//! [`parsl::DataFlowKernel`] and HTEX pool, one shared content-addressed
//! store, one observability registry — and many concurrent workflow runs
//! multiplexed over them:
//!
//! * [`Service`] — the core: admission control (the static
//!   analyzer runs at submit time with the daemon's real executor
//!   capacity, so unschedulable documents are rejected at the door with
//!   E032 diagnostics), a run registry with durable per-run manifests and
//!   checkpoint journals, and crash-resume on restart;
//! * [`FairShare`] — a deficit-round-robin
//!   [`parsl::DispatchGate`] giving each tenant executor slots in
//!   proportion to its configured weight;
//! * [`daemon`] — the Unix-socket protocol front end
//!   (`parsl-serve` binary), with graceful drain and SIGTERM fast-stop;
//! * the client side lives in `parsl-cwl submit|status|logs|cancel|drain`
//!   (the `cwl_parsl` crate), sharing the wire format via
//!   [`cwl_parsl::proto`].

pub mod daemon;
pub mod queue;
pub mod run;
pub mod service;

pub use daemon::serve_daemon;
pub use queue::FairShare;
pub use run::{RunRecord, RunState};
pub use service::{RunSnapshot, Service, SubmitError};
