//! The `parsl-serve` daemon: a Unix-socket front end over [`Service`].
//!
//! One request/response frame pair per connection (see
//! [`cwl_parsl::proto`] for the framing). Commands:
//!
//! | cmd      | request fields                  | response fields |
//! |----------|---------------------------------|-----------------|
//! | `ping`   | —                               | `ok`            |
//! | `submit` | `cwl`, `inputs`, `tenant`       | `run`, `run_dir`|
//! | `status` | `run` (optional)                | `runs: [...]`, `active`, `queued` |
//! | `logs`   | `run`                           | run snapshot + `files: [...]` |
//! | `cancel` | `run`                           | `cancelled`     |
//! | `drain`  | —                               | `active`, `queued` |
//!
//! Lifecycle: the accept loop is single-threaded and non-blocking so it
//! can interleave connections with two exit conditions — a completed
//! drain (graceful: every run finished, kernel shut down, trace exported)
//! and SIGTERM (fast: flush per-run journals and exit *without* waiting,
//! so a restart with `--resume` replays the interrupted runs from their
//! journals).

use crate::service::{RunSnapshot, Service, SubmitError};
use cwl_parsl::config::RunnerConfig;
use cwl_parsl::proto::{self, obj, s};
use obs::json::Json;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the SIGTERM handler; polled by the accept loop.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    TERM.store(true, Ordering::Release);
}

/// Install the SIGTERM handler through the C runtime directly — the
/// vendored environment has no `libc` crate, and `signal(2)` is all a
/// flag-setting handler needs.
fn install_sigterm() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

/// Run the daemon until drained or SIGTERMed. Binds `serve.socket` (or
/// `<workdir>/serve.sock`), refusing to start when another daemon is
/// already listening there.
pub fn serve_daemon(config: RunnerConfig, resume: bool) -> Result<(), String> {
    let socket = config.serve.socket_path(&config.workdir);
    if let Some(parent) = socket.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("socket dir {}: {e}", parent.display()))?;
        }
    }
    if socket.exists() {
        // A live daemon answers; a stale socket from a crashed one does
        // not and is safe to replace.
        if UnixStream::connect(&socket).is_ok() {
            return Err(format!(
                "another daemon is already serving on {}",
                socket.display()
            ));
        }
        std::fs::remove_file(&socket).map_err(|e| format!("{}: {e}", socket.display()))?;
    }

    let svc = Service::start(config, resume)?;
    install_sigterm();
    let listener =
        UnixListener::bind(&socket).map_err(|e| format!("bind {}: {e}", socket.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("socket: {e}"))?;
    eprintln!("parsl-serve: listening on {}", socket.display());

    loop {
        if TERM.load(Ordering::Acquire) {
            eprintln!("parsl-serve: SIGTERM — flushing journals and stopping");
            svc.fast_stop();
            let _ = std::fs::remove_file(&socket);
            // Fast stop by design: in-flight tasks die with the process;
            // the synced journals + non-terminal manifests make the
            // interrupted runs resumable.
            return Ok(());
        }
        if svc.drained() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_conn(&svc, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => eprintln!("parsl-serve: accept error: {e}"),
        }
    }
    let _ = std::fs::remove_file(&socket);
    svc.shutdown();
    eprintln!("parsl-serve: drained; exiting");
    Ok(())
}

fn handle_conn(svc: &std::sync::Arc<Service>, mut stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let response = match proto::read_frame(&mut stream) {
        Ok(Some(req)) => dispatch(svc, &req),
        Ok(None) => return,
        Err(e) => err_frame(&e, None),
    };
    let _ = proto::write_frame(&mut stream, &response);
}

fn err_frame(message: &str, diagnostics: Option<&str>) -> Json {
    let mut fields = vec![("ok", Json::Bool(false)), ("error", s(message))];
    if let Some(d) = diagnostics {
        fields.push(("diagnostics", s(d)));
    }
    obj(fields)
}

fn dispatch(svc: &std::sync::Arc<Service>, req: &Json) -> Json {
    match req.get("cmd").and_then(Json::as_str) {
        Some("ping") => obj(vec![("ok", Json::Bool(true))]),
        Some("submit") => cmd_submit(svc, req),
        Some("status") => cmd_status(svc, req),
        Some("logs") => cmd_logs(svc, req),
        Some("cancel") => match req_run(req) {
            Ok(id) => obj(vec![
                ("ok", Json::Bool(true)),
                ("cancelled", Json::Bool(svc.cancel(id))),
            ]),
            Err(e) => err_frame(&e, None),
        },
        Some("drain") => {
            svc.drain();
            obj(vec![
                ("ok", Json::Bool(true)),
                ("active", Json::Num(svc.active_runs() as f64)),
                ("queued", Json::Num(svc.queued_runs() as f64)),
            ])
        }
        other => err_frame(&format!("unknown command {other:?}"), None),
    }
}

fn req_run(req: &Json) -> Result<u64, String> {
    req.get("run")
        .and_then(Json::as_u64)
        .ok_or_else(|| "request needs a numeric `run` field".to_string())
}

fn cmd_submit(svc: &std::sync::Arc<Service>, req: &Json) -> Json {
    let Some(cwl) = req.get("cwl").and_then(Json::as_str) else {
        return err_frame("submit needs a `cwl` path", None);
    };
    let inputs = match req.get("inputs").map(proto::json_to_yaml) {
        Some(yamlite::Value::Map(m)) => m,
        Some(yamlite::Value::Null) | None => yamlite::Map::new(),
        Some(_) => return err_frame("`inputs` must be an object", None),
    };
    let tenant = req
        .get("tenant")
        .and_then(Json::as_str)
        .unwrap_or("default");
    match svc.submit(Path::new(cwl), &inputs, tenant) {
        Ok(id) => {
            let run_dir = svc
                .status(id)
                .map(|snap| snap.run_dir.display().to_string())
                .unwrap_or_default();
            obj(vec![
                ("ok", Json::Bool(true)),
                ("run", Json::Num(id as f64)),
                ("run_dir", s(run_dir)),
            ])
        }
        Err(SubmitError::Rejected {
            summary,
            diagnostics,
        }) => err_frame(&summary, Some(&diagnostics)),
        Err(e) => err_frame(&e.to_string(), None),
    }
}

fn snapshot_json(snap: &RunSnapshot) -> Json {
    let mut fields = vec![
        ("run", Json::Num(snap.id as f64)),
        ("tenant", s(snap.tenant.clone())),
        ("state", s(snap.state.as_str())),
        ("cwl", s(snap.cwl.display().to_string())),
        ("run_dir", s(snap.run_dir.display().to_string())),
        ("replayed", Json::Num(snap.replayed as f64)),
        ("appended", Json::Num(snap.appended as f64)),
    ];
    if let Some(e) = &snap.error {
        fields.push(("error", s(e.clone())));
    }
    if let Some(out) = &snap.outputs {
        fields.push((
            "outputs",
            proto::yaml_to_json(&yamlite::Value::Map(out.clone())),
        ));
    }
    obj(fields)
}

fn cmd_status(svc: &std::sync::Arc<Service>, req: &Json) -> Json {
    let snaps: Vec<RunSnapshot> = match req.get("run").and_then(Json::as_u64) {
        Some(id) => svc.status(id).into_iter().collect(),
        None => svc.list(),
    };
    obj(vec![
        ("ok", Json::Bool(true)),
        ("runs", Json::Arr(snaps.iter().map(snapshot_json).collect())),
        ("active", Json::Num(svc.active_runs() as f64)),
        ("queued", Json::Num(svc.queued_runs() as f64)),
    ])
}

fn cmd_logs(svc: &std::sync::Arc<Service>, req: &Json) -> Json {
    let id = match req_run(req) {
        Ok(id) => id,
        Err(e) => return err_frame(&e, None),
    };
    let Some(snap) = svc.status(id) else {
        return err_frame(&format!("unknown run {id}"), None);
    };
    let mut files = Vec::new();
    collect_files(&snap.run_dir, &mut files, 200);
    files.sort();
    let mut base = snapshot_json(&snap);
    if let Json::Obj(m) = &mut base {
        m.insert("ok".to_string(), Json::Bool(true));
        m.insert(
            "files".to_string(),
            Json::Arr(files.into_iter().map(Json::Str).collect()),
        );
    }
    base
}

/// Recursively list files under `dir` (relative paths), bounded.
fn collect_files(dir: &Path, out: &mut Vec<String>, cap: usize) {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<String>, cap: usize) {
        if out.len() >= cap {
            return;
        }
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            if out.len() >= cap {
                return;
            }
            let path = entry.path();
            if path.is_dir() {
                walk(&path, root, out, cap);
            } else if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.display().to_string());
            }
        }
    }
    walk(dir, dir, out, cap);
}

/// `true` when every run in `snaps` is terminal (the client's drain-wait
/// predicate).
pub fn all_terminal(snaps: &[RunSnapshot]) -> bool {
    snaps.iter().all(|r| r.state.is_terminal())
}

/// Resolve a config file to the daemon socket it implies (client side).
pub fn socket_for_config(config: &RunnerConfig) -> PathBuf {
    config.serve.socket_path(&config.workdir)
}
