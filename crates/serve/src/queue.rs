//! Weighted fair-share dispatch across concurrent runs.
//!
//! The daemon's kernel is one shared pool of executor slots; without a
//! scheduler in front, whichever run submits first floods the pool and
//! every later run head-of-line blocks behind it. [`FairShare`] implements
//! [`parsl::DispatchGate`] with *deficit round-robin* over tenants: each
//! tenant accumulates credit proportional to its configured weight every
//! scheduling round and spends one credit per dispatched task, so over any
//! window the slot share converges to the weight ratio — a tenant with
//! weight 3 gets three tasks dispatched for every one of a weight-1
//! tenant, regardless of submission order or run size.
//!
//! The gate only *orders* ready tasks; dependency resolution, memoization,
//! and retries stay in the kernel. Aborted (cancelled-run) tasks never
//! occupy a slot.

use parking_lot::Mutex;
use parsl::{DispatchGate, GatedLaunch, RunTag};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Deficit round-robin over per-tenant FIFO queues. Generic over the
/// queued item so the arithmetic is unit-testable without a live kernel.
struct Drr<T> {
    queues: HashMap<Arc<str>, VecDeque<T>>,
    /// Round-robin ring of tenants with queued work, in arrival order.
    ring: Vec<Arc<str>>,
    deficits: HashMap<Arc<str>, f64>,
    weights: HashMap<String, f64>,
    default_weight: f64,
    cursor: usize,
    /// Whether the tenant at `cursor` already received this visit's
    /// quantum. Credit arrives once per visit; without the flag a
    /// weight-1 tenant would re-credit after every dispatch and
    /// monopolize the cursor.
    credited: bool,
}

impl<T> Drr<T> {
    fn new(weights: Vec<(String, f64)>, default_weight: f64) -> Self {
        Self {
            queues: HashMap::new(),
            ring: Vec::new(),
            deficits: HashMap::new(),
            weights: weights.into_iter().collect(),
            default_weight,
            cursor: 0,
            credited: false,
        }
    }

    fn weight(&self, tenant: &str) -> f64 {
        let w = self
            .weights
            .get(tenant)
            .copied()
            .unwrap_or(self.default_weight);
        if w.is_finite() && w > 0.0 {
            w
        } else {
            1.0
        }
    }

    fn push(&mut self, tenant: Arc<str>, item: T) {
        if (!self.queues.contains_key(&tenant) || self.queues[&tenant].is_empty())
            && !self.ring.contains(&tenant)
        {
            self.ring.push(tenant.clone());
        }
        self.queues.entry(tenant).or_default().push_back(item);
    }

    fn len(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Pop the next item under DRR. A visit credits the tenant its weight
    /// exactly once; a dispatch costs 1, and the cursor stays on a tenant
    /// only while paid-for credit remains — so a weight-2 tenant sends
    /// two tasks per round to a weight-1 tenant's one, and a weight-¼
    /// tenant sends one every fourth round (never starved, never more).
    fn next(&mut self) -> Option<T> {
        loop {
            if self.ring.is_empty() {
                return None;
            }
            if self.cursor >= self.ring.len() {
                self.cursor = 0;
            }
            let tenant = self.ring[self.cursor].clone();
            let queue_empty = self.queues.get(&tenant).is_none_or(VecDeque::is_empty);
            if queue_empty {
                // Tenant drained: leave the ring and forfeit banked
                // credit (an idle tenant must not burst later).
                self.ring.remove(self.cursor);
                self.deficits.remove(&tenant);
                self.credited = false;
                continue;
            }
            let weight = self.weight(&tenant);
            let deficit = self.deficits.entry(tenant.clone()).or_insert(0.0);
            if !self.credited {
                *deficit += weight;
                self.credited = true;
            }
            if *deficit >= 1.0 {
                *deficit -= 1.0;
                if *deficit < 1.0 {
                    // Credit spent: the next call moves on.
                    self.cursor += 1;
                    self.credited = false;
                }
                let item = self
                    .queues
                    .get_mut(&tenant)
                    .and_then(VecDeque::pop_front)
                    .expect("non-empty checked above");
                return Some(item);
            }
            self.cursor += 1;
            self.credited = false;
        }
    }
}

struct Waiting {
    launch: GatedLaunch,
    since: Instant,
}

struct Inner {
    drr: Drr<Waiting>,
    in_flight: usize,
    cancelled: HashSet<u64>,
}

/// The daemon's [`DispatchGate`]: admission-passed tasks wait here until a
/// slot frees and DRR picks their tenant.
pub struct FairShare {
    inner: Mutex<Inner>,
    max_parallel: usize,
    /// Queue-wait histogram (µs), bound after the kernel exists.
    queue_wait: Mutex<Option<Arc<obs::Histogram>>>,
}

impl FairShare {
    /// `max_parallel` should match the executor's slot count: lower wastes
    /// capacity, higher just moves queueing into the executor.
    pub fn new(max_parallel: usize, weights: Vec<(String, f64)>, default_weight: f64) -> Self {
        Self {
            inner: Mutex::new(Inner {
                drr: Drr::new(weights, default_weight),
                in_flight: 0,
                cancelled: HashSet::new(),
            }),
            max_parallel: max_parallel.max(1),
            queue_wait: Mutex::new(None),
        }
    }

    /// Record queue-wait latencies to `h` (the daemon binds
    /// `serve.queue_wait_us` from the kernel's observability).
    pub fn bind_queue_wait(&self, h: Arc<obs::Histogram>) {
        *self.queue_wait.lock() = Some(h);
    }

    /// Tasks currently waiting for a slot.
    pub fn queued(&self) -> usize {
        self.inner.lock().drr.len()
    }

    /// Tasks currently dispatched and not yet terminal.
    pub fn in_flight(&self) -> usize {
        self.inner.lock().in_flight
    }

    /// Cancel `run`: queued tasks abort now, later-arriving ones abort at
    /// the gate. In-flight tasks run to completion (the kernel has no
    /// preemption); their dependents then abort here. Returns how many
    /// queued tasks were aborted.
    pub fn cancel_run(&self, run: u64) -> usize {
        let mut doomed = Vec::new();
        {
            let mut g = self.inner.lock();
            g.cancelled.insert(run);
            for q in g.drr.queues.values_mut() {
                let mut keep = VecDeque::with_capacity(q.len());
                while let Some(w) = q.pop_front() {
                    if w.launch.tag().run == run {
                        doomed.push(w);
                    } else {
                        keep.push_back(w);
                    }
                }
                *q = keep;
            }
        }
        let n = doomed.len();
        for w in doomed {
            w.launch.abort("run cancelled");
        }
        self.pump();
        n
    }

    /// Drop a finished run from the cancelled set (ids are never reused,
    /// but the set should not grow for the daemon's lifetime).
    pub fn forget_run(&self, run: u64) {
        self.inner.lock().cancelled.remove(&run);
    }

    /// Dispatch while slots are free. Launches happen outside the lock:
    /// `launch()` can synchronously reach `finished()` (memo-fast tasks),
    /// which takes the lock again.
    fn pump(&self) {
        loop {
            let mut batch = Vec::new();
            {
                let mut g = self.inner.lock();
                while g.in_flight < self.max_parallel {
                    match g.drr.next() {
                        Some(w) => {
                            g.in_flight += 1;
                            batch.push(w);
                        }
                        None => break,
                    }
                }
            }
            if batch.is_empty() {
                return;
            }
            let hist = self.queue_wait.lock().clone();
            for w in batch {
                if let Some(h) = &hist {
                    h.record(w.since.elapsed().as_micros() as u64);
                }
                w.launch.launch();
            }
        }
    }
}

impl DispatchGate for FairShare {
    fn ready(&self, launch: GatedLaunch) {
        let doomed = {
            let mut g = self.inner.lock();
            if g.cancelled.contains(&launch.tag().run) {
                Some(launch)
            } else {
                let tenant = launch.tag().tenant.clone();
                g.drr.push(
                    tenant,
                    Waiting {
                        launch,
                        since: Instant::now(),
                    },
                );
                None
            }
        };
        match doomed {
            Some(l) => l.abort("run cancelled"),
            None => self.pump(),
        }
    }

    fn finished(&self, _tag: &RunTag) {
        self.inner.lock().in_flight -= 1;
        self.pump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drr(weights: &[(&str, f64)]) -> Drr<&'static str> {
        Drr::new(
            weights.iter().map(|(n, w)| (n.to_string(), *w)).collect(),
            1.0,
        )
    }

    #[test]
    fn drr_respects_weight_ratios() {
        let mut q = drr(&[("a", 2.0), ("b", 1.0)]);
        let a: Arc<str> = Arc::from("a");
        let b: Arc<str> = Arc::from("b");
        for _ in 0..30 {
            q.push(a.clone(), "a");
            q.push(b.clone(), "b");
        }
        let first: Vec<_> = (0..30).map(|_| q.next().unwrap()).collect();
        let a_count = first.iter().filter(|s| **s == "a").count();
        // Weight 2:1 → two thirds of any window goes to `a`, ±1 for
        // round boundaries.
        assert!((19..=21).contains(&a_count), "a got {a_count}/30");
        // Everything still drains.
        let mut rest = 0;
        while q.next().is_some() {
            rest += 1;
        }
        assert_eq!(rest, 30);
        assert!(q.next().is_none());
    }

    #[test]
    fn drr_fractional_weights_starve_nobody() {
        let mut q = drr(&[("slow", 0.25), ("fast", 1.0)]);
        let slow: Arc<str> = Arc::from("slow");
        let fast: Arc<str> = Arc::from("fast");
        for _ in 0..20 {
            q.push(slow.clone(), "slow");
            q.push(fast.clone(), "fast");
        }
        let window: Vec<_> = (0..10).map(|_| q.next().unwrap()).collect();
        assert!(
            window.contains(&"slow"),
            "fractional weight starved: {window:?}"
        );
        let slow_count = window.iter().filter(|s| **s == "slow").count();
        assert!(slow_count <= 3, "slow overserved: {window:?}");
    }

    #[test]
    fn drr_sole_tenant_gets_everything() {
        let mut q = drr(&[]);
        let t: Arc<str> = Arc::from("only");
        for i in 0..5 {
            q.push(t.clone(), ["v0", "v1", "v2", "v3", "v4"][i]);
        }
        let order: Vec<_> = (0..5).map(|_| q.next().unwrap()).collect();
        assert_eq!(order, ["v0", "v1", "v2", "v3", "v4"], "FIFO within tenant");
    }

    #[test]
    fn drr_idle_tenant_banks_no_credit() {
        let mut q = drr(&[("a", 5.0), ("b", 1.0)]);
        let a: Arc<str> = Arc::from("a");
        let b: Arc<str> = Arc::from("b");
        q.push(a.clone(), "a");
        assert_eq!(q.next(), Some("a"));
        assert!(q.next().is_none());
        // `a` was idle while `b` worked; when it returns it competes with
        // fresh credit, not five rounds of banked credit beyond a burst.
        for _ in 0..8 {
            q.push(b.clone(), "b");
        }
        for _ in 0..4 {
            assert_eq!(q.next(), Some("b"));
        }
        q.push(a.clone(), "a");
        let next_two = [q.next().unwrap(), q.next().unwrap()];
        assert!(
            next_two.contains(&"a"),
            "returning tenant served promptly, got {next_two:?}"
        );
    }
}
