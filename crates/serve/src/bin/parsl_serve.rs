//! `parsl-serve` — the multi-run workflow service daemon.
//!
//! ```text
//! parsl-serve <config.yml> [--resume]
//! ```
//!
//! Serves workflow submissions over the Unix socket configured in the
//! `serve:` block (default `<run.workdir>/serve.sock`). Submit and manage
//! runs with `parsl-cwl submit|status|logs|cancel|drain <config.yml> …`.

use std::process::ExitCode;

const USAGE: &str = "usage: parsl-serve <config.yml> [--resume]

options:
  --resume    re-queue every non-terminal run found under <workdir>/runs,
              replaying completed tasks from their checkpoint journals
  --help      print this message

The daemon exits after a completed `parsl-cwl drain`, or immediately on
SIGTERM (journals flushed; interrupted runs resume with --resume).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("parsl-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut config_path = None;
    let mut resume = false;
    for arg in args {
        match arg.as_str() {
            "--help" => {
                println!("{USAGE}");
                return Ok(());
            }
            "--resume" => resume = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?}\n{USAGE}"));
            }
            path if config_path.is_none() => config_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}\n{USAGE}")),
        }
    }
    let config_path = config_path.ok_or(USAGE)?;
    let config = cwl_parsl::load_config_file(&config_path)?;
    serve::serve_daemon(config, resume)
}
