//! The multi-run service core: one warm kernel, many workflow runs.
//!
//! [`Service`] owns the daemon's long-lived machinery — one
//! `DataFlowKernel`/executor pool, one content-addressed [`Stager`], one
//! observability registry — and multiplexes admitted submissions over it.
//! Each submission becomes a [`RunRecord`] with its own run directory,
//! lineage namespace (`<tenant>/run-<id>`), and checkpoint journal; tasks
//! carry a [`parsl::RunTag`] so the shared memo table namespaces
//! fingerprints per workflow while still deduplicating identical work
//! across runs.
//!
//! The socket protocol layer ([`crate::daemon`]) is a thin front end over
//! this type; integration tests drive `Service` directly.

use crate::queue::FairShare;
use crate::run::{next_run_id, scan_runs, RunRecord, RunState};
use cwl::loader::CwlDocument;
use cwl_parsl::config::{CheckpointMode, CheckpointSettings, RunnerConfig, ServeSettings};
use cwl_parsl::{checkpoint, CwlApp, CwlAppOptions, ParslWorkflowRunner};
use cwlexec::StagingSettings;
use datastore::Stager;
use parking_lot::{Condvar, Mutex};
use parsl::{DataFlowKernel, RunTag};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use yamlite::{Map, Value};

/// Why a submission was turned away at the door.
#[derive(Debug)]
pub enum SubmitError {
    /// The daemon is draining: no new work.
    Draining,
    /// The run queue is at `serve.queue_cap`.
    QueueFull(usize),
    /// Static admission control rejected the document (E032
    /// unschedulable, broken wiring, …). `diagnostics` is the full
    /// rendered report, same text a standalone `parsl-cwl` run prints.
    Rejected {
        summary: String,
        diagnostics: String,
    },
    /// Everything else (I/O, bad paths).
    Internal(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Draining => write!(f, "daemon is draining; not accepting submissions"),
            Self::QueueFull(cap) => write!(f, "run queue is full ({cap} queued)"),
            Self::Rejected { summary, .. } => write!(f, "{summary}"),
            Self::Internal(e) => write!(f, "{e}"),
        }
    }
}

/// A point-in-time view of one run, safe to serialize.
#[derive(Clone, Debug)]
pub struct RunSnapshot {
    pub id: u64,
    pub tenant: String,
    pub state: RunState,
    pub cwl: PathBuf,
    pub run_dir: PathBuf,
    pub error: Option<String>,
    pub outputs: Option<Map>,
    pub replayed: usize,
    pub appended: usize,
}

/// The long-running workflow service (see module docs).
pub struct Service {
    dfk: Arc<DataFlowKernel>,
    gate: Arc<FairShare>,
    stager: Arc<Stager>,
    staging: StagingSettings,
    runs_dir: PathBuf,
    serve: ServeSettings,
    builtin_tools: bool,
    pre_run_check: bool,
    strict_check: bool,
    capacity: cwl::analyze::ExecutorCapacity,
    runs: Mutex<BTreeMap<u64, RunRecord>>,
    /// Signalled on every run state transition (used by `wait`).
    changed: Condvar,
    active: AtomicUsize,
    draining: AtomicBool,
    queued_metric: Arc<obs::Counter>,
    admitted_metric: Arc<obs::Counter>,
    rejected_metric: Arc<obs::Counter>,
    active_gauge: Arc<obs::Gauge>,
}

impl Service {
    /// Boot the service from a loaded config. With `resume`, every
    /// non-terminal run found under `<workdir>/runs` is re-queued; its
    /// checkpoint journal replays completed tasks when it restarts.
    pub fn start(config: RunnerConfig, resume: bool) -> Result<Arc<Self>, String> {
        let capacity = cwl_parsl::lint::executor_capacity(&config.parsl);
        let gate = Arc::new(FairShare::new(
            capacity.slots,
            config.serve.tenants.clone(),
            config.serve.default_weight,
        ));
        let parsl = config.parsl.with_gate(gate.clone());
        let dfk = DataFlowKernel::try_new(parsl)?;
        gate.bind_queue_wait(
            dfk.observability()
                .histogram(obs::names::SERVE_QUEUE_WAIT_US),
        );
        std::fs::create_dir_all(&config.workdir)
            .map_err(|e| format!("workdir {}: {e}", config.workdir.display()))?;
        let stager = config.staging.build(&config.workdir)?;
        let runs_dir = config.workdir.join("runs");
        std::fs::create_dir_all(&runs_dir)
            .map_err(|e| format!("runs dir {}: {e}", runs_dir.display()))?;

        let obs = dfk.observability();
        let svc = Arc::new(Self {
            queued_metric: obs.counter(obs::names::SERVE_QUEUED),
            admitted_metric: obs.counter(obs::names::SERVE_ADMITTED),
            rejected_metric: obs.counter(obs::names::SERVE_REJECTED),
            active_gauge: obs.gauge(obs::names::SERVE_ACTIVE),
            dfk,
            gate,
            stager,
            staging: config.staging,
            runs_dir,
            serve: config.serve,
            builtin_tools: config.builtin_tools,
            pre_run_check: config.pre_run_check,
            strict_check: config.strict_check,
            capacity,
            runs: Mutex::new(BTreeMap::new()),
            changed: Condvar::new(),
            active: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        });

        if resume {
            let mut requeued = 0usize;
            {
                let mut runs = svc.runs.lock();
                for mut rec in scan_runs(&svc.runs_dir) {
                    if rec.state.is_terminal() {
                        runs.insert(rec.id, rec);
                        continue;
                    }
                    rec.state = RunState::Queued;
                    let _ = rec.save();
                    requeued += 1;
                    runs.insert(rec.id, rec);
                }
            }
            if requeued > 0 {
                svc.queued_metric.add(requeued as u64);
                svc.pump();
            }
        }
        Ok(svc)
    }

    /// The kernel, for metrics/trace inspection.
    pub fn kernel(&self) -> &Arc<DataFlowKernel> {
        &self.dfk
    }

    /// The shared data plane.
    pub fn stager(&self) -> &Arc<Stager> {
        &self.stager
    }

    /// Admit a workflow submission. Admission control mirrors the
    /// standalone runner's pre-run gate: the static analyzer runs with
    /// this daemon's executor capacity, so an E032-unschedulable document
    /// is rejected here, at submit time, with the same diagnostics a
    /// standalone run would print.
    pub fn submit(
        self: &Arc<Self>,
        cwl: &Path,
        inputs: &Map,
        tenant: &str,
    ) -> Result<u64, SubmitError> {
        if self.draining.load(Ordering::Acquire) {
            return Err(SubmitError::Draining);
        }
        {
            let runs = self.runs.lock();
            let queued = runs
                .values()
                .filter(|r| r.state == RunState::Queued)
                .count();
            if queued >= self.serve.queue_cap {
                return Err(SubmitError::QueueFull(queued));
            }
        }
        let cwl = cwl
            .canonicalize()
            .map_err(|e| SubmitError::Internal(format!("{}: {e}", cwl.display())))?;
        if self.pre_run_check {
            let opts = cwl::analyze::AnalyzeOptions {
                capacity: Some(self.capacity.clone()),
            };
            let report = cwl::analyze::analyze_file_opts(&cwl, &opts);
            if !report.is_clean(self.strict_check) {
                self.rejected_metric.add(1);
                return Err(SubmitError::Rejected {
                    summary: format!(
                        "admission rejected: {} error(s), {} warning(s)",
                        report.error_count(),
                        report.warning_count()
                    ),
                    diagnostics: report.render_text().trim_end().to_string(),
                });
            }
        }
        let id = next_run_id(&self.runs_dir).map_err(SubmitError::Internal)?;
        let run_dir = self.runs_dir.join(format!("run-{id}"));
        std::fs::create_dir_all(&run_dir)
            .map_err(|e| SubmitError::Internal(format!("{}: {e}", run_dir.display())))?;
        let rec = RunRecord {
            id,
            tenant: tenant.to_string(),
            cwl,
            inputs: inputs.clone(),
            state: RunState::Queued,
            run_dir,
            error: None,
            outputs: None,
            replayed: 0,
            appended: 0,
        };
        rec.save().map_err(SubmitError::Internal)?;
        self.runs.lock().insert(id, rec);
        self.queued_metric.add(1);
        self.admitted_metric.add(1);
        self.pump();
        Ok(id)
    }

    /// Start queued runs while in-flight slots remain, lowest id first.
    fn pump(self: &Arc<Self>) {
        loop {
            let next = {
                let mut runs = self.runs.lock();
                if self.active.load(Ordering::Acquire) >= self.serve.max_in_flight {
                    None
                } else {
                    match runs.values_mut().find(|r| r.state == RunState::Queued) {
                        Some(rec) => {
                            rec.state = RunState::Running;
                            let _ = rec.save();
                            // Claimed under the lock so two pumps never
                            // double-start one run or oversubscribe.
                            self.active.fetch_add(1, Ordering::AcqRel);
                            Some(rec.id)
                        }
                        None => None,
                    }
                }
            };
            let Some(id) = next else { return };
            self.active_gauge
                .set(self.active.load(Ordering::Acquire) as i64);
            let svc = self.clone();
            std::thread::spawn(move || {
                let result = svc.execute(id);
                svc.finish(id, result);
                svc.active.fetch_sub(1, Ordering::AcqRel);
                svc.active_gauge
                    .set(svc.active.load(Ordering::Acquire) as i64);
                svc.changed.notify_all();
                svc.pump();
            });
        }
    }

    /// Run one admitted workflow on the shared kernel. Blocks (on its
    /// worker thread) until every task finishes.
    fn execute(self: &Arc<Self>, id: u64) -> Result<Map, String> {
        let (cwl, inputs, tenant, run_dir) = {
            let runs = self.runs.lock();
            let rec = runs.get(&id).ok_or("run vanished")?;
            (
                rec.cwl.clone(),
                rec.inputs.clone(),
                rec.tenant.clone(),
                rec.run_dir.clone(),
            )
        };
        // Per-run durable journal, bound to the workflow's run hash so a
        // resume replays only journals that match document + inputs.
        let hash = checkpoint::run_hash(&cwl, &inputs)?;
        let ckpt_dir = run_dir.join("ckpt");
        let settings = CheckpointSettings {
            mode: CheckpointMode::TaskExit,
            dir: Some(ckpt_dir.clone()),
            period: Duration::from_millis(500),
        };
        let resume_from = ckpt_dir
            .join(checkpoint::JOURNAL_FILE)
            .exists()
            .then_some(ckpt_dir.as_path());
        let label = cwl
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let prepared = checkpoint::prepare(&settings, &run_dir, resume_from, hash, &label)?
            .ok_or("internal: per-run checkpointing must be on")?;
        self.dfk.attach_run_journal(id, prepared.journal.clone());
        self.dfk.seed_run_checkpoint(id, &prepared.seed);

        let tag = RunTag {
            run: id,
            tenant: Arc::from(tenant.as_str()),
            memo_ns: hash,
        };
        let mut options = CwlAppOptions::in_dir(&run_dir)
            .with_staging(self.staging.clone())
            .with_stager(self.stager.clone())
            .with_run_tag(tag);
        if self.builtin_tools {
            options = options.with_builtin_tools();
        }
        let doc = cwl::loader::load_file(&cwl)?;
        match doc {
            CwlDocument::Tool(tool) => {
                let app = CwlApp::from_tool(
                    &self.dfk,
                    tool,
                    cwl.file_stem().map(|s| s.to_string_lossy().into_owned()),
                    options,
                )?;
                let mut invocation = app.call();
                for (k, v) in inputs.iter() {
                    invocation = invocation.arg(k.to_string(), v.clone());
                }
                let run = invocation.submit()?;
                match run.future.result() {
                    Ok(Value::Map(m)) => Ok(m),
                    Ok(other) => Err(format!("unexpected tool result {other:?}")),
                    Err(e) => Err(e.to_string()),
                }
            }
            CwlDocument::Workflow(_) => {
                let runner = ParslWorkflowRunner::new(&self.dfk, options);
                runner.run(&cwl, &inputs)
            }
        }
    }

    /// Record a run's terminal state, flush + detach its journal.
    fn finish(&self, id: u64, result: Result<Map, String>) {
        let stats = self.dfk.detach_run_journal(id).unwrap_or_default();
        self.gate.forget_run(id);
        let mut runs = self.runs.lock();
        let Some(rec) = runs.get_mut(&id) else { return };
        rec.replayed = stats.replayed;
        rec.appended = stats.appended;
        match result {
            _ if rec.state == RunState::Cancelled => {
                // Keep the client's verdict; the error (if any) explains
                // where the abort landed.
                if let Err(e) = result {
                    rec.error = Some(e);
                }
            }
            Ok(outputs) => {
                rec.state = RunState::Completed;
                rec.outputs = Some(outputs);
            }
            Err(e) => {
                rec.state = RunState::Failed;
                rec.error = Some(e);
            }
        }
        let _ = rec.save();
    }

    /// Snapshot one run.
    pub fn status(&self, id: u64) -> Option<RunSnapshot> {
        let runs = self.runs.lock();
        runs.get(&id).map(|r| self.snapshot(r))
    }

    /// Snapshot all runs, id order.
    pub fn list(&self) -> Vec<RunSnapshot> {
        let runs = self.runs.lock();
        runs.values().map(|r| self.snapshot(r)).collect()
    }

    fn snapshot(&self, rec: &RunRecord) -> RunSnapshot {
        // A running run's checkpoint stats live on the kernel until
        // `finish` folds them into the record.
        let (replayed, appended) = match self.dfk.run_checkpoint_stats(rec.id) {
            Some(s) if !rec.state.is_terminal() => (s.replayed, s.appended),
            _ => (rec.replayed, rec.appended),
        };
        RunSnapshot {
            id: rec.id,
            tenant: rec.tenant.clone(),
            state: rec.state,
            cwl: rec.cwl.clone(),
            run_dir: rec.run_dir.clone(),
            error: rec.error.clone(),
            outputs: rec.outputs.clone(),
            replayed,
            appended,
        }
    }

    /// Runs waiting for an in-flight slot.
    pub fn queued_runs(&self) -> usize {
        self.runs
            .lock()
            .values()
            .filter(|r| r.state == RunState::Queued)
            .count()
    }

    /// Runs currently executing.
    pub fn active_runs(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Block until `id` reaches a terminal state.
    pub fn wait(&self, id: u64, timeout: Duration) -> Result<RunSnapshot, String> {
        let deadline = Instant::now() + timeout;
        let mut runs = self.runs.lock();
        loop {
            match runs.get(&id) {
                None => return Err(format!("unknown run {id}")),
                Some(rec) if rec.state.is_terminal() => {
                    let snap = self.snapshot(rec);
                    return Ok(snap);
                }
                Some(_) => {}
            }
            if self.changed.wait_until(&mut runs, deadline).timed_out() {
                return Err(format!("run {id} still not terminal after {timeout:?}"));
            }
        }
    }

    /// Cancel a run. Queued runs never start; running runs abort their
    /// gated tasks (in-flight tasks finish — there is no preemption).
    pub fn cancel(&self, id: u64) -> bool {
        let found = {
            let mut runs = self.runs.lock();
            match runs.get_mut(&id) {
                None => return false,
                Some(rec) if rec.state.is_terminal() => return true,
                Some(rec) => {
                    rec.state = RunState::Cancelled;
                    rec.error
                        .get_or_insert_with(|| "cancelled by client".to_string());
                    let _ = rec.save();
                    true
                }
            }
        };
        self.gate.cancel_run(id);
        self.changed.notify_all();
        found
    }

    /// Stop admitting; in-flight and queued runs still finish.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// True once a drain has nothing left to finish.
    pub fn drained(&self) -> bool {
        self.draining() && self.active_runs() == 0 && self.queued_runs() == 0
    }

    /// Fast stop (SIGTERM path): flush every active run's journal and
    /// return without waiting. Manifests keep their `running` state, so a
    /// restart with `--resume` re-queues them; the synced journals replay
    /// everything that completed.
    pub fn fast_stop(&self) {
        let ids: Vec<u64> = self.runs.lock().keys().copied().collect();
        for id in ids {
            let _ = self.dfk.detach_run_journal(id);
        }
    }

    /// Graceful shutdown: drain, wait for every run to finish, fold the
    /// data-plane stats into the trace, and shut the kernel down (which
    /// exports the trace for `parsl-trace`).
    pub fn shutdown(&self) {
        self.drain();
        {
            let mut runs = self.runs.lock();
            while runs
                .values()
                .any(|r| matches!(r.state, RunState::Queued | RunState::Running))
            {
                self.changed.wait_for(&mut runs, Duration::from_millis(200));
            }
        }
        cwlexec::publish_stage_stats(self.dfk.observability(), self.stager.stats());
        self.dfk.shutdown();
    }
}
