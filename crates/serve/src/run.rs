//! Run records and their on-disk manifests.
//!
//! Every admitted submission becomes a [`RunRecord`] with a private run
//! directory under `<workdir>/runs/run-<id>`. The record's durable half is
//! `manifest.yml` in that directory, rewritten (tmp + rename, so a crash
//! never leaves a torn manifest) on every state transition. After a daemon
//! crash or SIGTERM, `--resume` re-admits every run whose manifest is not
//! terminal; the run's own checkpoint journal then replays the completed
//! tasks.
//!
//! Run ids come from a persisted monotonic counter (`.run-seq` in the runs
//! dir), never from the pid — a restarted daemon must not mint an id an
//! older incarnation already used, or the new run would collide with the
//! old run's directory and journal.

use std::path::{Path, PathBuf};
use yamlite::{Map, Value};

/// Lifecycle of one admitted submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// Admitted, waiting for an in-flight slot.
    Queued,
    /// Executing on the shared kernel.
    Running,
    /// All outputs materialized.
    Completed,
    /// Execution failed (admission failures are rejected, not recorded).
    Failed,
    /// Cancelled by the client; queued tasks were aborted.
    Cancelled,
}

impl RunState {
    /// Terminal states survive restarts untouched; the rest resume.
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Completed | Self::Failed | Self::Cancelled)
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Completed => "completed",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "queued" => Self::Queued,
            "running" => Self::Running,
            "completed" => Self::Completed,
            "failed" => Self::Failed,
            "cancelled" => Self::Cancelled,
            _ => return None,
        })
    }
}

/// One submission's full state, as the daemon tracks it in memory.
#[derive(Clone, Debug)]
pub struct RunRecord {
    pub id: u64,
    pub tenant: String,
    /// Absolute path of the submitted CWL document.
    pub cwl: PathBuf,
    pub inputs: Map,
    pub state: RunState,
    pub run_dir: PathBuf,
    pub error: Option<String>,
    pub outputs: Option<Map>,
    /// Checkpoint activity, filled in at run end.
    pub replayed: usize,
    pub appended: usize,
}

impl RunRecord {
    pub fn manifest_path(&self) -> PathBuf {
        self.run_dir.join("manifest.yml")
    }

    /// Persist the record. Atomic: a reader (or the resuming daemon)
    /// sees the old manifest or the new one, never a prefix.
    pub fn save(&self) -> Result<(), String> {
        let mut m = Map::new();
        m.insert("id", Value::Int(self.id as i64));
        m.insert("tenant", Value::Str(self.tenant.clone()));
        m.insert("cwl", Value::Str(self.cwl.display().to_string()));
        m.insert("state", Value::Str(self.state.as_str().to_string()));
        if let Some(e) = &self.error {
            m.insert("error", Value::Str(e.clone()));
        }
        m.insert("inputs", Value::Map(self.inputs.clone()));
        if let Some(out) = &self.outputs {
            m.insert("outputs", Value::Map(out.clone()));
        }
        m.insert("replayed", Value::Int(self.replayed as i64));
        m.insert("appended", Value::Int(self.appended as i64));
        let text = yamlite::to_string(&Value::Map(m));
        let path = self.manifest_path();
        let tmp = path.with_extension("yml.tmp");
        std::fs::write(&tmp, text).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("renaming {}: {e}", path.display()))
    }

    /// Load a record back from a run directory's manifest.
    pub fn load(run_dir: &Path) -> Result<Self, String> {
        let path = run_dir.join("manifest.yml");
        let v = yamlite::parse_file(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let id = v
            .get("id")
            .and_then(Value::as_int)
            .ok_or_else(|| format!("{}: missing id", path.display()))? as u64;
        let state = v
            .get("state")
            .and_then(Value::as_str)
            .and_then(RunState::parse)
            .ok_or_else(|| format!("{}: bad state", path.display()))?;
        Ok(Self {
            id,
            tenant: v
                .get("tenant")
                .and_then(Value::as_str)
                .unwrap_or("default")
                .to_string(),
            cwl: PathBuf::from(v.get("cwl").and_then(Value::as_str).unwrap_or_default()),
            inputs: v
                .get("inputs")
                .and_then(Value::as_map)
                .cloned()
                .unwrap_or_default(),
            state,
            run_dir: run_dir.to_path_buf(),
            error: v.get("error").and_then(Value::as_str).map(str::to_string),
            outputs: v.get("outputs").and_then(Value::as_map).cloned(),
            replayed: v.get("replayed").and_then(Value::as_int).unwrap_or(0) as usize,
            appended: v.get("appended").and_then(Value::as_int).unwrap_or(0) as usize,
        })
    }
}

/// Allocate the next run id from the persisted counter, surviving daemon
/// restarts. The counter is advanced *before* the id is used, so a crash
/// between allocation and run-dir creation burns an id instead of
/// reusing one.
pub fn next_run_id(runs_dir: &Path) -> Result<u64, String> {
    std::fs::create_dir_all(runs_dir).map_err(|e| format!("{}: {e}", runs_dir.display()))?;
    let seq = runs_dir.join(".run-seq");
    let next = std::fs::read_to_string(&seq)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0);
    let tmp = runs_dir.join(format!(".run-seq.tmp-{}", std::process::id()));
    std::fs::write(&tmp, format!("{}\n", next + 1))
        .map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &seq).map_err(|e| format!("{}: {e}", seq.display()))?;
    Ok(next)
}

/// Scan the runs dir for persisted manifests, in id order.
pub fn scan_runs(runs_dir: &Path) -> Vec<RunRecord> {
    let Ok(entries) = std::fs::read_dir(runs_dir) else {
        return Vec::new();
    };
    let mut runs: Vec<RunRecord> = entries
        .flatten()
        .filter(|e| e.path().join("manifest.yml").exists())
        .filter_map(|e| RunRecord::load(&e.path()).ok())
        .collect();
    runs.sort_by_key(|r| r.id);
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifests_round_trip_and_ids_never_repeat() {
        let dir = std::env::temp_dir().join(format!("serve-run-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = next_run_id(&dir).unwrap();
        let b = next_run_id(&dir).unwrap();
        assert_eq!((a, b), (0, 1), "persisted counter is monotonic");

        let run_dir = dir.join("run-1");
        std::fs::create_dir_all(&run_dir).unwrap();
        let mut inputs = Map::new();
        inputs.insert("message", Value::Str("hi".into()));
        let rec = RunRecord {
            id: 1,
            tenant: "alice".into(),
            cwl: PathBuf::from("/tmp/wf.cwl"),
            inputs,
            state: RunState::Running,
            run_dir: run_dir.clone(),
            error: None,
            outputs: None,
            replayed: 0,
            appended: 3,
        };
        rec.save().unwrap();
        let back = RunRecord::load(&run_dir).unwrap();
        assert_eq!(back.id, 1);
        assert_eq!(back.tenant, "alice");
        assert_eq!(back.state, RunState::Running);
        assert!(!back.state.is_terminal());
        assert_eq!(back.appended, 3);
        assert_eq!(
            back.inputs.get("message").and_then(Value::as_str),
            Some("hi")
        );

        // A crashed daemon restarting resumes exactly the non-terminal runs.
        let found = scan_runs(&dir);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, 1);
        let c = next_run_id(&dir).unwrap();
        assert_eq!(c, 2, "restart never re-mints a used id");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
