//! Tokenizer for the JavaScript subset.

use crate::error::EvalError;

/// A JavaScript token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and names
    Num(f64),
    Str(String),
    Ident(String),
    // Keywords
    Var,
    Let,
    Const,
    If,
    Else,
    For,
    While,
    Return,
    Break,
    Continue,
    True,
    False,
    Null,
    Undefined,
    Typeof,
    In,
    Of,
    Function,
    // Punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Semi,
    Colon,
    Question,
    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    EqEqEq,
    NotEqEqEq,
    AndAnd,
    OrOr,
    Not,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,
}

/// A token with its 1-based source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
}

/// Tokenize JavaScript source.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, EvalError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(EvalError::syntax("unterminated block comment", line));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| EvalError::syntax(format!("bad number literal {text:?}"), line))?;
                out.push(SpannedTok {
                    tok: Tok::Num(n),
                    line,
                });
            }
            b'"' | b'\'' => {
                let quote = b;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(EvalError::syntax("unterminated string literal", line));
                    }
                    let c = bytes[i];
                    if c == quote {
                        i += 1;
                        break;
                    }
                    if c == b'\\' {
                        i += 1;
                        if i >= bytes.len() {
                            return Err(EvalError::syntax("dangling escape", line));
                        }
                        match bytes[i] {
                            b'n' => s.push('\n'),
                            b't' => s.push('\t'),
                            b'r' => s.push('\r'),
                            b'\\' => s.push('\\'),
                            b'\'' => s.push('\''),
                            b'"' => s.push('"'),
                            b'0' => s.push('\0'),
                            b'u' => {
                                let hex = src.get(i + 1..i + 5).ok_or_else(|| {
                                    EvalError::syntax("truncated \\u escape", line)
                                })?;
                                let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                    EvalError::syntax(format!("bad \\u escape {hex:?}"), line)
                                })?;
                                s.push(char::from_u32(code).ok_or_else(|| {
                                    EvalError::syntax("invalid unicode escape", line)
                                })?);
                                i += 4;
                            }
                            other => {
                                return Err(EvalError::syntax(
                                    format!("unknown escape \\{}", other as char),
                                    line,
                                ))
                            }
                        }
                        i += 1;
                    } else if c == b'\n' {
                        return Err(EvalError::syntax("newline in string literal", line));
                    } else {
                        let ch = src[i..].chars().next().unwrap();
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "var" => Tok::Var,
                    "let" => Tok::Let,
                    "const" => Tok::Const,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "for" => Tok::For,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "null" => Tok::Null,
                    "undefined" => Tok::Undefined,
                    "typeof" => Tok::Typeof,
                    "in" => Tok::In,
                    "of" => Tok::Of,
                    "function" => Tok::Function,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(SpannedTok { tok, line });
            }
            _ => {
                let (tok, len) = lex_punct(&bytes[i..]).ok_or_else(|| {
                    EvalError::syntax(format!("unexpected character {:?}", b as char), line)
                })?;
                out.push(SpannedTok { tok, line });
                i += len;
            }
        }
    }
    Ok(out)
}

fn lex_punct(rest: &[u8]) -> Option<(Tok, usize)> {
    // Longest match first.
    let three: &[(&[u8], Tok)] = &[(b"===", Tok::EqEqEq), (b"!==", Tok::NotEqEqEq)];
    for (pat, tok) in three {
        if rest.starts_with(pat) {
            return Some((tok.clone(), 3));
        }
    }
    let two: &[(&[u8], Tok)] = &[
        (b"==", Tok::EqEq),
        (b"!=", Tok::NotEq),
        (b"<=", Tok::Le),
        (b">=", Tok::Ge),
        (b"&&", Tok::AndAnd),
        (b"||", Tok::OrOr),
        (b"+=", Tok::PlusAssign),
        (b"-=", Tok::MinusAssign),
        (b"*=", Tok::StarAssign),
        (b"/=", Tok::SlashAssign),
        (b"++", Tok::PlusPlus),
        (b"--", Tok::MinusMinus),
    ];
    for (pat, tok) in two {
        if rest.starts_with(pat) {
            return Some((tok.clone(), 2));
        }
    }
    let one = match rest.first()? {
        b'(' => Tok::LParen,
        b')' => Tok::RParen,
        b'[' => Tok::LBracket,
        b']' => Tok::RBracket,
        b'{' => Tok::LBrace,
        b'}' => Tok::RBrace,
        b',' => Tok::Comma,
        b'.' => Tok::Dot,
        b';' => Tok::Semi,
        b':' => Tok::Colon,
        b'?' => Tok::Question,
        b'+' => Tok::Plus,
        b'-' => Tok::Minus,
        b'*' => Tok::Star,
        b'/' => Tok::Slash,
        b'%' => Tok::Percent,
        b'<' => Tok::Lt,
        b'>' => Tok::Gt,
        b'!' => Tok::Not,
        b'=' => Tok::Assign,
        _ => return None,
    };
    Some((one, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 1e3"),
            vec![Tok::Num(1.0), Tok::Num(2.5), Tok::Num(1000.0)]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks(r#""a\nb" 'c\'d' "A""#),
            vec![
                Tok::Str("a\nb".into()),
                Tok::Str("c'd".into()),
                Tok::Str("A".into())
            ]
        );
    }

    #[test]
    fn keywords_vs_idents() {
        assert_eq!(
            toks("var foo return trueish"),
            vec![
                Tok::Var,
                Tok::Ident("foo".into()),
                Tok::Return,
                Tok::Ident("trueish".into())
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(toks("=== == ="), vec![Tok::EqEqEq, Tok::EqEq, Tok::Assign]);
        assert_eq!(toks("!== != !"), vec![Tok::NotEqEqEq, Tok::NotEq, Tok::Not]);
        assert_eq!(toks("<= < >= >"), vec![Tok::Le, Tok::Lt, Tok::Ge, Tok::Gt]);
        assert_eq!(
            toks("++ += +"),
            vec![Tok::PlusPlus, Tok::PlusAssign, Tok::Plus]
        );
    }

    #[test]
    fn comments_ignored() {
        assert_eq!(
            toks("1 // comment\n2 /* block\nmore */ 3"),
            vec![Tok::Num(1.0), Tok::Num(2.0), Tok::Num(3.0)]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = ts.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn dollar_in_identifiers() {
        assert_eq!(
            toks("$job _x"),
            vec![Tok::Ident("$job".into()), Tok::Ident("_x".into())]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'nl\n'").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("@").is_err());
    }
}
