//! Tree-walking evaluator for the JavaScript subset.

use super::ast::{BinOp, Expr, LogOp, Stmt, UnOp};
use super::stdlib;
use crate::error::{EvalError, EvalErrorKind};
use std::collections::HashMap;
use yamlite::{Map, Value};

/// Evaluate a single expression with the given global variables in scope
/// (CWL provides `inputs`, `self`, and `runtime`). The parsed AST comes
/// from the process-wide [`crate::cache`] — repeated evaluations of the
/// same source (every scatter instance) pay only tree-walking.
pub fn eval_expression(src: &str, globals: &Map) -> Result<Value, EvalError> {
    let expr =
        crate::cache::global::js_expr().get_or_compile(src, super::parser::parse_expression)?;
    let mut interp = Interp::new(globals);
    interp.eval(&expr)
}

/// Run a `${...}` statement body; the value of the first executed `return`
/// is the result (reaching the end without `return` yields `null`). The
/// parsed body is cached like [`eval_expression`]'s AST.
pub fn run_body(src: &str, globals: &Map) -> Result<Value, EvalError> {
    let body = crate::cache::global::js_body().get_or_compile(src, super::parser::parse_body)?;
    let mut interp = Interp::new(globals);
    match interp.exec_block(&body)? {
        Flow::Return(v) => Ok(v),
        _ => Ok(Value::Null),
    }
}

/// JS number-to-string: integral values print without a decimal point.
pub fn js_number_to_string(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".into()
        } else {
            "-Infinity".into()
        }
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Convert an f64 into a Value, collapsing integral doubles to `Int`
/// (matching how JS displays numbers).
pub fn num(n: f64) -> Value {
    if n == n.trunc() && n.abs() < 9.0e15 && !n.is_nan() {
        Value::Int(n as i64)
    } else {
        Value::Float(n)
    }
}

/// JS `String(x)` semantics over our value model.
pub fn js_to_string(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => js_number_to_string(*f),
        Value::Str(s) => s.clone(),
        Value::Seq(items) => items.iter().map(js_to_string).collect::<Vec<_>>().join(","),
        Value::Map(_) => "[object Object]".to_string(),
    }
}

/// JS `Number(x)` semantics (NaN on failure).
pub fn js_to_number(v: &Value) -> f64 {
    match v {
        Value::Null => 0.0,
        Value::Bool(b) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        Value::Str(s) => {
            let t = s.trim();
            if t.is_empty() {
                0.0
            } else {
                t.parse::<f64>().unwrap_or(f64::NAN)
            }
        }
        Value::Seq(items) if items.len() == 1 => js_to_number(&items[0]),
        Value::Seq(items) if items.is_empty() => 0.0,
        _ => f64::NAN,
    }
}

/// Control flow signal from statement execution.
pub enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// One resolved segment of an assignment path.
enum Seg {
    Key(String),
    Idx(usize),
}

const DEFAULT_BUDGET: u64 = 5_000_000;

pub(crate) struct Interp {
    scopes: Vec<HashMap<String, Value>>,
    budget: u64,
}

impl Interp {
    fn new(globals: &Map) -> Self {
        let mut top = HashMap::new();
        for (k, v) in globals.iter() {
            top.insert(k.to_string(), v.clone());
        }
        Self {
            scopes: vec![top],
            budget: DEFAULT_BUDGET,
        }
    }

    fn spend(&mut self) -> Result<(), EvalError> {
        if self.budget == 0 {
            return Err(EvalError::new(
                EvalErrorKind::Budget,
                "expression exceeded its evaluation budget (infinite loop?)",
            ));
        }
        self.budget -= 1;
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn define(&mut self, name: &str, value: Value) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), value);
    }

    fn set_var(&mut self, name: &str, value: Value) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return;
            }
        }
        // Implicit global creation, like non-strict JS.
        self.scopes
            .first_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), value);
    }

    // ---- statements ----

    pub(crate) fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, EvalError> {
        for stmt in stmts {
            match self.exec(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<Flow, EvalError> {
        self.spend()?;
        match stmt {
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::VarDecl(decls) => {
                for (name, init) in decls {
                    let v = match init {
                        Some(e) => self.eval(e)?,
                        None => Value::Null,
                    };
                    self.define(name, v);
                }
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, els) => {
                if self.eval(cond)?.truthy() {
                    self.exec_block(then)
                } else {
                    self.exec_block(els)
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond)?.truthy() {
                    self.spend()?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(init) = init {
                    self.exec(init)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if !self.eval(cond)?.truthy() {
                            break;
                        }
                    }
                    self.spend()?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(update) = update {
                        self.eval(update)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ForOf { var, iter, body } => {
                let seq = self.eval(iter)?;
                let items: Vec<Value> = match seq {
                    Value::Seq(items) => items,
                    Value::Str(s) => s.chars().map(|c| Value::Str(c.to_string())).collect(),
                    other => {
                        return Err(EvalError::type_err(format!(
                            "cannot iterate over {}",
                            other.kind()
                        )))
                    }
                };
                for item in items {
                    self.spend()?;
                    self.define(var, item);
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    // ---- expressions ----

    pub(crate) fn eval(&mut self, e: &Expr) -> Result<Value, EvalError> {
        self.spend()?;
        match e {
            Expr::Null | Expr::Undefined => Ok(Value::Null),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Num(n) => Ok(num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item)?);
                }
                Ok(Value::Seq(out))
            }
            Expr::Object(props) => {
                let mut m = Map::with_capacity(props.len());
                for (k, v) in props {
                    let v = self.eval(v)?;
                    m.insert(k.clone(), v);
                }
                Ok(Value::Map(m))
            }
            Expr::Ident(name) => self
                .lookup(name)
                .cloned()
                .ok_or_else(|| EvalError::name(format!("{name} is not defined"))),
            Expr::Member(obj, name) => {
                // Namespace objects (Math, JSON, Object) only make sense as
                // call targets; bare property reads on them are errors.
                if let Expr::Ident(ns) = obj.as_ref() {
                    if stdlib::is_namespace(ns) && self.lookup(ns).is_none() {
                        return Err(EvalError::type_err(format!(
                            "{ns}.{name} is not a value; call it as a function"
                        )));
                    }
                }
                let v = self.eval(obj)?;
                stdlib::get_property(&v, name)
            }
            Expr::Index(obj, idx) => {
                let o = self.eval(obj)?;
                let i = self.eval(idx)?;
                stdlib::get_index(&o, &i)
            }
            Expr::Call(callee, args) => self.eval_call(callee, args),
            Expr::Unary(op, e) => {
                let v = self.eval(e)?;
                match op {
                    UnOp::Neg => Ok(num(-js_to_number(&v))),
                    UnOp::Plus => Ok(num(js_to_number(&v))),
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                    UnOp::Typeof => Ok(Value::Str(stdlib::type_of(&v).to_string())),
                }
            }
            Expr::Binary(op, l, r) => {
                let lv = self.eval(l)?;
                let rv = self.eval(r)?;
                binary(*op, &lv, &rv)
            }
            Expr::Logical(op, l, r) => {
                let lv = self.eval(l)?;
                match op {
                    LogOp::And => {
                        if lv.truthy() {
                            self.eval(r)
                        } else {
                            Ok(lv)
                        }
                    }
                    LogOp::Or => {
                        if lv.truthy() {
                            Ok(lv)
                        } else {
                            self.eval(r)
                        }
                    }
                }
            }
            Expr::Ternary(c, a, b) => {
                if self.eval(c)?.truthy() {
                    self.eval(a)
                } else {
                    self.eval(b)
                }
            }
            Expr::Assign(target, value) => {
                let v = self.eval(value)?;
                self.assign(target, v.clone())?;
                Ok(v)
            }
        }
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr]) -> Result<Value, EvalError> {
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.eval(a)?);
        }
        match callee {
            // Namespace calls: Math.floor(x), JSON.stringify(v), Object.keys(m)
            Expr::Member(obj, method) => {
                if let Expr::Ident(ns) = obj.as_ref() {
                    if stdlib::is_namespace(ns) && self.lookup(ns).is_none() {
                        return stdlib::call_namespace(ns, method, &argv);
                    }
                }
                let recv = self.eval(obj)?;
                let (result, mutated) = stdlib::call_method(recv, method, &argv)?;
                if let Some(new_recv) = mutated {
                    // Write the mutated receiver back when it names a slot
                    // (value semantics make `arr.push(x)` otherwise silent).
                    if obj.is_lvalue() {
                        self.assign(obj, new_recv)?;
                    }
                }
                Ok(result)
            }
            Expr::Ident(name) => stdlib::call_global(name, &argv),
            other => Err(EvalError::type_err(format!("{other:?} is not callable"))),
        }
    }

    /// Assign to an lvalue expression (Ident / Member / Index chains).
    fn assign(&mut self, target: &Expr, value: Value) -> Result<(), EvalError> {
        // Flatten the target into a root variable plus a path of segments,
        // evaluating index expressions eagerly (they may reference self).
        let mut segs: Vec<Seg> = Vec::new();
        let mut cur = target;
        let root = loop {
            match cur {
                Expr::Ident(name) => break name.clone(),
                Expr::Member(obj, name) => {
                    segs.push(Seg::Key(name.clone()));
                    cur = obj;
                }
                Expr::Index(obj, idx) => {
                    let iv = self.eval(idx)?;
                    match iv {
                        Value::Int(i) if i >= 0 => segs.push(Seg::Idx(i as usize)),
                        Value::Str(s) => segs.push(Seg::Key(s)),
                        other => {
                            return Err(EvalError::type_err(format!(
                                "invalid index {other:?} in assignment"
                            )))
                        }
                    }
                    cur = obj;
                }
                other => {
                    return Err(EvalError::type_err(format!(
                        "invalid assignment target {other:?}"
                    )))
                }
            }
        };
        segs.reverse();
        if segs.is_empty() {
            self.set_var(&root, value);
            return Ok(());
        }
        // Navigate to the slot, creating intermediate maps for fresh keys.
        let mut slot: &mut Value = {
            let scope = self
                .scopes
                .iter_mut()
                .rev()
                .find(|s| s.contains_key(&root))
                .ok_or_else(|| EvalError::name(format!("{root} is not defined")))?;
            scope.get_mut(&root).expect("checked contains_key")
        };
        for seg in &segs {
            match seg {
                Seg::Key(k) => {
                    if slot.is_null() {
                        *slot = Value::Map(Map::new());
                    }
                    let map = slot.as_map_mut().ok_or_else(|| {
                        EvalError::type_err(format!("cannot set property {k:?} on non-object"))
                    })?;
                    if !map.contains_key(k) {
                        map.insert(k.clone(), Value::Null);
                    }
                    slot = map.get_mut(k).expect("just inserted");
                }
                Seg::Idx(i) => {
                    let seq = slot.as_seq_mut().ok_or_else(|| {
                        EvalError::type_err("cannot index non-array in assignment")
                    })?;
                    if *i == seq.len() {
                        seq.push(Value::Null);
                    }
                    slot = seq.get_mut(*i).ok_or_else(|| {
                        EvalError::type_err(format!("index {i} out of bounds in assignment"))
                    })?;
                }
            }
        }
        *slot = value;
        Ok(())
    }
}

/// Apply a binary operator.
fn binary(op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
    match op {
        BinOp::Add => {
            if matches!(l, Value::Str(_)) || matches!(r, Value::Str(_)) {
                Ok(Value::Str(format!(
                    "{}{}",
                    js_to_string(l),
                    js_to_string(r)
                )))
            } else if matches!(l, Value::Seq(_)) || matches!(r, Value::Seq(_)) {
                // JS array + anything stringifies; keep that behaviour.
                Ok(Value::Str(format!(
                    "{}{}",
                    js_to_string(l),
                    js_to_string(r)
                )))
            } else {
                Ok(num(js_to_number(l) + js_to_number(r)))
            }
        }
        BinOp::Sub => Ok(num(js_to_number(l) - js_to_number(r))),
        BinOp::Mul => Ok(num(js_to_number(l) * js_to_number(r))),
        BinOp::Div => Ok(num(js_to_number(l) / js_to_number(r))),
        BinOp::Mod => {
            let (a, b) = (js_to_number(l), js_to_number(r));
            Ok(num(a % b))
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = if let (Value::Str(a), Value::Str(b)) = (l, r) {
                a.partial_cmp(b)
            } else {
                js_to_number(l).partial_cmp(&js_to_number(r))
            };
            let res = match (ord, op) {
                (Some(o), BinOp::Lt) => o.is_lt(),
                (Some(o), BinOp::Le) => o.is_le(),
                (Some(o), BinOp::Gt) => o.is_gt(),
                (Some(o), BinOp::Ge) => o.is_ge(),
                (None, _) => false, // NaN comparisons
                _ => unreachable!(),
            };
            Ok(Value::Bool(res))
        }
        BinOp::EqStrict => Ok(Value::Bool(strict_eq(l, r))),
        BinOp::NeStrict => Ok(Value::Bool(!strict_eq(l, r))),
        BinOp::EqLoose => Ok(Value::Bool(loose_eq(l, r))),
        BinOp::NeLoose => Ok(Value::Bool(!loose_eq(l, r))),
        BinOp::In => match r {
            Value::Map(m) => Ok(Value::Bool(m.contains_key(&js_to_string(l)))),
            Value::Seq(s) => {
                let idx = js_to_number(l);
                Ok(Value::Bool(idx >= 0.0 && (idx as usize) < s.len()))
            }
            other => Err(EvalError::type_err(format!(
                "'in' requires an object or array, got {}",
                other.kind()
            ))),
        },
    }
}

fn strict_eq(l: &Value, r: &Value) -> bool {
    match (l, r) {
        (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
        (a, b) => a == b,
    }
}

fn loose_eq(l: &Value, r: &Value) -> bool {
    if strict_eq(l, r) {
        return true;
    }
    match (l, r) {
        // Number-ish cross-type comparisons.
        (Value::Str(_), Value::Int(_) | Value::Float(_) | Value::Bool(_))
        | (Value::Int(_) | Value::Float(_) | Value::Bool(_), Value::Str(_))
        | (Value::Bool(_), Value::Int(_) | Value::Float(_))
        | (Value::Int(_) | Value::Float(_), Value::Bool(_)) => {
            let (a, b) = (js_to_number(l), js_to_number(r));
            !a.is_nan() && !b.is_nan() && a == b
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::vmap;

    fn g() -> Map {
        let v = vmap! {
            "inputs" => vmap!{
                "message" => "hello world",
                "size" => 1024i64,
                "sepia" => true,
                "file" => vmap!{"basename" => "data.csv", "size" => 2048i64},
            },
            "self" => yamlite::vseq![vmap!{"basename" => "out.png"}],
            "runtime" => vmap!{"cores" => 8i64},
        };
        match v {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    fn ev(src: &str) -> Value {
        eval_expression(src, &g()).unwrap()
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!(ev("1 + 2 * 3"), Value::Int(7));
        assert_eq!(ev("(1 + 2) * 3"), Value::Int(9));
        assert_eq!(ev("7 / 2"), Value::Float(3.5));
        assert_eq!(ev("4 / 2"), Value::Int(2));
        assert_eq!(ev("7 % 3"), Value::Int(1));
        assert_eq!(ev("-3 + +\"4\""), Value::Int(1));
    }

    #[test]
    fn string_concat() {
        assert_eq!(ev("'a' + 'b'"), Value::str("ab"));
        assert_eq!(ev("'n=' + 3"), Value::str("n=3"));
        assert_eq!(ev("1 + '2'"), Value::str("12"));
    }

    #[test]
    fn member_and_index() {
        assert_eq!(ev("inputs.message"), Value::str("hello world"));
        assert_eq!(ev("inputs.size"), Value::Int(1024));
        assert_eq!(ev("inputs['message']"), Value::str("hello world"));
        assert_eq!(ev("self[0].basename"), Value::str("out.png"));
        assert_eq!(ev("runtime.cores"), Value::Int(8));
        assert_eq!(ev("inputs.missing"), Value::Null);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("1 < 2 && 2 <= 2"), Value::Bool(true));
        assert_eq!(ev("'a' < 'b'"), Value::Bool(true));
        assert_eq!(ev("1 == '1'"), Value::Bool(true));
        assert_eq!(ev("1 === '1'"), Value::Bool(false));
        assert_eq!(ev("null == undefined"), Value::Bool(true));
        assert_eq!(ev("inputs.sepia ? 'yes' : 'no'"), Value::str("yes"));
        assert_eq!(ev("false || 'fallback'"), Value::str("fallback"));
        assert_eq!(ev("null && 1"), Value::Null);
    }

    #[test]
    fn typeof_and_in() {
        assert_eq!(ev("typeof 1"), Value::str("number"));
        assert_eq!(ev("typeof 'x'"), Value::str("string"));
        assert_eq!(ev("typeof inputs"), Value::str("object"));
        assert_eq!(ev("'message' in inputs"), Value::Bool(true));
        assert_eq!(ev("'nope' in inputs"), Value::Bool(false));
    }

    #[test]
    fn array_object_literals() {
        assert_eq!(ev("[1, 2, 3].length"), Value::Int(3));
        assert_eq!(ev("{a: 1}.a"), Value::Int(1));
    }

    #[test]
    fn body_with_loop() {
        let v = run_body(
            "var total = 0; for (var i = 1; i <= 10; i++) { total += i; } return total;",
            &g(),
        )
        .unwrap();
        assert_eq!(v, Value::Int(55));
    }

    #[test]
    fn body_for_of_and_push() {
        let v = run_body(
            "var out = []; for (var w of inputs.message.split(' ')) { out.push(w.toUpperCase()); } return out.join('-');",
            &g(),
        )
        .unwrap();
        assert_eq!(v, Value::str("HELLO-WORLD"));
    }

    #[test]
    fn body_while_break_continue() {
        let v = run_body(
            "var i = 0; var n = 0;\n\
             while (true) { i++; if (i > 10) { break; } if (i % 2 == 0) { continue; } n += i; }\n\
             return n;",
            &g(),
        )
        .unwrap();
        assert_eq!(v, Value::Int(25)); // 1+3+5+7+9
    }

    #[test]
    fn body_without_return_yields_null() {
        assert_eq!(run_body("var x = 1;", &g()).unwrap(), Value::Null);
    }

    #[test]
    fn nested_assignment() {
        let v = run_body(
            "var o = {a: {b: 1}}; o.a.c = 2; o['d'] = [0]; o.d[1] = 9; return o;",
            &g(),
        )
        .unwrap();
        assert_eq!(v["a"]["c"], Value::Int(2));
        assert_eq!(v["d"][1], Value::Int(9));
    }

    #[test]
    fn undefined_variable_errors() {
        let err = eval_expression("nope + 1", &g()).unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Name);
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let err = run_body("while (true) { }", &g()).unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Budget);
    }

    #[test]
    fn loose_vs_strict_numeric() {
        assert_eq!(ev("2 == 2.0"), Value::Bool(true));
        assert_eq!(ev("2 === 2.0"), Value::Bool(true)); // both are JS numbers
        assert_eq!(ev("true == 1"), Value::Bool(true));
        assert_eq!(ev("true === 1"), Value::Bool(false));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(js_number_to_string(2.0), "2");
        assert_eq!(js_number_to_string(2.5), "2.5");
        assert_eq!(js_number_to_string(f64::NAN), "NaN");
        assert_eq!(js_number_to_string(f64::INFINITY), "Infinity");
    }

    #[test]
    fn string_comparison_nan() {
        assert_eq!(ev("'abc' < 5"), Value::Bool(false)); // NaN comparison
    }
}
