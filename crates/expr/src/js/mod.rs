//! The JavaScript-subset interpreter backing CWL's
//! `InlineJavascriptRequirement`.
//!
//! Two entry points mirror the CWL expression forms:
//!
//! * [`eval_expression`] evaluates a single expression — the contents of a
//!   `$(...)` parameter reference/expression;
//! * [`run_body`] executes a statement body — the contents of a `${...}`
//!   block — and returns the value of its `return` statement.
//!
//! The interpreter is a plain lexer → AST → tree-walking evaluator over
//! [`yamlite::Value`]. A step budget guards against runaway loops.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod stdlib;

pub use eval::{eval_expression, js_to_number, js_to_string, run_body};
pub use parser::{parse_body, parse_expression};

use crate::cache;
use crate::error::EvalError;
use std::sync::Arc;

/// Lex and parse a `$(...)` expression without evaluating it and without
/// charging the modelled engine-spawn cost. Shares the compiled-expression
/// cache with [`eval_expression`], so a document that is linted and then
/// executed parses each distinct expression exactly once.
pub fn parse_only_expression(src: &str) -> Result<Arc<ast::Expr>, EvalError> {
    cache::global::js_expr().get_or_compile(src, parser::parse_expression)
}

/// Lex and parse a `${...}` statement body without executing it. Shares the
/// compiled-body cache with [`run_body`].
pub fn parse_only_body(src: &str) -> Result<Arc<Vec<ast::Stmt>>, EvalError> {
    cache::global::js_body().get_or_compile(src, parser::parse_body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::{vmap, Map, Value};

    fn globals() -> Map {
        match vmap! {
            "inputs" => vmap!{"message" => "hello brave new world"},
        } {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    /// End-to-end: the kind of expression a real CWL tool uses to build an
    /// output filename from an input filename.
    #[test]
    fn realistic_output_name_expression() {
        let g = match vmap! {
            "inputs" => vmap!{"src" => vmap!{"basename" => "sample.fastq.gz"}},
        } {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        let v = eval_expression("inputs.src.basename.split('.')[0] + '.bam'", &g).unwrap();
        assert_eq!(v, Value::str("sample.bam"));
    }

    /// End-to-end: a `${...}` body that word-counts, as Fig. 2's workload
    /// does at scale.
    #[test]
    fn word_processing_body() {
        let src = "
            var words = inputs.message.split(' ');
            var out = [];
            for (var i = 0; i < words.length; i++) {
                var w = words[i];
                out.push(w.charAt(0).toUpperCase() + w.slice(1));
            }
            return out.join(' ');
        ";
        let v = run_body(src, &globals()).unwrap();
        assert_eq!(v, Value::str("Hello Brave New World"));
    }

    #[test]
    fn resource_expression() {
        let g = match vmap! {
            "runtime" => vmap!{"cores" => 48i64, "ram" => 126000i64},
        } {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        let v = eval_expression("Math.floor(runtime.ram / runtime.cores)", &g).unwrap();
        assert_eq!(v, Value::Int(2625));
    }
}
