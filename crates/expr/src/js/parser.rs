//! Recursive-descent / precedence-climbing parser for the JavaScript subset.

use super::ast::{BinOp, Expr, LogOp, Stmt, UnOp};
use super::lexer::{lex, SpannedTok, Tok};
use crate::error::EvalError;

/// Parse a single expression (e.g. the contents of `$(...)`).
pub fn parse_expression(src: &str) -> Result<Expr, EvalError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expression()?;
    if !p.at_end() {
        return Err(p.err_here("unexpected tokens after expression"));
    }
    Ok(e)
}

/// Parse a statement list (e.g. the contents of `${...}`).
pub fn parse_body(src: &str) -> Result<Vec<Stmt>, EvalError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), EvalError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err_here(&self, msg: impl Into<String>) -> EvalError {
        EvalError::syntax(msg, self.line())
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<Stmt, EvalError> {
        match self.peek() {
            Some(Tok::Var) | Some(Tok::Let) | Some(Tok::Const) => {
                self.next();
                let mut decls = Vec::new();
                loop {
                    let name = self.ident("variable name")?;
                    let init = if self.eat(&Tok::Assign) {
                        Some(self.expression()?)
                    } else {
                        None
                    };
                    decls.push((name, init));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.eat(&Tok::Semi);
                Ok(Stmt::VarDecl(decls))
            }
            Some(Tok::If) => {
                self.next();
                self.expect(&Tok::LParen, "'(' after if")?;
                let cond = self.expression()?;
                self.expect(&Tok::RParen, "')' after condition")?;
                let then = self.block_or_single()?;
                let els = if self.eat(&Tok::Else) {
                    if self.peek() == Some(&Tok::If) {
                        vec![self.statement()?]
                    } else {
                        self.block_or_single()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Some(Tok::While) => {
                self.next();
                self.expect(&Tok::LParen, "'(' after while")?;
                let cond = self.expression()?;
                self.expect(&Tok::RParen, "')' after condition")?;
                let body = self.block_or_single()?;
                Ok(Stmt::While(cond, body))
            }
            Some(Tok::For) => self.for_statement(),
            Some(Tok::Return) => {
                self.next();
                let value = if self.at_end() || self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat(&Tok::Semi);
                Ok(Stmt::Return(value))
            }
            Some(Tok::Break) => {
                self.next();
                self.eat(&Tok::Semi);
                Ok(Stmt::Break)
            }
            Some(Tok::Continue) => {
                self.next();
                self.eat(&Tok::Semi);
                Ok(Stmt::Continue)
            }
            Some(Tok::Function) => Err(EvalError::at(
                crate::error::EvalErrorKind::Unsupported,
                "function declarations are not supported in ${...} bodies",
                self.line(),
            )),
            Some(Tok::Semi) => {
                self.next();
                self.statement()
            }
            _ => {
                let e = self.expression()?;
                self.eat(&Tok::Semi);
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn for_statement(&mut self) -> Result<Stmt, EvalError> {
        self.next(); // for
        self.expect(&Tok::LParen, "'(' after for")?;
        // Disambiguate `for (var x of xs)` from the classic form.
        let is_decl = matches!(
            self.peek(),
            Some(Tok::Var) | Some(Tok::Let) | Some(Tok::Const)
        );
        if is_decl {
            let save = self.pos;
            self.next();
            if let Some(Tok::Ident(name)) = self.peek().cloned() {
                self.next();
                if self.eat(&Tok::Of) || self.eat(&Tok::In) {
                    let iter = self.expression()?;
                    self.expect(&Tok::RParen, "')' after for-of")?;
                    let body = self.block_or_single()?;
                    return Ok(Stmt::ForOf {
                        var: name,
                        iter,
                        body,
                    });
                }
            }
            self.pos = save;
        }
        let init = if self.eat(&Tok::Semi) {
            None
        } else {
            let s = self.statement()?; // consumes trailing `;`
            Some(Box::new(s))
        };
        let cond = if self.peek() == Some(&Tok::Semi) {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(&Tok::Semi, "';' after for condition")?;
        let update = if self.peek() == Some(&Tok::RParen) {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(&Tok::RParen, "')' after for clauses")?;
        let body = self.block_or_single()?;
        Ok(Stmt::For {
            init,
            cond,
            update,
            body,
        })
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, EvalError> {
        if self.eat(&Tok::LBrace) {
            let mut stmts = Vec::new();
            while self.peek() != Some(&Tok::RBrace) {
                if self.at_end() {
                    return Err(self.err_here("unterminated block"));
                }
                stmts.push(self.statement()?);
            }
            self.expect(&Tok::RBrace, "'}'")?;
            Ok(stmts)
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, EvalError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err_here(format!("expected {what}, found {other:?}"))),
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expression(&mut self) -> Result<Expr, EvalError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, EvalError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Some(Tok::Assign) => None,
            Some(Tok::PlusAssign) => Some(BinOp::Add),
            Some(Tok::MinusAssign) => Some(BinOp::Sub),
            Some(Tok::StarAssign) => Some(BinOp::Mul),
            Some(Tok::SlashAssign) => Some(BinOp::Div),
            _ => return Ok(lhs),
        };
        if !lhs.is_lvalue() {
            return Err(self.err_here("invalid assignment target"));
        }
        self.next();
        let rhs = self.assignment()?;
        let value = match op {
            None => rhs,
            Some(op) => Expr::Binary(op, Box::new(lhs.clone()), Box::new(rhs)),
        };
        Ok(Expr::Assign(Box::new(lhs), Box::new(value)))
    }

    fn ternary(&mut self) -> Result<Expr, EvalError> {
        let cond = self.logical_or()?;
        if self.eat(&Tok::Question) {
            let a = self.assignment()?;
            self.expect(&Tok::Colon, "':' in ternary")?;
            let b = self.assignment()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, EvalError> {
        let mut e = self.logical_and()?;
        while self.eat(&Tok::OrOr) {
            let r = self.logical_and()?;
            e = Expr::Logical(LogOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn logical_and(&mut self) -> Result<Expr, EvalError> {
        let mut e = self.equality()?;
        while self.eat(&Tok::AndAnd) {
            let r = self.equality()?;
            e = Expr::Logical(LogOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, EvalError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek() {
                Some(Tok::EqEq) => BinOp::EqLoose,
                Some(Tok::NotEq) => BinOp::NeLoose,
                Some(Tok::EqEqEq) => BinOp::EqStrict,
                Some(Tok::NotEqEqEq) => BinOp::NeStrict,
                _ => break,
            };
            self.next();
            let r = self.relational()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, EvalError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Ge) => BinOp::Ge,
                Some(Tok::In) => BinOp::In,
                _ => break,
            };
            self.next();
            let r = self.additive()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, EvalError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let r = self.multiplicative()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, EvalError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.next();
            let r = self.unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, EvalError> {
        let op = match self.peek() {
            Some(Tok::Minus) => Some(UnOp::Neg),
            Some(Tok::Plus) => Some(UnOp::Plus),
            Some(Tok::Not) => Some(UnOp::Not),
            Some(Tok::Typeof) => Some(UnOp::Typeof),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let e = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(e)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, EvalError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Some(Tok::Dot) => {
                    self.next();
                    let name = match self.next() {
                        Some(Tok::Ident(s)) => s,
                        // Allow keywords as property names (e.g. `x.in`).
                        Some(Tok::In) => "in".to_string(),
                        Some(Tok::Of) => "of".to_string(),
                        other => {
                            return Err(self.err_here(format!(
                                "expected property name after '.', found {other:?}"
                            )))
                        }
                    };
                    e = Expr::Member(Box::new(e), name);
                }
                Some(Tok::LBracket) => {
                    self.next();
                    let idx = self.expression()?;
                    self.expect(&Tok::RBracket, "']'")?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Some(Tok::LParen) => {
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.assignment()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "')' after arguments")?;
                    e = Expr::Call(Box::new(e), args);
                }
                Some(Tok::PlusPlus) | Some(Tok::MinusMinus) => {
                    // Desugar `x++` to `x = x + 1` (value semantics differ
                    // from JS post-increment, acceptable for CWL usage where
                    // the result value is almost never consumed).
                    let op = if self.peek() == Some(&Tok::PlusPlus) {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    };
                    self.next();
                    if !e.is_lvalue() {
                        return Err(self.err_here("invalid increment target"));
                    }
                    e = Expr::Assign(
                        Box::new(e.clone()),
                        Box::new(Expr::Binary(op, Box::new(e), Box::new(Expr::Num(1.0)))),
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, EvalError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::True) => Ok(Expr::Bool(true)),
            Some(Tok::False) => Ok(Expr::Bool(false)),
            Some(Tok::Null) => Ok(Expr::Null),
            Some(Tok::Undefined) => Ok(Expr::Undefined),
            Some(Tok::Ident(s)) => Ok(Expr::Ident(s)),
            Some(Tok::LParen) => {
                let e = self.expression()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::LBracket) => {
                let mut items = Vec::new();
                if self.peek() != Some(&Tok::RBracket) {
                    loop {
                        items.push(self.assignment()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                        if self.peek() == Some(&Tok::RBracket) {
                            break; // trailing comma
                        }
                    }
                }
                self.expect(&Tok::RBracket, "']'")?;
                Ok(Expr::Array(items))
            }
            Some(Tok::LBrace) => {
                let mut props = Vec::new();
                if self.peek() != Some(&Tok::RBrace) {
                    loop {
                        let key = match self.next() {
                            Some(Tok::Ident(s)) => s,
                            Some(Tok::Str(s)) => s,
                            Some(Tok::Num(n)) => crate::js::eval::js_number_to_string(n),
                            other => {
                                return Err(
                                    self.err_here(format!("expected object key, found {other:?}"))
                                )
                            }
                        };
                        self.expect(&Tok::Colon, "':' after object key")?;
                        let value = self.assignment()?;
                        props.push((key, value));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                        if self.peek() == Some(&Tok::RBrace) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace, "'}'")?;
                Ok(Expr::Object(props))
            }
            other => Err(self.err_here(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_member_chains() {
        let e = parse_expression("inputs.message.length").unwrap();
        assert_eq!(
            e,
            Expr::Member(
                Box::new(Expr::Member(
                    Box::new(Expr::Ident("inputs".into())),
                    "message".into()
                )),
                "length".into()
            )
        );
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let e = parse_expression("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary_and_logical() {
        let e = parse_expression("a && b ? x : y || z").unwrap();
        assert!(matches!(e, Expr::Ternary(_, _, _)));
    }

    #[test]
    fn calls_and_indexing() {
        let e = parse_expression("self[0].basename.split('.')[1]").unwrap();
        // Just check it parses to an index at top level.
        assert!(matches!(e, Expr::Index(_, _)));
    }

    #[test]
    fn object_and_array_literals() {
        let e = parse_expression("{a: 1, 'b c': [1, 2,], 3: x}").unwrap();
        match e {
            Expr::Object(props) => {
                assert_eq!(props.len(), 3);
                assert_eq!(props[1].0, "b c");
                assert_eq!(props[2].0, "3");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn body_statements() {
        let body = parse_body(
            "var parts = inputs.name.split('.');\n\
             var out = [];\n\
             for (var i = 0; i < parts.length; i++) { out = out.concat(parts[i]); }\n\
             return out.join('-');",
        )
        .unwrap();
        assert_eq!(body.len(), 4);
        assert!(matches!(body[3], Stmt::Return(Some(_))));
    }

    #[test]
    fn for_of() {
        let body = parse_body("for (var w of words) { total = total + 1; } return total;").unwrap();
        assert!(matches!(body[0], Stmt::ForOf { .. }));
    }

    #[test]
    fn postincrement_desugars() {
        let body = parse_body("i++;").unwrap();
        match &body[0] {
            Stmt::Expr(Expr::Assign(t, v)) => {
                assert_eq!(**t, Expr::Ident("i".into()));
                assert!(matches!(**v, Expr::Binary(BinOp::Add, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_cases() {
        assert!(parse_expression("1 +").is_err());
        assert!(parse_expression("(1").is_err());
        assert!(parse_expression("1 2").is_err());
        assert!(parse_expression("1 = 2").is_err());
        assert!(parse_body("if (x) { return 1").is_err());
        assert!(parse_body("function f() {}").is_err());
    }

    #[test]
    fn else_if_chain() {
        let body = parse_body("if (a) { return 1; } else if (b) { return 2; } else { return 3; }")
            .unwrap();
        match &body[0] {
            Stmt::If(_, _, els) => match &els[0] {
                Stmt::If(_, _, els2) => assert_eq!(els2.len(), 1),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
