//! Built-in properties, methods, and namespace functions for the JS subset —
//! the pieces CWL expressions rely on (string/array manipulation, `Math`,
//! `JSON`, `parseInt`, …).

use super::eval::{js_to_number, js_to_string, num};
use crate::error::EvalError;
use yamlite::{Map, Value};

/// Whether `name` is a built-in namespace object (`Math.floor(...)` style).
pub fn is_namespace(name: &str) -> bool {
    matches!(
        name,
        "Math" | "JSON" | "Object" | "Array" | "Number" | "String"
    )
}

/// JS `typeof`.
pub fn type_of(v: &Value) -> &'static str {
    match v {
        Value::Null => "object", // typeof null === "object"
        Value::Bool(_) => "boolean",
        Value::Int(_) | Value::Float(_) => "number",
        Value::Str(_) => "string",
        Value::Seq(_) | Value::Map(_) => "object",
    }
}

/// Property access `obj.name` (no call).
pub fn get_property(v: &Value, name: &str) -> Result<Value, EvalError> {
    match (v, name) {
        (Value::Str(s), "length") => Ok(Value::Int(s.chars().count() as i64)),
        (Value::Seq(s), "length") => Ok(Value::Int(s.len() as i64)),
        (Value::Map(m), _) => Ok(m.get(name).cloned().unwrap_or(Value::Null)),
        (Value::Null, _) => Err(EvalError::type_err(format!(
            "cannot read property {name:?} of null"
        ))),
        // Property reads on primitives yield undefined, like JS.
        _ => Ok(Value::Null),
    }
}

/// Index access `obj[i]`.
pub fn get_index(obj: &Value, idx: &Value) -> Result<Value, EvalError> {
    match obj {
        Value::Seq(s) => {
            let i = js_to_number(idx);
            if i.is_nan() || i < 0.0 {
                return Ok(Value::Null);
            }
            Ok(s.get(i as usize).cloned().unwrap_or(Value::Null))
        }
        Value::Str(s) => {
            let i = js_to_number(idx);
            if i.is_nan() || i < 0.0 {
                return Ok(Value::Null);
            }
            Ok(s.chars()
                .nth(i as usize)
                .map(|c| Value::Str(c.to_string()))
                .unwrap_or(Value::Null))
        }
        Value::Map(m) => Ok(m.get(&js_to_string(idx)).cloned().unwrap_or(Value::Null)),
        Value::Null => Err(EvalError::type_err("cannot index null")),
        other => Err(EvalError::type_err(format!(
            "cannot index {}",
            other.kind()
        ))),
    }
}

/// Call a method on a receiver. Returns `(result, mutated_receiver)` — the
/// second slot is `Some(new_value)` for mutating methods (`push`, `pop`,
/// `sort`, …) so the evaluator can write the receiver back.
pub fn call_method(
    recv: Value,
    method: &str,
    args: &[Value],
) -> Result<(Value, Option<Value>), EvalError> {
    match recv {
        Value::Str(s) => string_method(&s, method, args).map(|v| (v, None)),
        Value::Seq(items) => array_method(items, method, args),
        Value::Map(m) => map_method(&m, method, args).map(|v| (v, None)),
        Value::Int(_) | Value::Float(_) => {
            number_method(js_to_number(&recv), method, args).map(|v| (v, None))
        }
        other => Err(EvalError::type_err(format!(
            "no method {method:?} on {}",
            other.kind()
        ))),
    }
}

fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Null)
}

fn string_method(s: &str, method: &str, args: &[Value]) -> Result<Value, EvalError> {
    let chars: Vec<char> = s.chars().collect();
    let norm_range = |start: f64, end: f64| -> (usize, usize) {
        let len = chars.len() as f64;
        let fix = |x: f64| -> usize {
            let x = if x < 0.0 {
                (len + x).max(0.0)
            } else {
                x.min(len)
            };
            x as usize
        };
        let (a, b) = (fix(start), fix(end));
        (a, b.max(a))
    };
    match method {
        "split" => {
            let sep = arg(args, 0);
            let parts: Vec<Value> = match sep {
                Value::Null => vec![Value::Str(s.to_string())],
                Value::Str(sep) if sep.is_empty() => {
                    chars.iter().map(|c| Value::Str(c.to_string())).collect()
                }
                Value::Str(sep) => s.split(sep.as_str()).map(Value::str).collect(),
                other => {
                    return Err(EvalError::type_err(format!(
                        "split separator must be a string, got {}",
                        other.kind()
                    )))
                }
            };
            Ok(Value::Seq(parts))
        }
        "toUpperCase" => Ok(Value::Str(s.to_uppercase())),
        "toLowerCase" => Ok(Value::Str(s.to_lowercase())),
        "trim" => Ok(Value::str(s.trim())),
        "charAt" => {
            let i = js_to_number(&arg(args, 0)).max(0.0) as usize;
            Ok(Value::Str(
                chars.get(i).map(|c| c.to_string()).unwrap_or_default(),
            ))
        }
        "indexOf" => {
            let needle = js_to_string(&arg(args, 0));
            Ok(Value::Int(match s.find(&needle) {
                Some(byte_pos) => s[..byte_pos].chars().count() as i64,
                None => -1,
            }))
        }
        "lastIndexOf" => {
            let needle = js_to_string(&arg(args, 0));
            Ok(Value::Int(match s.rfind(&needle) {
                Some(byte_pos) => s[..byte_pos].chars().count() as i64,
                None => -1,
            }))
        }
        "slice" | "substring" => {
            let start = js_to_number(&arg(args, 0));
            let end = if args.len() > 1 {
                js_to_number(&arg(args, 1))
            } else {
                chars.len() as f64
            };
            let (a, b) = if method == "substring" {
                let (x, y) = (start.max(0.0), end.max(0.0));
                ((x.min(y)) as usize, (x.max(y)) as usize)
            } else {
                norm_range(start, end)
            };
            let b = b.min(chars.len());
            let a = a.min(b);
            Ok(Value::Str(chars[a..b].iter().collect()))
        }
        "replace" => {
            let from = js_to_string(&arg(args, 0));
            let to = js_to_string(&arg(args, 1));
            // JS replace() replaces only the first occurrence.
            Ok(Value::Str(s.replacen(&from, &to, 1)))
        }
        "replaceAll" => {
            let from = js_to_string(&arg(args, 0));
            let to = js_to_string(&arg(args, 1));
            Ok(Value::Str(s.replace(&from, &to)))
        }
        "concat" => {
            let mut out = s.to_string();
            for a in args {
                out.push_str(&js_to_string(a));
            }
            Ok(Value::Str(out))
        }
        "startsWith" => Ok(Value::Bool(s.starts_with(&js_to_string(&arg(args, 0))))),
        "endsWith" => Ok(Value::Bool(s.ends_with(&js_to_string(&arg(args, 0))))),
        "includes" => Ok(Value::Bool(s.contains(&js_to_string(&arg(args, 0))))),
        "repeat" => {
            let n = js_to_number(&arg(args, 0));
            if n < 0.0 || n.is_nan() {
                return Err(EvalError::type_err("repeat count must be non-negative"));
            }
            Ok(Value::Str(s.repeat(n as usize)))
        }
        "padStart" | "padEnd" => {
            let target = js_to_number(&arg(args, 0)).max(0.0) as usize;
            let pad = if args.len() > 1 {
                js_to_string(&arg(args, 1))
            } else {
                " ".to_string()
            };
            let cur = chars.len();
            if cur >= target || pad.is_empty() {
                return Ok(Value::str(s));
            }
            let mut fill = String::new();
            while fill.chars().count() < target - cur {
                fill.push_str(&pad);
            }
            let fill: String = fill.chars().take(target - cur).collect();
            Ok(Value::Str(if method == "padStart" {
                format!("{fill}{s}")
            } else {
                format!("{s}{fill}")
            }))
        }
        "toString" => Ok(Value::str(s)),
        other => Err(EvalError::type_err(format!(
            "unknown string method {other:?}"
        ))),
    }
}

fn array_method(
    mut items: Vec<Value>,
    method: &str,
    args: &[Value],
) -> Result<(Value, Option<Value>), EvalError> {
    match method {
        "join" => {
            let sep = match arg(args, 0) {
                Value::Null => ",".to_string(),
                other => js_to_string(&other),
            };
            let joined = items
                .iter()
                .map(js_to_string)
                .collect::<Vec<_>>()
                .join(&sep);
            Ok((Value::Str(joined), None))
        }
        "indexOf" => {
            let needle = arg(args, 0);
            let idx = items
                .iter()
                .position(|v| v == &needle)
                .map(|i| i as i64)
                .unwrap_or(-1);
            Ok((Value::Int(idx), None))
        }
        "includes" => {
            let needle = arg(args, 0);
            Ok((Value::Bool(items.contains(&needle)), None))
        }
        "slice" => {
            let len = items.len() as f64;
            let fix = |x: f64| -> usize {
                let x = if x < 0.0 {
                    (len + x).max(0.0)
                } else {
                    x.min(len)
                };
                x as usize
            };
            let start = fix(js_to_number(&arg(args, 0)));
            let end = if args.len() > 1 {
                fix(js_to_number(&arg(args, 1)))
            } else {
                items.len()
            };
            let end = end.max(start);
            Ok((
                Value::Seq(items[start..end.min(items.len())].to_vec()),
                None,
            ))
        }
        "concat" => {
            let mut out = items.clone();
            for a in args {
                match a {
                    Value::Seq(more) => out.extend(more.iter().cloned()),
                    other => out.push(other.clone()),
                }
            }
            Ok((Value::Seq(out), None))
        }
        "flat" => {
            let mut out = Vec::new();
            for v in &items {
                match v {
                    Value::Seq(inner) => out.extend(inner.iter().cloned()),
                    other => out.push(other.clone()),
                }
            }
            Ok((Value::Seq(out), None))
        }
        "reverse" => {
            items.reverse();
            Ok((Value::Seq(items.clone()), Some(Value::Seq(items))))
        }
        "sort" => {
            // Default JS sort: lexicographic by string representation.
            items.sort_by_key(js_to_string);
            Ok((Value::Seq(items.clone()), Some(Value::Seq(items))))
        }
        "push" => {
            for a in args {
                items.push(a.clone());
            }
            let len = items.len() as i64;
            Ok((Value::Int(len), Some(Value::Seq(items))))
        }
        "pop" => {
            let v = items.pop().unwrap_or(Value::Null);
            Ok((v, Some(Value::Seq(items))))
        }
        "shift" => {
            let v = if items.is_empty() {
                Value::Null
            } else {
                items.remove(0)
            };
            Ok((v, Some(Value::Seq(items))))
        }
        "unshift" => {
            for (i, a) in args.iter().enumerate() {
                items.insert(i, a.clone());
            }
            let len = items.len() as i64;
            Ok((Value::Int(len), Some(Value::Seq(items))))
        }
        "toString" => {
            let joined = items.iter().map(js_to_string).collect::<Vec<_>>().join(",");
            Ok((Value::Str(joined), None))
        }
        other => Err(EvalError::type_err(format!(
            "unknown array method {other:?}"
        ))),
    }
}

fn map_method(m: &Map, method: &str, _args: &[Value]) -> Result<Value, EvalError> {
    match method {
        "hasOwnProperty" => Err(EvalError::type_err(
            "use the 'in' operator instead of hasOwnProperty",
        )),
        "toString" => Ok(Value::str("[object Object]")),
        other => {
            // A map member that is not a method: JS would look it up and
            // fail to call it; report a clearer error.
            let _ = m;
            Err(EvalError::type_err(format!(
                "unknown object method {other:?}"
            )))
        }
    }
}

fn number_method(n: f64, method: &str, args: &[Value]) -> Result<Value, EvalError> {
    match method {
        "toFixed" => {
            let digits = js_to_number(&arg(args, 0)).max(0.0) as usize;
            Ok(Value::Str(format!("{n:.digits$}")))
        }
        "toString" => Ok(Value::Str(super::eval::js_number_to_string(n))),
        other => Err(EvalError::type_err(format!(
            "unknown number method {other:?}"
        ))),
    }
}

/// Call a namespace function: `Math.*`, `JSON.*`, `Object.*`, `Array.*`…
pub fn call_namespace(ns: &str, method: &str, args: &[Value]) -> Result<Value, EvalError> {
    match ns {
        "Math" => math(method, args),
        "JSON" => json(method, args),
        "Object" => match method {
            "keys" => match arg(args, 0) {
                Value::Map(m) => Ok(Value::Seq(m.keys().map(Value::str).collect())),
                other => Err(EvalError::type_err(format!(
                    "Object.keys requires an object, got {}",
                    other.kind()
                ))),
            },
            "values" => match arg(args, 0) {
                Value::Map(m) => Ok(Value::Seq(m.values().cloned().collect())),
                other => Err(EvalError::type_err(format!(
                    "Object.values requires an object, got {}",
                    other.kind()
                ))),
            },
            other => Err(EvalError::name(format!("Object.{other} is not defined"))),
        },
        "Array" => match method {
            "isArray" => Ok(Value::Bool(matches!(arg(args, 0), Value::Seq(_)))),
            other => Err(EvalError::name(format!("Array.{other} is not defined"))),
        },
        "Number" => match method {
            "isInteger" => Ok(Value::Bool(matches!(arg(args, 0), Value::Int(_)))),
            other => Err(EvalError::name(format!("Number.{other} is not defined"))),
        },
        "String" => Err(EvalError::name(format!("String.{method} is not defined"))),
        other => Err(EvalError::name(format!("namespace {other} is not defined"))),
    }
}

fn math(method: &str, args: &[Value]) -> Result<Value, EvalError> {
    let a = js_to_number(&arg(args, 0));
    match method {
        "floor" => Ok(num(a.floor())),
        "ceil" => Ok(num(a.ceil())),
        "round" => Ok(num(a.round())),
        "trunc" => Ok(num(a.trunc())),
        "abs" => Ok(num(a.abs())),
        "sqrt" => Ok(num(a.sqrt())),
        "pow" => Ok(num(a.powf(js_to_number(&arg(args, 1))))),
        "min" => {
            let m = args.iter().map(js_to_number).fold(f64::INFINITY, f64::min);
            Ok(num(m))
        }
        "max" => {
            let m = args
                .iter()
                .map(js_to_number)
                .fold(f64::NEG_INFINITY, f64::max);
            Ok(num(m))
        }
        "log" => Ok(num(a.ln())),
        "log2" => Ok(num(a.log2())),
        "random" => Err(EvalError::new(
            crate::error::EvalErrorKind::Unsupported,
            "Math.random is disabled for deterministic workflows",
        )),
        other => Err(EvalError::name(format!("Math.{other} is not defined"))),
    }
}

fn json(method: &str, args: &[Value]) -> Result<Value, EvalError> {
    match method {
        "stringify" => Ok(Value::Str(yamlite::to_string_flow(&arg(args, 0)))),
        "parse" => {
            let text = js_to_string(&arg(args, 0));
            yamlite::parse_str(&text).map_err(|e| EvalError::type_err(format!("JSON.parse: {e}")))
        }
        other => Err(EvalError::name(format!("JSON.{other} is not defined"))),
    }
}

/// Whether `name` is a bare global function [`call_global`] can dispatch.
pub fn is_global_function(name: &str) -> bool {
    matches!(
        name,
        "parseInt" | "parseFloat" | "String" | "Number" | "Boolean" | "isNaN"
    )
}

/// Call a bare global function (`parseInt(x)` style).
pub fn call_global(name: &str, args: &[Value]) -> Result<Value, EvalError> {
    match name {
        "parseInt" => {
            let s = js_to_string(&arg(args, 0));
            let t = s.trim();
            // parseInt consumes a leading integer prefix.
            let mut end = 0;
            let bytes = t.as_bytes();
            if end < bytes.len() && (bytes[end] == b'-' || bytes[end] == b'+') {
                end += 1;
            }
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            match t[..end].parse::<i64>() {
                Ok(v) => Ok(Value::Int(v)),
                Err(_) => Ok(Value::Float(f64::NAN)),
            }
        }
        "parseFloat" => {
            let s = js_to_string(&arg(args, 0));
            Ok(match s.trim().parse::<f64>() {
                Ok(f) => num(f),
                Err(_) => Value::Float(f64::NAN),
            })
        }
        "String" => Ok(Value::Str(js_to_string(&arg(args, 0)))),
        "Number" => Ok(num(js_to_number(&arg(args, 0)))),
        "Boolean" => Ok(Value::Bool(arg(args, 0).truthy())),
        "isNaN" => Ok(Value::Bool(js_to_number(&arg(args, 0)).is_nan())),
        other => Err(EvalError::name(format!("{other} is not a function"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::js::eval::eval_expression;
    use yamlite::vmap;

    fn g() -> Map {
        match vmap! {"xs" => yamlite::vseq![3i64, 1i64, 2i64], "name" => "photo.tar.gz"} {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    fn ev(src: &str) -> Value {
        eval_expression(src, &g()).unwrap()
    }

    #[test]
    fn string_methods() {
        assert_eq!(ev("name.split('.')[0]"), Value::str("photo"));
        assert_eq!(ev("name.indexOf('.tar')"), Value::Int(5));
        assert_eq!(ev("name.slice(0, 5)"), Value::str("photo"));
        assert_eq!(ev("name.slice(-2)"), Value::str("gz"));
        assert_eq!(ev("name.substring(6, 0)"), Value::str("photo."));
        assert_eq!(ev("name.replace('.gz', '')"), Value::str("photo.tar"));
        assert_eq!(ev("'a'.repeat(3)"), Value::str("aaa"));
        assert_eq!(ev("'5'.padStart(3, '0')"), Value::str("005"));
        assert_eq!(ev("name.endsWith('.gz')"), Value::Bool(true));
        assert_eq!(ev("'  x '.trim()"), Value::str("x"));
        assert_eq!(ev("''.split('').length"), Value::Int(0));
        assert_eq!(ev("'abc'.split('')"), yamlite::vseq!["a", "b", "c"]);
    }

    #[test]
    fn array_methods() {
        assert_eq!(ev("xs.join('-')"), Value::str("3-1-2"));
        assert_eq!(ev("xs.indexOf(1)"), Value::Int(1));
        assert_eq!(ev("xs.includes(2)"), Value::Bool(true));
        assert_eq!(ev("xs.slice(1)"), yamlite::vseq![1i64, 2i64]);
        assert_eq!(ev("xs.concat([4])"), yamlite::vseq![3i64, 1i64, 2i64, 4i64]);
        assert_eq!(ev("[[1], [2, 3]].flat()"), yamlite::vseq![1i64, 2i64, 3i64]);
    }

    #[test]
    fn math_namespace() {
        assert_eq!(ev("Math.floor(2.7)"), Value::Int(2));
        assert_eq!(ev("Math.max(1, 5, 3)"), Value::Int(5));
        assert_eq!(ev("Math.pow(2, 10)"), Value::Int(1024));
        assert_eq!(ev("Math.sqrt(9)"), Value::Int(3));
        assert!(eval_expression("Math.random()", &g()).is_err());
    }

    #[test]
    fn json_namespace() {
        assert_eq!(ev("JSON.stringify({a: 1})"), Value::str("{a: 1}"));
        assert_eq!(ev("JSON.parse('[1, 2]')"), yamlite::vseq![1i64, 2i64]);
    }

    #[test]
    fn object_namespace() {
        assert_eq!(ev("Object.keys({a: 1, b: 2})"), yamlite::vseq!["a", "b"]);
        assert_eq!(ev("Object.values({a: 1})"), yamlite::vseq![1i64]);
        assert_eq!(ev("Array.isArray(xs)"), Value::Bool(true));
        assert_eq!(ev("Array.isArray('s')"), Value::Bool(false));
    }

    #[test]
    fn globals() {
        assert_eq!(ev("parseInt('42px')"), Value::Int(42));
        // Strict parse: trailing units make parseFloat yield NaN here.
        assert!(ev("parseFloat('2.5rem')").as_float().unwrap().is_nan());
        assert_eq!(ev("parseFloat('2.5')"), Value::Float(2.5));
        assert_eq!(ev("String(12)"), Value::str("12"));
        assert_eq!(ev("Number('3')"), Value::Int(3));
        assert_eq!(ev("Boolean('')"), Value::Bool(false));
        assert_eq!(ev("isNaN('abc')"), Value::Bool(true));
    }

    #[test]
    fn number_methods() {
        assert_eq!(ev("(2.456).toFixed(2)"), Value::str("2.46"));
        assert_eq!(ev("(7).toString()"), Value::str("7"));
    }

    #[test]
    fn unknown_method_errors() {
        assert!(eval_expression("name.frobnicate()", &g()).is_err());
        assert!(eval_expression("xs.frobnicate()", &g()).is_err());
        assert!(eval_expression("Math.frobnicate(1)", &g()).is_err());
    }
}
