//! AST for the JavaScript subset.

/// Binary (non-short-circuit) operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Le,
    Gt,
    Ge,
    /// Loose equality `==` (numeric widening + null/undefined folding).
    EqLoose,
    /// Loose inequality `!=`.
    NeLoose,
    /// Strict equality `===`.
    EqStrict,
    /// Strict inequality `!==`.
    NeStrict,
    /// `in` (key membership in object, index in array).
    In,
}

/// Short-circuit logical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    And,
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Plus,
    Not,
    Typeof,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Null,
    Undefined,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Expr>),
    Object(Vec<(String, Expr)>),
    Ident(String),
    /// `obj.prop`
    Member(Box<Expr>, String),
    /// `obj[expr]`
    Index(Box<Expr>, Box<Expr>),
    /// `callee(args...)` — method calls appear as `Call(Member(..), args)`.
    Call(Box<Expr>, Vec<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Logical(LogOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `target = value` (also used for desugared `+=` etc.)
    Assign(Box<Expr>, Box<Expr>),
}

/// Statements (inside `${...}` bodies).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Expr(Expr),
    /// `var`/`let`/`const` declarations (all treated alike).
    VarDecl(Vec<(String, Option<Expr>)>),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    While(Expr, Vec<Stmt>),
    /// Classic `for (init; cond; update) body`.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        update: Option<Expr>,
        body: Vec<Stmt>,
    },
    /// `for (var x of seq) body`.
    ForOf {
        var: String,
        iter: Expr,
        body: Vec<Stmt>,
    },
    Return(Option<Expr>),
    Break,
    Continue,
}

impl Expr {
    /// Whether this expression is a valid assignment target.
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self,
            Expr::Ident(_) | Expr::Member(_, _) | Expr::Index(_, _)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lvalue_classification() {
        assert!(Expr::Ident("x".into()).is_lvalue());
        assert!(Expr::Member(Box::new(Expr::Ident("a".into())), "b".into()).is_lvalue());
        assert!(!Expr::Num(1.0).is_lvalue());
        assert!(!Expr::Call(Box::new(Expr::Ident("f".into())), vec![]).is_lvalue());
    }
}
