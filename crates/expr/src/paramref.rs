//! CWL parameter references: `$(inputs.message)`, `$(inputs.files[0].path)`.
//!
//! A parameter reference is a restricted navigation path over the evaluation
//! context (`inputs`, `self`, `runtime`). When a reference does not fit the
//! restricted grammar, CWL semantics say it is a full expression — callers
//! fall back to the JavaScript engine in that case (see [`crate::interp`]).

use crate::error::EvalError;
use yamlite::{Map, Value};

/// The standard CWL evaluation context.
#[derive(Debug, Clone, Default)]
pub struct EvalContext {
    /// The tool/step input object.
    pub inputs: Value,
    /// `self` — context-dependent (e.g. the file a binding applies to).
    pub self_: Value,
    /// Runtime facts: `cores`, `ram`, `outdir`, `tmpdir`.
    pub runtime: Value,
}

impl EvalContext {
    /// Build a context from an inputs map with default runtime values.
    pub fn from_inputs(inputs: Value) -> Self {
        Self {
            inputs,
            self_: Value::Null,
            runtime: default_runtime(),
        }
    }

    /// Flatten into the globals map the engines expect.
    pub fn to_globals(&self) -> Map {
        let mut m = Map::with_capacity(3);
        m.insert("inputs", self.inputs.clone());
        m.insert("self", self.self_.clone());
        m.insert("runtime", self.runtime.clone());
        m
    }
}

/// The default `runtime` object CWL runners expose.
pub fn default_runtime() -> Value {
    let mut m = Map::new();
    m.insert("cores", Value::Int(1));
    m.insert("ram", Value::Int(1024));
    m.insert("outdir", Value::str("."));
    m.insert("tmpdir", Value::str("/tmp"));
    Value::Map(m)
}

/// Whether `path` fits the restricted parameter-reference grammar:
/// `ident(.ident | [int] | ["key"] | ['key'])*`.
pub fn is_simple_reference(path: &str) -> bool {
    parse_segments(path).is_some()
}

/// One parsed segment of a reference path.
#[derive(Debug, Clone, PartialEq)]
enum Seg {
    Field(String),
    Index(i64),
}

fn parse_segments(path: &str) -> Option<Vec<Seg>> {
    let bytes = path.as_bytes();
    let mut segs = Vec::new();
    let mut i = 0;

    let read_ident = |i: &mut usize| -> Option<String> {
        let start = *i;
        while *i < bytes.len() && (bytes[*i].is_ascii_alphanumeric() || bytes[*i] == b'_') {
            *i += 1;
        }
        if *i == start || bytes[start].is_ascii_digit() {
            return None;
        }
        Some(path[start..*i].to_string())
    };

    segs.push(Seg::Field(read_ident(&mut i)?));
    while i < bytes.len() {
        match bytes[i] {
            b'.' => {
                i += 1;
                segs.push(Seg::Field(read_ident(&mut i)?));
            }
            b'[' => {
                i += 1;
                if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                    let quote = bytes[i];
                    i += 1;
                    let start = i;
                    while i < bytes.len() && bytes[i] != quote {
                        i += 1;
                    }
                    if i >= bytes.len() {
                        return None;
                    }
                    segs.push(Seg::Field(path[start..i].to_string()));
                    i += 1; // closing quote
                } else {
                    let start = i;
                    if i < bytes.len() && bytes[i] == b'-' {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let idx: i64 = path[start..i].parse().ok()?;
                    segs.push(Seg::Index(idx));
                }
                if i >= bytes.len() || bytes[i] != b']' {
                    return None;
                }
                i += 1;
            }
            _ => return None,
        }
    }
    Some(segs)
}

/// Resolve a parameter-reference path against a globals map
/// (`inputs`/`self`/`runtime` at the top level).
pub fn resolve(globals: &Map, path: &str) -> Result<Value, EvalError> {
    let segs = parse_segments(path).ok_or_else(|| {
        EvalError::new(
            crate::error::EvalErrorKind::Syntax,
            format!("{path:?} is not a simple parameter reference"),
        )
    })?;
    let mut cur: Value = match &segs[0] {
        Seg::Field(root) => globals
            .get(root)
            .cloned()
            .ok_or_else(|| EvalError::name(format!("unknown reference root {root:?}")))?,
        Seg::Index(_) => return Err(EvalError::name("reference cannot start with an index")),
    };
    for seg in &segs[1..] {
        cur = match (seg, &cur) {
            (Seg::Field(f), Value::Map(m)) => m
                .get(f)
                .cloned()
                .ok_or_else(|| EvalError::name(format!("reference {path:?}: no field {f:?}")))?,
            (Seg::Index(i), Value::Seq(items)) => {
                let len = items.len() as i64;
                let j = if *i < 0 { len + i } else { *i };
                items
                    .get(j.max(0) as usize)
                    .filter(|_| j >= 0)
                    .cloned()
                    .ok_or_else(|| {
                        EvalError::name(format!("reference {path:?}: index {i} out of range"))
                    })?
            }
            (seg, other) => {
                return Err(EvalError::name(format!(
                    "reference {path:?}: cannot apply {seg:?} to {}",
                    other.kind()
                )))
            }
        };
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::vmap;

    fn globals() -> Map {
        match vmap! {
            "inputs" => vmap!{
                "message" => "hi",
                "files" => Value::Seq(vec![
                    vmap!{"path" => "/a.png", "basename" => "a.png"},
                    vmap!{"path" => "/b.png", "basename" => "b.png"},
                ]),
                "weird key" => 1i64,
            },
            "runtime" => vmap!{"cores" => 4i64},
        } {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    #[test]
    fn simple_field() {
        assert_eq!(
            resolve(&globals(), "inputs.message").unwrap(),
            Value::str("hi")
        );
        assert_eq!(resolve(&globals(), "runtime.cores").unwrap(), Value::Int(4));
    }

    #[test]
    fn indexing() {
        assert_eq!(
            resolve(&globals(), "inputs.files[1].basename").unwrap(),
            Value::str("b.png")
        );
        assert_eq!(
            resolve(&globals(), "inputs.files[-1].path").unwrap(),
            Value::str("/b.png")
        );
    }

    #[test]
    fn quoted_field() {
        assert_eq!(
            resolve(&globals(), "inputs[\"weird key\"]").unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            resolve(&globals(), "inputs['weird key']").unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn grammar_classification() {
        assert!(is_simple_reference("inputs.message"));
        assert!(is_simple_reference("inputs.files[0].path"));
        assert!(is_simple_reference("self"));
        assert!(!is_simple_reference("inputs.message.split(' ')"));
        assert!(!is_simple_reference("1 + 1"));
        assert!(!is_simple_reference("inputs.files[0"));
        assert!(!is_simple_reference(""));
        assert!(!is_simple_reference("inputs..x"));
    }

    #[test]
    fn errors() {
        assert!(resolve(&globals(), "nope.x").is_err());
        assert!(resolve(&globals(), "inputs.missing").is_err());
        assert!(resolve(&globals(), "inputs.files[9]").is_err());
        assert!(resolve(&globals(), "inputs.message.x").is_err());
        assert!(resolve(&globals(), "inputs.message[0]").is_err());
    }

    #[test]
    fn context_to_globals() {
        let ctx = EvalContext::from_inputs(vmap! {"a" => 1i64});
        let g = ctx.to_globals();
        assert_eq!(g.get("inputs").unwrap()["a"].as_int(), Some(1));
        assert_eq!(g.get("runtime").unwrap()["cores"].as_int(), Some(1));
        assert!(g.get("self").unwrap().is_null());
    }
}
