//! The [`ExpressionEngine`] abstraction and its two implementations, with the
//! cost model that distinguishes them in the paper's Fig. 2.
//!
//! * [`JsEngine`] — evaluates CWL JavaScript expressions. Real `cwltool`
//!   spawns a `node` process per expression evaluation and pipes the full
//!   input object into it as JSON. We model that process boundary: each
//!   evaluation *pays* a spawn cost plus a per-KiB marshalling cost over the
//!   serialized context (through [`gridsim::pay`], globally scalable), then
//!   runs our real JS-subset interpreter.
//! * [`PyEngine`] — evaluates the paper's `InlinePythonRequirement`
//!   expressions **in-process** against a compiled [`PyLib`], with no
//!   modelled overhead — exactly the architectural property that makes the
//!   paper's inline-Python curve flat.

use crate::error::EvalError;
use crate::js;
use crate::paramref::EvalContext;
use crate::py::PyLib;
use std::time::Duration;
use yamlite::Value;

/// Which language an engine implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// CWL `InlineJavascriptRequirement`.
    Javascript,
    /// The paper's `InlinePythonRequirement`.
    InlinePython,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Javascript => f.write_str("javascript"),
            EngineKind::InlinePython => f.write_str("inline-python"),
        }
    }
}

/// An expression engine a CWL runner can delegate dynamic behaviour to.
pub trait ExpressionEngine: Send + Sync {
    /// Which language this engine speaks.
    fn kind(&self) -> EngineKind;

    /// Evaluate the content of a `$(...)` fragment.
    fn eval_paren(&self, src: &str, ctx: &EvalContext) -> Result<Value, EvalError>;

    /// Evaluate the content of a `${...}` statement body.
    fn eval_body(&self, src: &str, ctx: &EvalContext) -> Result<Value, EvalError>;

    /// Evaluate a whole string literal that may itself be an expression in
    /// this engine's surface syntax (e.g. the paper's `f"{...}"` notation
    /// for inline Python). Returns `None` when the string is not an
    /// expression for this engine and should go through ordinary
    /// interpolation instead.
    fn eval_literal(&self, s: &str, ctx: &EvalContext) -> Option<Result<Value, EvalError>>;
}

/// Cost model for the JavaScript engine's process boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct JsCostModel {
    /// Engine (node process) start-up paid once per evaluation.
    pub spawn: Duration,
    /// Marshalling cost per KiB of serialized evaluation context.
    pub marshal_per_kib: Duration,
}

impl JsCostModel {
    /// Calibrated to measured `node -e` start-up (~35 ms) and JSON pipe
    /// throughput on commodity hardware. Scaled globally by
    /// [`gridsim::TimeScale`].
    pub fn cwltool_like() -> Self {
        Self {
            spawn: Duration::from_millis(35),
            marshal_per_kib: Duration::from_micros(400),
        }
    }

    /// Toil evaluates expressions through the same node-per-expression path
    /// but adds job-store bookkeeping around it.
    pub fn toil_like() -> Self {
        Self {
            spawn: Duration::from_millis(45),
            marshal_per_kib: Duration::from_micros(500),
        }
    }

    /// No modelled cost (pure interpreter benchmarking).
    pub fn free() -> Self {
        Self {
            spawn: Duration::ZERO,
            marshal_per_kib: Duration::ZERO,
        }
    }

    /// Pay the boundary cost for one evaluation over `ctx`.
    fn pay(&self, ctx: &EvalContext) {
        if self.spawn.is_zero() && self.marshal_per_kib.is_zero() {
            return;
        }
        let bytes = yamlite::to_string_flow(&ctx.inputs).len()
            + yamlite::to_string_flow(&ctx.self_).len()
            + yamlite::to_string_flow(&ctx.runtime).len();
        let kib = (bytes as f64 / 1024.0).ceil() as u32;
        gridsim::pay(self.spawn + self.marshal_per_kib * kib);
    }
}

/// The JavaScript expression engine (CWL `InlineJavascriptRequirement`).
pub struct JsEngine {
    cost: JsCostModel,
}

impl JsEngine {
    /// Engine with a given process-boundary cost model.
    pub fn new(cost: JsCostModel) -> Self {
        Self { cost }
    }

    /// Engine with no modelled overhead.
    pub fn in_process() -> Self {
        Self::new(JsCostModel::free())
    }
}

impl ExpressionEngine for JsEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Javascript
    }

    fn eval_paren(&self, src: &str, ctx: &EvalContext) -> Result<Value, EvalError> {
        // Simple parameter references skip the JS engine entirely — real
        // cwltool also short-circuits these without spawning node.
        if crate::paramref::is_simple_reference(src) {
            return crate::paramref::resolve(&ctx.to_globals(), src.trim());
        }
        self.cost.pay(ctx);
        js::eval_expression(src, &ctx.to_globals())
    }

    fn eval_body(&self, src: &str, ctx: &EvalContext) -> Result<Value, EvalError> {
        self.cost.pay(ctx);
        js::run_body(src, &ctx.to_globals())
    }

    fn eval_literal(&self, _s: &str, _ctx: &EvalContext) -> Option<Result<Value, EvalError>> {
        None // JS has no whole-literal expression form beyond $()/${}.
    }
}

/// The inline-Python expression engine (the paper's
/// `InlinePythonRequirement`).
pub struct PyEngine {
    lib: PyLib,
}

impl PyEngine {
    /// Engine over a compiled expression library.
    pub fn new(lib: PyLib) -> Self {
        Self { lib }
    }

    /// Engine with an empty library (builtins only).
    pub fn empty() -> Self {
        Self {
            lib: PyLib::default(),
        }
    }

    /// Compile an `expressionLib` source block into an engine.
    pub fn compile(src: &str) -> Result<Self, EvalError> {
        Ok(Self {
            lib: PyLib::compile(src)?,
        })
    }

    /// Access the underlying library.
    pub fn lib(&self) -> &PyLib {
        &self.lib
    }
}

impl ExpressionEngine for PyEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::InlinePython
    }

    fn eval_paren(&self, src: &str, ctx: &EvalContext) -> Result<Value, EvalError> {
        if crate::paramref::is_simple_reference(src) {
            return crate::paramref::resolve(&ctx.to_globals(), src.trim());
        }
        self.lib.eval_expression(src, &ctx.to_globals())
    }

    fn eval_body(&self, src: &str, ctx: &EvalContext) -> Result<Value, EvalError> {
        // Python has no `${...}` form; treat the body as an expression for
        // interoperability with documents written for JS runners.
        self.lib.eval_expression(src.trim(), &ctx.to_globals())
    }

    fn eval_literal(&self, s: &str, ctx: &EvalContext) -> Option<Result<Value, EvalError>> {
        // The paper's signal that a string is an inline-Python expression:
        // it is written as a Python f-string literal.
        if !crate::interp::is_fstring_literal(s) {
            return None;
        }
        Some(self.lib.eval_expression(s.trim(), &ctx.to_globals()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::vmap;

    fn ctx() -> EvalContext {
        EvalContext::from_inputs(vmap! {"message" => "hello world", "n" => 3i64})
    }

    #[test]
    fn js_engine_paren_and_body() {
        let e = JsEngine::in_process();
        assert_eq!(
            e.eval_paren("inputs.message", &ctx()).unwrap(),
            Value::str("hello world")
        );
        assert_eq!(
            e.eval_paren("inputs.message.toUpperCase()", &ctx())
                .unwrap(),
            Value::str("HELLO WORLD")
        );
        assert_eq!(
            e.eval_body("return inputs.n * 2;", &ctx()).unwrap(),
            Value::Int(6)
        );
        assert!(e.eval_literal("f\"{x}\"", &ctx()).is_none());
    }

    #[test]
    fn py_engine_fstring_literal() {
        let engine = PyEngine::compile("def shout(m):\n    return m.upper()\n").unwrap();
        let out = engine
            .eval_literal("f\"{shout($(inputs.message))}!\"", &ctx())
            .unwrap()
            .unwrap();
        assert_eq!(out, Value::str("HELLO WORLD!"));
        // Non-f-strings are not literals for this engine.
        assert!(engine.eval_literal("plain", &ctx()).is_none());
        assert!(engine.eval_literal("$(inputs.message)", &ctx()).is_none());
    }

    #[test]
    fn py_engine_paren() {
        let e = PyEngine::empty();
        assert_eq!(e.eval_paren("inputs.n", &ctx()).unwrap(), Value::Int(3));
        assert_eq!(
            e.eval_paren("len($(inputs.message))", &ctx()).unwrap(),
            Value::Int(11)
        );
    }

    #[test]
    fn js_cost_scales_with_context_size() {
        // With TimeScale at default 1.0 this would sleep; use explicit
        // zero-cost check plus arithmetic check of the model itself.
        let m = JsCostModel {
            spawn: Duration::from_millis(10),
            marshal_per_kib: Duration::from_millis(1),
        };
        assert_eq!(m.spawn, Duration::from_millis(10));
        let free = JsCostModel::free();
        assert!(free.spawn.is_zero());
        // Paying a free model is instantaneous.
        let t = std::time::Instant::now();
        free.pay(&ctx());
        assert!(t.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn kind_display() {
        assert_eq!(EngineKind::Javascript.to_string(), "javascript");
        assert_eq!(EngineKind::InlinePython.to_string(), "inline-python");
    }
}
