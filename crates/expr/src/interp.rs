//! CWL string interpolation: splicing `$(...)` and `${...}` fragments into
//! string fields of a document, with the whole-string fast path that returns
//! the expression's native value (so `size: $(inputs.size)` stays an int).

use crate::engine::ExpressionEngine;
use crate::error::EvalError;
use crate::js::js_to_string;
use crate::paramref::EvalContext;
use yamlite::Value;

/// A scanned fragment of an interpolatable string.
#[derive(Debug, Clone, PartialEq)]
pub enum Frag {
    /// Literal text between expressions.
    Text(String),
    /// `$(...)` content.
    Paren(String),
    /// `${...}` content.
    Body(String),
}

/// Split a string into literal text and expression fragments. `\$(` escapes
/// a literal `$(`.
fn scan(s: &str) -> Result<Vec<Frag>, EvalError> {
    let bytes = s.as_bytes();
    let mut frags = Vec::new();
    let mut text = String::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\'
            && i + 2 < bytes.len()
            && bytes[i + 1] == b'$'
            && (bytes[i + 2] == b'(' || bytes[i + 2] == b'{')
        {
            text.push('$');
            i += 2;
            continue;
        }
        if bytes[i] == b'$' && i + 1 < bytes.len() && (bytes[i + 1] == b'(' || bytes[i + 1] == b'{')
        {
            let open = bytes[i + 1];
            let close = if open == b'(' { b')' } else { b'}' };
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            let mut in_str: Option<u8> = None;
            while j < bytes.len() {
                let b = bytes[j];
                if let Some(q) = in_str {
                    if b == b'\\' {
                        j += 1;
                    } else if b == q {
                        in_str = None;
                    }
                } else if b == b'\'' || b == b'"' {
                    in_str = Some(b);
                } else if b == open {
                    depth += 1;
                } else if b == close {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            if depth != 0 {
                return Err(EvalError::new(
                    crate::error::EvalErrorKind::Syntax,
                    format!("unterminated expression in {s:?}"),
                ));
            }
            if !text.is_empty() {
                frags.push(Frag::Text(std::mem::take(&mut text)));
            }
            let content = s[start..j].to_string();
            frags.push(if open == b'(' {
                Frag::Paren(content)
            } else {
                Frag::Body(content)
            });
            i = j + 1;
            continue;
        }
        let c = s[i..].chars().next().expect("in-bounds index");
        text.push(c);
        i += c.len_utf8();
    }
    if !text.is_empty() {
        frags.push(Frag::Text(text));
    }
    Ok(frags)
}

/// Split a string into its literal-text and expression fragments without
/// evaluating anything. This is the same scanner [`interpolate`] uses, so a
/// static analyzer sees exactly the fragments the runtime will evaluate.
pub fn fragments(s: &str) -> Result<Vec<Frag>, EvalError> {
    scan(s)
}

/// Whether a string is written in the paper's f-string notation
/// (`f"..."` / `f'...'`), the marker for an inline-Python expression.
pub fn is_fstring_literal(s: &str) -> bool {
    let t = s.trim();
    (t.starts_with("f\"") && t.ends_with('"') && t.len() >= 3)
        || (t.starts_with("f'") && t.ends_with('\'') && t.len() >= 3)
}

/// Whether a string contains any expression fragments.
pub fn has_expression(s: &str) -> bool {
    match scan(s) {
        Ok(frags) => frags.iter().any(|f| !matches!(f, Frag::Text(_))),
        Err(_) => true, // unterminated — let evaluation surface the error
    }
}

/// Interpolate a string with the given engine and context.
///
/// Order of resolution:
/// 1. the engine's whole-literal form (the paper's `f"..."` inline Python);
/// 2. a single `$(...)`/`${...}` spanning the whole string → native value;
/// 3. otherwise every fragment evaluates and stringifies into place.
pub fn interpolate(
    s: &str,
    engine: &dyn ExpressionEngine,
    ctx: &EvalContext,
) -> Result<Value, EvalError> {
    if let Some(result) = engine.eval_literal(s, ctx) {
        return result;
    }
    let frags = scan(s)?;
    match frags.as_slice() {
        [] => Ok(Value::str("")),
        [Frag::Text(t)] => Ok(Value::str(t.as_str())),
        [Frag::Paren(src)] => engine.eval_paren(src, ctx),
        [Frag::Body(src)] => engine.eval_body(src, ctx),
        many => {
            let mut out = String::with_capacity(s.len());
            for frag in many {
                match frag {
                    Frag::Text(t) => out.push_str(t),
                    Frag::Paren(src) => out.push_str(&js_to_string(&engine.eval_paren(src, ctx)?)),
                    Frag::Body(src) => out.push_str(&js_to_string(&engine.eval_body(src, ctx)?)),
                }
            }
            Ok(Value::Str(out))
        }
    }
}

/// Recursively interpolate every string inside a [`Value`] tree. Used for
/// expression-bearing document sections (arguments, step `valueFrom`, …).
pub trait Interpolatable {
    /// Interpolate all embedded expressions, returning the resolved tree.
    fn interpolate_with(
        &self,
        engine: &dyn ExpressionEngine,
        ctx: &EvalContext,
    ) -> Result<Value, EvalError>;
}

impl Interpolatable for Value {
    fn interpolate_with(
        &self,
        engine: &dyn ExpressionEngine,
        ctx: &EvalContext,
    ) -> Result<Value, EvalError> {
        match self {
            Value::Str(s) => interpolate(s, engine, ctx),
            Value::Seq(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(item.interpolate_with(engine, ctx)?);
                }
                Ok(Value::Seq(out))
            }
            Value::Map(m) => {
                let mut out = yamlite::Map::with_capacity(m.len());
                for (k, v) in m.iter() {
                    out.insert(k.to_string(), v.interpolate_with(engine, ctx)?);
                }
                Ok(Value::Map(out))
            }
            other => Ok(other.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{JsEngine, PyEngine};
    use yamlite::vmap;

    fn ctx() -> EvalContext {
        EvalContext::from_inputs(vmap! {
            "message" => "hello",
            "size" => 1024i64,
            "file" => vmap!{"basename" => "img.png"},
        })
    }

    #[test]
    fn plain_text_passthrough() {
        let e = JsEngine::in_process();
        assert_eq!(
            interpolate("no exprs here", &e, &ctx()).unwrap(),
            Value::str("no exprs here")
        );
        assert_eq!(interpolate("", &e, &ctx()).unwrap(), Value::str(""));
    }

    #[test]
    fn whole_string_reference_keeps_type() {
        let e = JsEngine::in_process();
        assert_eq!(
            interpolate("$(inputs.size)", &e, &ctx()).unwrap(),
            Value::Int(1024)
        );
        assert_eq!(
            interpolate("$(inputs.file)", &e, &ctx()).unwrap()["basename"],
            Value::str("img.png")
        );
    }

    #[test]
    fn embedded_expressions_stringify() {
        let e = JsEngine::in_process();
        assert_eq!(
            interpolate("size is $(inputs.size) bytes", &e, &ctx()).unwrap(),
            Value::str("size is 1024 bytes")
        );
        assert_eq!(
            interpolate("$(inputs.message)-$(inputs.size)", &e, &ctx()).unwrap(),
            Value::str("hello-1024")
        );
    }

    #[test]
    fn body_expressions() {
        let e = JsEngine::in_process();
        assert_eq!(
            interpolate("${ return inputs.size / 2; }", &e, &ctx()).unwrap(),
            Value::Int(512)
        );
        assert_eq!(
            interpolate("half=${ return inputs.size / 2; }", &e, &ctx()).unwrap(),
            Value::str("half=512")
        );
    }

    #[test]
    fn escaped_dollar() {
        let e = JsEngine::in_process();
        assert_eq!(
            interpolate(r"literal \$(not.an.expr)", &e, &ctx()).unwrap(),
            Value::str("literal $(not.an.expr)")
        );
    }

    #[test]
    fn nested_parens_and_strings() {
        let e = JsEngine::in_process();
        assert_eq!(
            interpolate("$(inputs.message.concat(')', '(')  )x", &e, &ctx()).unwrap(),
            Value::str("hello)(x")
        );
    }

    #[test]
    fn unterminated_is_error() {
        let e = JsEngine::in_process();
        assert!(interpolate("$(inputs.size", &e, &ctx()).is_err());
        assert!(has_expression("$(inputs.size"));
        assert!(has_expression("a $(b) c"));
        assert!(!has_expression("plain"));
    }

    #[test]
    fn python_fstring_literal_route() {
        let engine = PyEngine::compile("def dbl(x):\n    return x * 2\n").unwrap();
        assert_eq!(
            interpolate("f\"{dbl($(inputs.size))}\"", &engine, &ctx()).unwrap(),
            Value::str("2048")
        );
        // Plain $() also works under the Python engine.
        assert_eq!(
            interpolate("$(inputs.size)", &engine, &ctx()).unwrap(),
            Value::Int(1024)
        );
    }

    #[test]
    fn interpolate_value_tree() {
        let e = JsEngine::in_process();
        let v = vmap! {
            "args" => yamlite::vseq!["--size", "$(inputs.size)"],
            "label" => "msg=$(inputs.message)",
            "n" => 7i64,
        };
        let out = v.interpolate_with(&e, &ctx()).unwrap();
        assert_eq!(out["args"][1], Value::Int(1024));
        assert_eq!(out["label"], Value::str("msg=hello"));
        assert_eq!(out["n"], Value::Int(7));
    }
}
