//! `expr` — the two expression engines behind CWL dynamic behaviour.
//!
//! CWL workflows embed *expressions* in their YAML definitions. The spec
//! supports JavaScript (via `InlineJavascriptRequirement`); the Parsl+CWL
//! paper (§V) proposes `InlinePythonRequirement`, a Python equivalent that
//! matches Parsl's execution environment. This crate implements both as
//! small tree-walking interpreters over the shared [`yamlite::Value`] model:
//!
//! * [`js`] — a JavaScript subset: literals, member/index access, calls,
//!   arithmetic/comparison/logic, ternary, and `${...}` function bodies with
//!   `var`/`if`/`for`/`while`/`return`. String/array/Math builtins cover what
//!   CWL expressions use in practice.
//! * [`py`] — a Python subset: `def` functions, f-strings, conditionals,
//!   loops, `raise`, and a pragmatic builtin library (`len`, `range`, `str`
//!   methods like `title`/`endswith`, …).
//! * [`cache`] — the compiled-expression cache: each distinct expression
//!   source lexes/parses once into an `Arc`'d AST (bounded LRU keyed by
//!   source hash); repeated evaluations pay only tree-walking. The modelled
//!   process-boundary costs below are *not* cached — they are per-evaluation
//!   by construction, as in the systems they model.
//! * [`paramref`] — `$(inputs.x)` CWL parameter references.
//! * [`interp`] — CWL string interpolation: embedding any number of
//!   `$(...)`/`${...}` fragments in a string, and the paper's f-string-like
//!   notation (`f"{fn($(inputs.x))}"`) that marks inline-Python expressions.
//! * [`engine`] — the [`engine::ExpressionEngine`] trait plus the **cost
//!   model** that reproduces the paper's Fig. 2: the JS engine pays a
//!   modelled engine-spawn plus per-byte input-marshalling cost on every
//!   evaluation (as `cwltool` does by spawning a `node` process and piping
//!   the full input object as JSON), while the Python engine evaluates
//!   in-process with no modelled overhead (as `parsl-cwl` does).
//!
//! The interpreters are real: lexer → AST → evaluator, with precise error
//! positions. Only the *process-boundary overhead* of the JS path is
//! modelled (through [`gridsim::pay`]); everything else is genuine work.

pub mod cache;
pub mod engine;
pub mod error;
pub mod interp;
pub mod js;
pub mod paramref;
pub mod py;

pub use cache::{CacheStats, ProgramCache};
pub use engine::{EngineKind, ExpressionEngine, JsCostModel, JsEngine, PyEngine};
pub use error::{EvalError, EvalErrorKind};
pub use interp::{fragments, interpolate, is_fstring_literal, Frag, Interpolatable};
pub use paramref::EvalContext;
