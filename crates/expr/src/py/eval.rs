//! Tree-walking evaluator for the Python subset.

use super::ast::*;
use super::builtins;
use crate::error::{EvalError, EvalErrorKind};
use crate::paramref;
use std::collections::HashMap;
use yamlite::{Map, Value};

const DEFAULT_BUDGET: u64 = 5_000_000;
// Kept modest: each Python-level frame costs several Rust frames in the
// tree-walking evaluator, and expression-library code is shallow by nature.
const MAX_CALL_DEPTH: usize = 48;

/// A compiled `InlinePythonRequirement` expression library: the functions it
/// defines plus any module-level globals its top-level statements computed.
#[derive(Debug, Clone, Default)]
pub struct PyLib {
    pub(crate) funcs: HashMap<String, PyFunction>,
    pub(crate) globals: HashMap<String, Value>,
}

impl PyLib {
    /// Compile an `expressionLib` source block: `def`s register functions,
    /// other top-level statements execute once with module scope.
    pub fn compile(src: &str) -> Result<Self, EvalError> {
        let stmts = super::parser::parse_module(src)?;
        let mut lib = PyLib::default();
        // Register functions first so top-level code can call them.
        for stmt in &stmts {
            if let PStmt::Def(f) = stmt {
                lib.funcs.insert(f.name.clone(), f.clone());
            }
        }
        let mut interp = PyInterp::new(&lib.funcs, Map::new());
        interp.globals = lib.globals.clone();
        for stmt in &stmts {
            if matches!(stmt, PStmt::Def(_)) {
                continue;
            }
            match interp.exec(stmt)? {
                Flow::Normal => {}
                Flow::Return(_) => {
                    return Err(EvalError::new(
                        EvalErrorKind::Syntax,
                        "'return' outside function at module level",
                    ))
                }
                Flow::Break | Flow::Continue => {
                    return Err(EvalError::new(
                        EvalErrorKind::Syntax,
                        "'break'/'continue' outside loop at module level",
                    ))
                }
            }
        }
        lib.globals = interp.globals;
        Ok(lib)
    }

    /// Merge another library into this one (CWL allows several
    /// `expressionLib` entries; later entries may reference earlier ones).
    pub fn extend(&mut self, other: &PyLib) {
        for (k, v) in &other.funcs {
            self.funcs.insert(k.clone(), v.clone());
        }
        for (k, v) in &other.globals {
            self.globals.insert(k.clone(), v.clone());
        }
    }

    /// Names of the functions this library defines.
    pub fn function_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.funcs.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Evaluate a single Python expression (possibly containing `$(...)`
    /// parameter references) against the CWL context `ctx` (a map providing
    /// `inputs`, `self`, `runtime`).
    pub fn eval_expression(&self, src: &str, ctx: &Map) -> Result<Value, EvalError> {
        // The parsed AST is shared through the process-wide expression
        // cache: scatter workloads evaluate the same source once per
        // instance, and only the context differs between instances.
        let expr =
            crate::cache::global::py_expr().get_or_compile(src, super::parser::parse_expression)?;
        let mut interp = PyInterp::new(&self.funcs, ctx.clone());
        interp.globals = self.globals.clone();
        interp.eval(&expr)
    }

    /// Call a named library function directly with positional arguments.
    pub fn call_function(&self, name: &str, args: &[Value], ctx: &Map) -> Result<Value, EvalError> {
        let mut interp = PyInterp::new(&self.funcs, ctx.clone());
        interp.globals = self.globals.clone();
        interp.call_user(name, args.to_vec())
    }
}

/// Control flow from statement execution.
pub(crate) enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

pub(crate) struct PyInterp<'l> {
    funcs: &'l HashMap<String, PyFunction>,
    pub(crate) globals: HashMap<String, Value>,
    /// Function-call frames; empty at module level.
    frames: Vec<HashMap<String, Value>>,
    /// CWL context for `$(...)` references.
    ctx: Map,
    budget: u64,
    depth: usize,
    /// Captured `print` output (useful for tests and debugging).
    pub(crate) printed: Vec<String>,
}

impl<'l> PyInterp<'l> {
    pub(crate) fn new(funcs: &'l HashMap<String, PyFunction>, ctx: Map) -> Self {
        Self {
            funcs,
            globals: HashMap::new(),
            frames: Vec::new(),
            ctx,
            budget: DEFAULT_BUDGET,
            depth: 0,
            printed: Vec::new(),
        }
    }

    fn spend(&mut self) -> Result<(), EvalError> {
        if self.budget == 0 {
            return Err(EvalError::new(
                EvalErrorKind::Budget,
                "expression exceeded its evaluation budget (infinite loop?)",
            ));
        }
        self.budget -= 1;
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        if let Some(frame) = self.frames.last() {
            if let Some(v) = frame.get(name) {
                return Some(v);
            }
        }
        self.globals.get(name)
    }

    fn scope_mut(&mut self) -> &mut HashMap<String, Value> {
        self.frames.last_mut().unwrap_or(&mut self.globals)
    }

    // ---- statements ----

    pub(crate) fn exec_block(&mut self, stmts: &[PStmt]) -> Result<Flow, EvalError> {
        for stmt in stmts {
            match self.exec(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    pub(crate) fn exec(&mut self, stmt: &PStmt) -> Result<Flow, EvalError> {
        self.spend()?;
        match stmt {
            PStmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            PStmt::Assign(target, value) => {
                let v = self.eval(value)?;
                self.assign(target, v)?;
                Ok(Flow::Normal)
            }
            PStmt::AugAssign(op, target, value) => {
                let cur = self.eval(target)?;
                let rhs = self.eval(value)?;
                let v = builtins::binary(*op, &cur, &rhs)?;
                self.assign(target, v)?;
                Ok(Flow::Normal)
            }
            PStmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            PStmt::Raise(e) => Err(self.build_exception(e.as_ref())?),
            PStmt::Pass => Ok(Flow::Normal),
            PStmt::Break => Ok(Flow::Break),
            PStmt::Continue => Ok(Flow::Continue),
            PStmt::If(branches, orelse) => {
                for (cond, body) in branches {
                    if self.eval(cond)?.truthy() {
                        return self.exec_block(body);
                    }
                }
                self.exec_block(orelse)
            }
            PStmt::While(cond, body) => {
                while self.eval(cond)?.truthy() {
                    self.spend()?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            PStmt::For(var, iter, body) => {
                let seq = self.eval(iter)?;
                let items = builtins::iterate(&seq)?;
                for item in items {
                    self.spend()?;
                    self.scope_mut().insert(var.clone(), item);
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            PStmt::Def(f) => {
                // Nested defs shadow nothing useful without closures;
                // reject them clearly rather than miscompiling.
                Err(EvalError::at(
                    EvalErrorKind::Unsupported,
                    format!("nested function {:?} is not supported", f.name),
                    f.line,
                ))
            }
        }
    }

    /// Evaluate `raise <expr>` into an exception error. Recognizes the
    /// `ExceptionName("message")` shape and extracts the message.
    fn build_exception(&mut self, e: Option<&PExpr>) -> Result<EvalError, EvalError> {
        let Some(e) = e else {
            return Ok(EvalError::raised("exception re-raised"));
        };
        if let PExpr::Call(callee, args) = e {
            if let PExpr::Ident(name) = callee.as_ref() {
                if builtins::is_exception_name(name) {
                    let msg = match args.first() {
                        Some(a) => builtins::py_str(&self.eval(a)?),
                        None => String::new(),
                    };
                    return Ok(EvalError::raised(format!("{name}: {msg}")));
                }
            }
        }
        let v = self.eval(e)?;
        Ok(EvalError::raised(builtins::py_str(&v)))
    }

    // ---- expressions ----

    pub(crate) fn eval(&mut self, e: &PExpr) -> Result<Value, EvalError> {
        self.spend()?;
        match e {
            PExpr::None_ => Ok(Value::Null),
            PExpr::Bool(b) => Ok(Value::Bool(*b)),
            PExpr::Int(i) => Ok(Value::Int(*i)),
            PExpr::Float(f) => Ok(Value::Float(*f)),
            PExpr::Str(s) => Ok(Value::Str(s.clone())),
            PExpr::FString(segs) => {
                let mut out = String::new();
                for seg in segs {
                    match seg {
                        FSeg::Lit(s) => out.push_str(s),
                        FSeg::Expr(e) => {
                            let v = self.eval(e)?;
                            out.push_str(&builtins::py_str(&v));
                        }
                    }
                }
                Ok(Value::Str(out))
            }
            PExpr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item)?);
                }
                Ok(Value::Seq(out))
            }
            PExpr::Dict(pairs) => {
                let mut m = Map::with_capacity(pairs.len());
                for (k, v) in pairs {
                    let key = builtins::py_str(&self.eval(k)?);
                    let value = self.eval(v)?;
                    m.insert(key, value);
                }
                Ok(Value::Map(m))
            }
            PExpr::Ident(name) => self
                .lookup(name)
                .cloned()
                .ok_or_else(|| EvalError::name(format!("name '{name}' is not defined"))),
            PExpr::ParamRef(path) => paramref::resolve(&self.ctx, path),
            PExpr::Attr(obj, name) => {
                let v = self.eval(obj)?;
                match &v {
                    Value::Map(m) => Ok(m.get(name).cloned().unwrap_or(Value::Null)),
                    other => Err(EvalError::type_err(format!(
                        "'{}' object has no attribute {name:?}",
                        builtins::type_name(other)
                    ))),
                }
            }
            PExpr::Index(obj, idx) => {
                let o = self.eval(obj)?;
                let i = self.eval(idx)?;
                builtins::get_index(&o, &i)
            }
            PExpr::Slice(obj, start, end) => {
                let o = self.eval(obj)?;
                let s = match start {
                    Some(e) => Some(self.eval(e)?),
                    None => None,
                };
                let t = match end {
                    Some(e) => Some(self.eval(e)?),
                    None => None,
                };
                builtins::get_slice(&o, s.as_ref(), t.as_ref())
            }
            PExpr::Call(callee, args) => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a)?);
                }
                match callee.as_ref() {
                    PExpr::Ident(name) => {
                        if self.funcs.contains_key(name.as_str()) {
                            self.call_user(name, argv)
                        } else {
                            let printed = &mut self.printed;
                            builtins::call_builtin(name, &argv, printed)
                        }
                    }
                    PExpr::Attr(obj, method) => {
                        let recv = self.eval(obj)?;
                        let (result, mutated) = builtins::call_method(recv, method, &argv)?;
                        if let Some(new_recv) = mutated {
                            if obj.is_lvalue() {
                                self.assign(obj, new_recv)?;
                            }
                        }
                        Ok(result)
                    }
                    other => Err(EvalError::type_err(format!("{other:?} is not callable"))),
                }
            }
            PExpr::Unary(op, e) => {
                let v = self.eval(e)?;
                match op {
                    PUnOp::Not => Ok(Value::Bool(!v.truthy())),
                    PUnOp::Neg => builtins::negate(&v),
                    PUnOp::Pos => match v {
                        Value::Int(_) | Value::Float(_) => Ok(v),
                        other => Err(EvalError::type_err(format!(
                            "bad operand type for unary +: '{}'",
                            builtins::type_name(&other)
                        ))),
                    },
                }
            }
            PExpr::Binary(op, l, r) => {
                let lv = self.eval(l)?;
                let rv = self.eval(r)?;
                builtins::binary(*op, &lv, &rv)
            }
            PExpr::BoolOp(op, l, r) => {
                let lv = self.eval(l)?;
                match op {
                    PBoolOp::And => {
                        if lv.truthy() {
                            self.eval(r)
                        } else {
                            Ok(lv)
                        }
                    }
                    PBoolOp::Or => {
                        if lv.truthy() {
                            Ok(lv)
                        } else {
                            self.eval(r)
                        }
                    }
                }
            }
            PExpr::Compare(first, chain) => {
                let mut left = self.eval(first)?;
                for (op, rhs) in chain {
                    let right = self.eval(rhs)?;
                    if !builtins::compare(*op, &left, &right)? {
                        return Ok(Value::Bool(false));
                    }
                    left = right;
                }
                Ok(Value::Bool(true))
            }
            PExpr::Ternary { body, cond, orelse } => {
                if self.eval(cond)?.truthy() {
                    self.eval(body)
                } else {
                    self.eval(orelse)
                }
            }
        }
    }

    /// Call a user-defined library function.
    pub(crate) fn call_user(&mut self, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let f = self
            .funcs
            .get(name)
            .ok_or_else(|| EvalError::name(format!("name '{name}' is not defined")))?
            .clone();
        if self.depth >= MAX_CALL_DEPTH {
            return Err(EvalError::new(
                EvalErrorKind::Budget,
                format!("maximum recursion depth exceeded calling {name:?}"),
            ));
        }
        if args.len() > f.params.len() {
            return Err(EvalError::type_err(format!(
                "{name}() takes {} arguments but {} were given",
                f.params.len(),
                args.len()
            )));
        }
        let mut frame = HashMap::with_capacity(f.params.len());
        for (i, (pname, default)) in f.params.iter().enumerate() {
            let v = if i < args.len() {
                args[i].clone()
            } else if let Some(default) = default {
                self.eval(default)?
            } else {
                return Err(EvalError::type_err(format!(
                    "{name}() missing required argument: '{pname}'"
                )));
            };
            frame.insert(pname.clone(), v);
        }
        self.frames.push(frame);
        self.depth += 1;
        let result = self.exec_block(&f.body);
        self.depth -= 1;
        self.frames.pop();
        match result? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Null),
        }
    }

    /// Assign to an lvalue: identifier, attribute, or index chains.
    fn assign(&mut self, target: &PExpr, value: Value) -> Result<(), EvalError> {
        enum Seg {
            Key(String),
            Idx(i64),
        }
        let mut segs: Vec<Seg> = Vec::new();
        let mut cur = target;
        let root = loop {
            match cur {
                PExpr::Ident(name) => break name.clone(),
                PExpr::Attr(obj, name) => {
                    segs.push(Seg::Key(name.clone()));
                    cur = obj;
                }
                PExpr::Index(obj, idx) => {
                    let iv = self.eval(idx)?;
                    match iv {
                        Value::Int(i) => segs.push(Seg::Idx(i)),
                        Value::Str(s) => segs.push(Seg::Key(s)),
                        other => {
                            return Err(EvalError::type_err(format!(
                                "invalid index {other:?} in assignment"
                            )))
                        }
                    }
                    cur = obj;
                }
                other => return Err(EvalError::type_err(format!("cannot assign to {other:?}"))),
            }
        };
        segs.reverse();
        if segs.is_empty() {
            self.scope_mut().insert(root, value);
            return Ok(());
        }
        // Navigate from the root variable through the path.
        let slot_root = if let Some(frame) = self.frames.last_mut() {
            if frame.contains_key(&root) {
                frame.get_mut(&root)
            } else {
                self.globals.get_mut(&root)
            }
        } else {
            self.globals.get_mut(&root)
        };
        let mut slot =
            slot_root.ok_or_else(|| EvalError::name(format!("name '{root}' is not defined")))?;
        for seg in &segs {
            match seg {
                Seg::Key(k) => {
                    let map = slot.as_map_mut().ok_or_else(|| {
                        EvalError::type_err(format!("cannot set key {k:?} on non-dict"))
                    })?;
                    if !map.contains_key(k) {
                        map.insert(k.clone(), Value::Null);
                    }
                    slot = map.get_mut(k).expect("just inserted");
                }
                Seg::Idx(i) => {
                    let seq = slot.as_seq_mut().ok_or_else(|| {
                        EvalError::type_err("cannot index non-list in assignment")
                    })?;
                    let len = seq.len() as i64;
                    let idx = if *i < 0 { len + i } else { *i };
                    if idx < 0 || idx >= len {
                        return Err(EvalError::type_err(format!(
                            "list assignment index {i} out of range"
                        )));
                    }
                    slot = &mut seq[idx as usize];
                }
            }
        }
        *slot = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::vmap;

    fn ctx() -> Map {
        match vmap! {
            "inputs" => vmap!{
                "message" => "hello brave new world",
                "data_file" => vmap!{"path" => "/data/x.csv", "basename" => "x.csv"},
                "count" => 5i64,
            },
        } {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    /// The paper's Listing 5: capitalize each word of a message.
    #[test]
    fn listing5_capitalize_words() {
        let lib = PyLib::compile(
            "def capitalize_words(message):\n    \"\"\"Capitalize each word.\"\"\"\n    return message.title()\n",
        )
        .unwrap();
        let v = lib
            .eval_expression("capitalize_words($(inputs.message))", &ctx())
            .unwrap();
        assert_eq!(v, Value::str("Hello Brave New World"));
    }

    /// The paper's Listing 6: validate a file extension, raising on failure.
    #[test]
    fn listing6_valid_file() {
        let src = "
def valid_file(file, ext):
    if not file.lower().endswith(ext):
        raise Exception(f\"Invalid file. Expected '{ext}'\")
    return True
";
        let lib = PyLib::compile(src).unwrap();
        let ok = lib
            .eval_expression("valid_file($(inputs.data_file.basename), '.csv')", &ctx())
            .unwrap();
        assert_eq!(ok, Value::Bool(true));
        let err = lib
            .eval_expression("valid_file($(inputs.data_file.basename), '.tsv')", &ctx())
            .unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Raised);
        assert!(err.message.contains("Expected '.tsv'"), "{}", err.message);
    }

    #[test]
    fn arithmetic_semantics() {
        let lib = PyLib::default();
        let c = ctx();
        assert_eq!(lib.eval_expression("7 / 2", &c).unwrap(), Value::Float(3.5));
        assert_eq!(lib.eval_expression("7 // 2", &c).unwrap(), Value::Int(3));
        assert_eq!(lib.eval_expression("-7 // 2", &c).unwrap(), Value::Int(-4));
        assert_eq!(lib.eval_expression("7 % -3", &c).unwrap(), Value::Int(-2));
        assert_eq!(
            lib.eval_expression("2 ** 10", &c).unwrap(),
            Value::Int(1024)
        );
        assert_eq!(lib.eval_expression("-2 ** 2", &c).unwrap(), Value::Int(-4));
        assert_eq!(
            lib.eval_expression("'ab' * 3", &c).unwrap(),
            Value::str("ababab")
        );
        assert_eq!(
            lib.eval_expression("[1] + [2, 3]", &c).unwrap(),
            yamlite::vseq![1i64, 2i64, 3i64]
        );
    }

    #[test]
    fn str_plus_int_type_error() {
        let lib = PyLib::default();
        let err = lib.eval_expression("'a' + 1", &ctx()).unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Type);
    }

    #[test]
    fn chained_comparison_semantics() {
        let lib = PyLib::default();
        let c = ctx();
        assert_eq!(
            lib.eval_expression("1 < 2 < 3", &c).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            lib.eval_expression("1 < 2 > 3", &c).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            lib.eval_expression("0 <= $(inputs.count) < 10", &c)
                .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn fstrings() {
        let lib = PyLib::default();
        let c = ctx();
        assert_eq!(
            lib.eval_expression("f\"n={1 + 1} s={'x'.upper()}\"", &c)
                .unwrap(),
            Value::str("n=2 s=X")
        );
        assert_eq!(
            lib.eval_expression("f\"{None} {True} {2.5}\"", &c).unwrap(),
            Value::str("None True 2.5")
        );
    }

    #[test]
    fn function_defaults_and_errors() {
        let lib = PyLib::compile("def f(a, b=10):\n    return a + b\n").unwrap();
        let c = ctx();
        assert_eq!(lib.eval_expression("f(1)", &c).unwrap(), Value::Int(11));
        assert_eq!(lib.eval_expression("f(1, 2)", &c).unwrap(), Value::Int(3));
        assert!(lib.eval_expression("f()", &c).is_err());
        assert!(lib.eval_expression("f(1, 2, 3)", &c).is_err());
    }

    #[test]
    fn loops_and_mutation() {
        let src = "
def squares(n):
    out = []
    for i in range(n):
        out.append(i * i)
    return out
";
        let lib = PyLib::compile(src).unwrap();
        assert_eq!(
            lib.eval_expression("squares(4)", &ctx()).unwrap(),
            yamlite::vseq![0i64, 1i64, 4i64, 9i64]
        );
    }

    #[test]
    fn while_break_continue() {
        let src = "
def odd_sum(limit):
    total = 0
    i = 0
    while True:
        i += 1
        if i > limit:
            break
        if i % 2 == 0:
            continue
        total += i
    return total
";
        let lib = PyLib::compile(src).unwrap();
        assert_eq!(
            lib.eval_expression("odd_sum(10)", &ctx()).unwrap(),
            Value::Int(25)
        );
    }

    #[test]
    fn module_globals() {
        let lib = PyLib::compile("LIMIT = 4\ndef f(x):\n    return x * LIMIT\n").unwrap();
        assert_eq!(lib.eval_expression("f(3)", &ctx()).unwrap(), Value::Int(12));
        assert_eq!(lib.eval_expression("LIMIT", &ctx()).unwrap(), Value::Int(4));
    }

    #[test]
    fn recursion_works_but_is_bounded() {
        let lib = PyLib::compile(
            "def fact(n):\n    return 1 if n <= 1 else n * fact(n - 1)\n\ndef inf(n):\n    return inf(n + 1)\n",
        )
        .unwrap();
        assert_eq!(
            lib.eval_expression("fact(10)", &ctx()).unwrap(),
            Value::Int(3628800)
        );
        let err = lib.eval_expression("inf(0)", &ctx()).unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Budget);
    }

    #[test]
    fn infinite_loop_budget() {
        let lib = PyLib::compile("def spin():\n    while True:\n        pass\n").unwrap();
        let err = lib.eval_expression("spin()", &ctx()).unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Budget);
    }

    #[test]
    fn ternary_and_boolops() {
        let lib = PyLib::default();
        let c = ctx();
        assert_eq!(
            lib.eval_expression("'big' if $(inputs.count) > 3 else 'small'", &c)
                .unwrap(),
            Value::str("big")
        );
        assert_eq!(
            lib.eval_expression("None or 'dflt'", &c).unwrap(),
            Value::str("dflt")
        );
        assert_eq!(lib.eval_expression("0 and 1", &c).unwrap(), Value::Int(0));
        assert_eq!(
            lib.eval_expression("not []", &c).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn dict_and_membership() {
        let lib = PyLib::default();
        let c = ctx();
        assert_eq!(
            lib.eval_expression("{'a': 1}['a']", &c).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            lib.eval_expression("'a' in {'a': 1}", &c).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            lib.eval_expression("'ell' in 'hello'", &c).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            lib.eval_expression("3 not in [1, 2]", &c).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn slices_and_negative_indexing() {
        let lib = PyLib::default();
        let c = ctx();
        assert_eq!(
            lib.eval_expression("'hello'[1:3]", &c).unwrap(),
            Value::str("el")
        );
        assert_eq!(
            lib.eval_expression("'hello'[-1]", &c).unwrap(),
            Value::str("o")
        );
        assert_eq!(
            lib.eval_expression("[1, 2, 3][:2]", &c).unwrap(),
            yamlite::vseq![1i64, 2i64]
        );
        assert_eq!(
            lib.eval_expression("[1, 2, 3][-2:]", &c).unwrap(),
            yamlite::vseq![2i64, 3i64]
        );
    }

    #[test]
    fn nested_assignment_and_list_mutation() {
        let src = "
def build():
    d = {'xs': [1, 2, 3]}
    d['xs'][1] = 20
    d['label'] = 'done'
    return d
";
        let lib = PyLib::compile(src).unwrap();
        let v = lib.eval_expression("build()", &ctx()).unwrap();
        assert_eq!(v["xs"][1], Value::Int(20));
        assert_eq!(v["label"], Value::str("done"));
    }

    #[test]
    fn raise_bare_and_custom() {
        let lib = PyLib::compile(
            "def boom(kind):\n    if kind == 1:\n        raise ValueError('bad value')\n    raise 'custom'\n",
        )
        .unwrap();
        let e1 = lib.eval_expression("boom(1)", &ctx()).unwrap_err();
        assert!(e1.message.starts_with("ValueError: bad value"));
        let e2 = lib.eval_expression("boom(2)", &ctx()).unwrap_err();
        assert_eq!(e2.message, "custom");
    }

    #[test]
    fn attr_on_non_dict_errors() {
        let lib = PyLib::default();
        let err = lib.eval_expression("(1).foo", &ctx()).unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Type);
    }

    #[test]
    fn paramref_missing_errors() {
        let lib = PyLib::default();
        let err = lib
            .eval_expression("$(inputs.nope.deeper)", &ctx())
            .unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::Name);
    }
}
