//! Recursive-descent parser for the Python subset.

use super::ast::*;
use super::lexer::{lex, FPart, SpannedTok, Tok};
use crate::error::{EvalError, EvalErrorKind};

/// Parse a module (a sequence of statements, e.g. an `expressionLib` block).
pub fn parse_module(src: &str) -> Result<Vec<PStmt>, EvalError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

/// Parse a single expression (e.g. an f-string fragment).
pub fn parse_expression(src: &str) -> Result<PExpr, EvalError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expression()?;
    p.eat(&Tok::Newline);
    if !p.at_end() {
        return Err(p.err_here("unexpected tokens after expression"));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), EvalError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err_here(&self, msg: impl Into<String>) -> EvalError {
        EvalError::syntax(msg, self.line())
    }

    fn ident(&mut self, what: &str) -> Result<String, EvalError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err_here(format!("expected {what}, found {other:?}"))),
        }
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<PStmt, EvalError> {
        match self.peek() {
            Some(Tok::Def) => self.def_statement(),
            Some(Tok::If) => self.if_statement(),
            Some(Tok::While) => {
                self.next();
                let cond = self.expression()?;
                let body = self.suite()?;
                Ok(PStmt::While(cond, body))
            }
            Some(Tok::For) => {
                self.next();
                let var = self.ident("loop variable")?;
                self.expect(&Tok::In, "'in' in for statement")?;
                let iter = self.expression()?;
                let body = self.suite()?;
                Ok(PStmt::For(var, iter, body))
            }
            Some(Tok::Import) => Err(EvalError::at(
                EvalErrorKind::Unsupported,
                "imports are not supported inside InlinePythonRequirement; \
                 use externalLib to reference other expression libraries",
                self.line(),
            )),
            Some(Tok::Lambda) => Err(EvalError::at(
                EvalErrorKind::Unsupported,
                "lambda is not supported; use def",
                self.line(),
            )),
            _ => {
                let s = self.simple_statement()?;
                self.end_of_statement()?;
                Ok(s)
            }
        }
    }

    fn simple_statement(&mut self) -> Result<PStmt, EvalError> {
        match self.peek() {
            Some(Tok::Return) => {
                self.next();
                let v = if matches!(self.peek(), Some(Tok::Newline) | None) {
                    None
                } else {
                    Some(self.expression()?)
                };
                Ok(PStmt::Return(v))
            }
            Some(Tok::Raise) => {
                self.next();
                let v = if matches!(self.peek(), Some(Tok::Newline) | None) {
                    None
                } else {
                    Some(self.expression()?)
                };
                Ok(PStmt::Raise(v))
            }
            Some(Tok::Pass) => {
                self.next();
                Ok(PStmt::Pass)
            }
            Some(Tok::Break) => {
                self.next();
                Ok(PStmt::Break)
            }
            Some(Tok::Continue) => {
                self.next();
                Ok(PStmt::Continue)
            }
            _ => {
                let e = self.expression()?;
                let aug = match self.peek() {
                    Some(Tok::Assign) => None,
                    Some(Tok::PlusAssign) => Some(PBinOp::Add),
                    Some(Tok::MinusAssign) => Some(PBinOp::Sub),
                    Some(Tok::StarAssign) => Some(PBinOp::Mul),
                    Some(Tok::SlashAssign) => Some(PBinOp::Div),
                    _ => return Ok(PStmt::Expr(e)),
                };
                if !e.is_lvalue() {
                    return Err(self.err_here("invalid assignment target"));
                }
                self.next();
                let value = self.expression()?;
                Ok(match aug {
                    None => PStmt::Assign(e, value),
                    Some(op) => PStmt::AugAssign(op, e, value),
                })
            }
        }
    }

    fn end_of_statement(&mut self) -> Result<(), EvalError> {
        if self.eat(&Tok::Newline) || self.at_end() {
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected end of statement, found {:?}",
                self.peek()
            )))
        }
    }

    fn def_statement(&mut self) -> Result<PStmt, EvalError> {
        let line = self.line();
        self.next(); // def
        let name = self.ident("function name")?;
        self.expect(&Tok::LParen, "'(' after function name")?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let pname = self.ident("parameter name")?;
                let default = if self.eat(&Tok::Assign) {
                    Some(self.expression()?)
                } else {
                    None
                };
                params.push((pname, default));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')' after parameters")?;
        let body = self.suite()?;
        Ok(PStmt::Def(PyFunction {
            name,
            params,
            body,
            line,
        }))
    }

    fn if_statement(&mut self) -> Result<PStmt, EvalError> {
        self.next(); // if
        let mut branches = Vec::new();
        let cond = self.expression()?;
        let body = self.suite()?;
        branches.push((cond, body));
        let mut orelse = Vec::new();
        loop {
            if self.eat(&Tok::Elif) {
                let cond = self.expression()?;
                let body = self.suite()?;
                branches.push((cond, body));
            } else if self.eat(&Tok::Else) {
                orelse = self.suite()?;
                break;
            } else {
                break;
            }
        }
        Ok(PStmt::If(branches, orelse))
    }

    /// A suite: `:` then either an inline simple statement or an indented
    /// block.
    fn suite(&mut self) -> Result<Vec<PStmt>, EvalError> {
        self.expect(&Tok::Colon, "':'")?;
        if self.eat(&Tok::Newline) {
            self.expect(&Tok::Indent, "an indented block")?;
            let mut stmts = Vec::new();
            while self.peek() != Some(&Tok::Dedent) {
                if self.at_end() {
                    return Err(self.err_here("unterminated block"));
                }
                stmts.push(self.statement()?);
            }
            self.expect(&Tok::Dedent, "dedent")?;
            Ok(stmts)
        } else {
            // Inline suite: a single simple statement on the same line.
            let s = self.simple_statement()?;
            self.end_of_statement()?;
            Ok(vec![s])
        }
    }

    // ---- expressions ----

    fn expression(&mut self) -> Result<PExpr, EvalError> {
        // Conditional expression: `body if cond else orelse`.
        let body = self.or_expr()?;
        if self.eat(&Tok::If) {
            let cond = self.or_expr()?;
            self.expect(&Tok::Else, "'else' in conditional expression")?;
            let orelse = self.expression()?;
            Ok(PExpr::Ternary {
                body: Box::new(body),
                cond: Box::new(cond),
                orelse: Box::new(orelse),
            })
        } else {
            Ok(body)
        }
    }

    fn or_expr(&mut self) -> Result<PExpr, EvalError> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let r = self.and_expr()?;
            e = PExpr::BoolOp(PBoolOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<PExpr, EvalError> {
        let mut e = self.not_expr()?;
        while self.eat(&Tok::And) {
            let r = self.not_expr()?;
            e = PExpr::BoolOp(PBoolOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<PExpr, EvalError> {
        if self.eat(&Tok::Not) {
            let e = self.not_expr()?;
            Ok(PExpr::Unary(PUnOp::Not, Box::new(e)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<PExpr, EvalError> {
        let first = self.arith()?;
        let mut chain = Vec::new();
        loop {
            let op = match self.peek() {
                Some(Tok::EqEq) => CmpOp::Eq,
                Some(Tok::NotEq) => CmpOp::Ne,
                Some(Tok::Lt) => CmpOp::Lt,
                Some(Tok::Le) => CmpOp::Le,
                Some(Tok::Gt) => CmpOp::Gt,
                Some(Tok::Ge) => CmpOp::Ge,
                Some(Tok::In) => CmpOp::In,
                Some(Tok::Not) if self.peek2() == Some(&Tok::In) => {
                    self.next();
                    CmpOp::NotIn
                }
                _ => break,
            };
            self.next();
            let rhs = self.arith()?;
            chain.push((op, rhs));
        }
        if chain.is_empty() {
            Ok(first)
        } else {
            Ok(PExpr::Compare(Box::new(first), chain))
        }
    }

    fn arith(&mut self) -> Result<PExpr, EvalError> {
        let mut e = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => PBinOp::Add,
                Some(Tok::Minus) => PBinOp::Sub,
                _ => break,
            };
            self.next();
            let r = self.term()?;
            e = PExpr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn term(&mut self) -> Result<PExpr, EvalError> {
        let mut e = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => PBinOp::Mul,
                Some(Tok::Slash) => PBinOp::Div,
                Some(Tok::SlashSlash) => PBinOp::FloorDiv,
                Some(Tok::Percent) => PBinOp::Mod,
                _ => break,
            };
            self.next();
            let r = self.factor()?;
            e = PExpr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn factor(&mut self) -> Result<PExpr, EvalError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.next();
                let e = self.factor()?;
                Ok(PExpr::Unary(PUnOp::Neg, Box::new(e)))
            }
            Some(Tok::Plus) => {
                self.next();
                let e = self.factor()?;
                Ok(PExpr::Unary(PUnOp::Pos, Box::new(e)))
            }
            _ => self.power(),
        }
    }

    fn power(&mut self) -> Result<PExpr, EvalError> {
        let base = self.postfix()?;
        if self.eat(&Tok::StarStar) {
            // Right-associative; exponent may itself be a unary factor.
            let exp = self.factor()?;
            Ok(PExpr::Binary(PBinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn postfix(&mut self) -> Result<PExpr, EvalError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Some(Tok::Dot) => {
                    self.next();
                    let name = self.ident("attribute name")?;
                    e = PExpr::Attr(Box::new(e), name);
                }
                Some(Tok::LBracket) => {
                    self.next();
                    // Distinguish `a[i]` from slices `a[i:j]`, `a[:j]`, `a[i:]`.
                    let start = if self.peek() == Some(&Tok::Colon) {
                        None
                    } else {
                        Some(Box::new(self.expression()?))
                    };
                    if self.eat(&Tok::Colon) {
                        let end = if self.peek() == Some(&Tok::RBracket) {
                            None
                        } else {
                            Some(Box::new(self.expression()?))
                        };
                        self.expect(&Tok::RBracket, "']'")?;
                        e = PExpr::Slice(Box::new(e), start, end);
                    } else {
                        self.expect(&Tok::RBracket, "']'")?;
                        let idx = start.ok_or_else(|| self.err_here("empty subscript"))?;
                        e = PExpr::Index(Box::new(e), idx);
                    }
                }
                Some(Tok::LParen) => {
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expression()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                            if self.peek() == Some(&Tok::RParen) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "')' after arguments")?;
                    e = PExpr::Call(Box::new(e), args);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<PExpr, EvalError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(PExpr::Int(i)),
            Some(Tok::Float(f)) => Ok(PExpr::Float(f)),
            Some(Tok::Str(s)) => Ok(PExpr::Str(s)),
            Some(Tok::FString(parts)) => {
                let mut segs = Vec::with_capacity(parts.len());
                for part in parts {
                    match part {
                        FPart::Lit(s) => segs.push(FSeg::Lit(s)),
                        FPart::Expr(src) => {
                            let e = parse_expression(&src)?;
                            segs.push(FSeg::Expr(Box::new(e)));
                        }
                    }
                }
                Ok(PExpr::FString(segs))
            }
            Some(Tok::True_) => Ok(PExpr::Bool(true)),
            Some(Tok::False_) => Ok(PExpr::Bool(false)),
            Some(Tok::None_) => Ok(PExpr::None_),
            Some(Tok::Ident(s)) => Ok(PExpr::Ident(s)),
            Some(Tok::ParamRef(path)) => Ok(PExpr::ParamRef(path)),
            Some(Tok::LParen) => {
                let e = self.expression()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::LBracket) => {
                let mut items = Vec::new();
                if self.peek() != Some(&Tok::RBracket) {
                    loop {
                        items.push(self.expression()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                        if self.peek() == Some(&Tok::RBracket) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket, "']'")?;
                Ok(PExpr::List(items))
            }
            Some(Tok::LBrace) => {
                let mut pairs = Vec::new();
                if self.peek() != Some(&Tok::RBrace) {
                    loop {
                        let k = self.expression()?;
                        self.expect(&Tok::Colon, "':' in dict literal")?;
                        let v = self.expression()?;
                        pairs.push((k, v));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                        if self.peek() == Some(&Tok::RBrace) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace, "'}'")?;
                Ok(PExpr::Dict(pairs))
            }
            other => Err(self.err_here(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_with_def() {
        let src = "
def capitalize_words(message):
    \"\"\"Docstring.\"\"\"
    return message.title()
";
        let stmts = parse_module(src).unwrap();
        assert_eq!(stmts.len(), 1);
        match &stmts[0] {
            PStmt::Def(f) => {
                assert_eq!(f.name, "capitalize_words");
                assert_eq!(f.params.len(), 1);
                assert_eq!(f.body.len(), 2); // docstring expr + return
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn def_with_defaults() {
        let stmts = parse_module("def f(a, b=2, c='x'):\n    return a\n").unwrap();
        match &stmts[0] {
            PStmt::Def(f) => {
                assert_eq!(f.params[0], ("a".into(), None));
                assert_eq!(f.params[1], ("b".into(), Some(PExpr::Int(2))));
                assert_eq!(f.params[2], ("c".into(), Some(PExpr::Str("x".into()))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_elif_else() {
        let src = "
if x > 1:
    y = 1
elif x > 0:
    y = 2
else:
    y = 3
";
        let stmts = parse_module(src).unwrap();
        match &stmts[0] {
            PStmt::If(branches, orelse) => {
                assert_eq!(branches.len(), 2);
                assert_eq!(orelse.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inline_suite() {
        let stmts = parse_module("if x: return 1\n").unwrap();
        match &stmts[0] {
            PStmt::If(branches, _) => assert_eq!(branches[0].1.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chained_comparison() {
        let e = parse_expression("0 <= x < 10").unwrap();
        match e {
            PExpr::Compare(_, chain) => {
                assert_eq!(chain.len(), 2);
                assert_eq!(chain[0].0, CmpOp::Le);
                assert_eq!(chain[1].0, CmpOp::Lt);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn not_in() {
        let e = parse_expression("x not in ys").unwrap();
        match e {
            PExpr::Compare(_, chain) => assert_eq!(chain[0].0, CmpOp::NotIn),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary() {
        let e = parse_expression("'yes' if ok else 'no'").unwrap();
        assert!(matches!(e, PExpr::Ternary { .. }));
    }

    #[test]
    fn slices() {
        assert!(matches!(
            parse_expression("w[1:]").unwrap(),
            PExpr::Slice(_, Some(_), None)
        ));
        assert!(matches!(
            parse_expression("w[:2]").unwrap(),
            PExpr::Slice(_, None, Some(_))
        ));
        assert!(matches!(
            parse_expression("w[1:2]").unwrap(),
            PExpr::Slice(_, Some(_), Some(_))
        ));
        assert!(matches!(
            parse_expression("w[i]").unwrap(),
            PExpr::Index(_, _)
        ));
    }

    #[test]
    fn fstring_with_call_and_paramref() {
        let e = parse_expression(r#"f"{valid_file($(inputs.data_file), '.csv')}""#).unwrap();
        match e {
            PExpr::FString(segs) => match &segs[0] {
                FSeg::Expr(inner) => match inner.as_ref() {
                    PExpr::Call(callee, args) => {
                        assert_eq!(**callee, PExpr::Ident("valid_file".into()));
                        assert_eq!(args[0], PExpr::ParamRef("inputs.data_file".into()));
                        assert_eq!(args[1], PExpr::Str(".csv".into()));
                    }
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn power_right_assoc_and_unary() {
        // -2 ** 2 == -(2 ** 2) in Python
        let e = parse_expression("-2 ** 2").unwrap();
        match e {
            PExpr::Unary(PUnOp::Neg, inner) => {
                assert!(matches!(*inner, PExpr::Binary(PBinOp::Pow, _, _)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse_module("import os\n").is_err());
        assert!(parse_module("x = lambda y: y\n").is_err());
        assert!(parse_module("def f(:\n    pass\n").is_err());
        assert!(parse_module("if x:\n").is_err());
        assert!(parse_expression("1 +").is_err());
        assert!(parse_expression("1 2").is_err());
    }

    #[test]
    fn for_and_while() {
        let src = "
total = 0
for w in words:
    total += 1
while total > 0:
    total -= 1
";
        let stmts = parse_module(src).unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[1], PStmt::For(_, _, _)));
        assert!(matches!(stmts[2], PStmt::While(_, _)));
    }

    #[test]
    fn raise_statement() {
        let stmts = parse_module("raise Exception(f\"Invalid file. Expected '{ext}'\")\n").unwrap();
        assert!(matches!(stmts[0], PStmt::Raise(Some(_))));
    }
}
