//! The Python-subset interpreter backing the paper's
//! `InlinePythonRequirement` (§V).
//!
//! An `expressionLib` block compiles to a [`PyLib`]; f-string-style
//! expressions (`f"{capitalize_words($(inputs.message))}"`) evaluate against
//! it in-process — no interpreter is spawned, which is exactly the property
//! the paper's Fig. 2 measures against JavaScript expressions.

pub mod ast;
pub mod builtins;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use builtins::{py_repr, py_str};
pub use eval::PyLib;
pub use parser::{parse_expression, parse_module};

use crate::cache;
use crate::error::EvalError;
use std::sync::Arc;

/// Lex and parse a Python expression without evaluating it. Shares the
/// compiled-expression cache with [`PyLib::eval_expression`].
pub fn parse_only_expression(src: &str) -> Result<Arc<ast::PExpr>, EvalError> {
    cache::global::py_expr().get_or_compile(src, parser::parse_expression)
}

/// Lex and parse an `expressionLib` module without executing any of its
/// top-level statements (unlike [`PyLib::compile`], which runs them to build
/// module globals). This is the safe entry point for static analysis.
pub fn parse_only_module(src: &str) -> Result<Vec<ast::PStmt>, EvalError> {
    parser::parse_module(src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlite::{vmap, Map, Value};

    fn ctx() -> Map {
        match vmap! {"inputs" => vmap!{"n" => 6i64}} {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    /// A library with several interdependent functions, exercising the
    /// module-compilation path end to end.
    #[test]
    fn multi_function_library() {
        let src = "
BASE = 10

def scale(x):
    return x * BASE

def describe(x):
    s = scale(x)
    if s > 50:
        return f'big: {s}'
    return f'small: {s}'
";
        let lib = PyLib::compile(src).unwrap();
        assert_eq!(lib.function_names(), vec!["describe", "scale"]);
        assert_eq!(
            lib.eval_expression("describe($(inputs.n))", &ctx())
                .unwrap(),
            Value::str("big: 60")
        );
        assert_eq!(
            lib.eval_expression("describe(2)", &ctx()).unwrap(),
            Value::str("small: 20")
        );
    }

    #[test]
    fn extend_merges_libraries() {
        let mut a = PyLib::compile("def f(x):\n    return x + 1\n").unwrap();
        let b = PyLib::compile("def g(x):\n    return x * 2\n").unwrap();
        a.extend(&b);
        assert_eq!(a.eval_expression("g(f(3))", &ctx()).unwrap(), Value::Int(8));
    }

    #[test]
    fn module_level_loops_allowed() {
        let lib = PyLib::compile("xs = []\nfor i in range(3):\n    xs.append(i * i)\n").unwrap();
        assert_eq!(
            lib.eval_expression("xs", &ctx()).unwrap(),
            yamlite::vseq![0i64, 1i64, 4i64]
        );
    }

    #[test]
    fn module_level_return_rejected() {
        assert!(PyLib::compile("return 1\n").is_err());
        assert!(PyLib::compile("break\n").is_err());
    }
}
