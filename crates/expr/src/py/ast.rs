//! AST for the Python subset.

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PBinOp {
    Add,
    Sub,
    Mul,
    /// True division (`/`) — always float, like Python 3.
    Div,
    /// Floor division (`//`).
    FloorDiv,
    Mod,
    Pow,
}

/// Comparison operators (chainable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    In,
    NotIn,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PUnOp {
    Neg,
    Pos,
    Not,
}

/// Short-circuit boolean operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PBoolOp {
    And,
    Or,
}

/// One segment of a parsed f-string.
#[derive(Debug, Clone, PartialEq)]
pub enum FSeg {
    Lit(String),
    Expr(Box<PExpr>),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    None_,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    FString(Vec<FSeg>),
    List(Vec<PExpr>),
    Dict(Vec<(PExpr, PExpr)>),
    Ident(String),
    /// `$(inputs.x)` — resolved against the CWL evaluation context.
    ParamRef(String),
    /// `obj.attr`
    Attr(Box<PExpr>, String),
    /// `obj[index]`
    Index(Box<PExpr>, Box<PExpr>),
    /// `obj[a:b]` with optional bounds (no step).
    Slice(Box<PExpr>, Option<Box<PExpr>>, Option<Box<PExpr>>),
    /// `callee(args...)`
    Call(Box<PExpr>, Vec<PExpr>),
    Unary(PUnOp, Box<PExpr>),
    Binary(PBinOp, Box<PExpr>, Box<PExpr>),
    BoolOp(PBoolOp, Box<PExpr>, Box<PExpr>),
    /// Chained comparison: `first (op next)+`.
    Compare(Box<PExpr>, Vec<(CmpOp, PExpr)>),
    /// `body if cond else orelse`
    Ternary {
        body: Box<PExpr>,
        cond: Box<PExpr>,
        orelse: Box<PExpr>,
    },
}

impl PExpr {
    /// Whether this expression is a valid assignment target.
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self,
            PExpr::Ident(_) | PExpr::Attr(_, _) | PExpr::Index(_, _)
        )
    }
}

/// A user-defined function (from `def`).
#[derive(Debug, Clone, PartialEq)]
pub struct PyFunction {
    pub name: String,
    /// Parameter names with optional default expressions.
    pub params: Vec<(String, Option<PExpr>)>,
    pub body: Vec<PStmt>,
    /// 1-based line of the `def` (for error messages).
    pub line: usize,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum PStmt {
    Expr(PExpr),
    Assign(PExpr, PExpr),
    AugAssign(PBinOp, PExpr, PExpr),
    Return(Option<PExpr>),
    Raise(Option<PExpr>),
    Pass,
    Break,
    Continue,
    /// `(cond, body)` branches for if/elif, plus the else body.
    If(Vec<(PExpr, Vec<PStmt>)>, Vec<PStmt>),
    While(PExpr, Vec<PStmt>),
    For(String, PExpr, Vec<PStmt>),
    Def(PyFunction),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lvalues() {
        assert!(PExpr::Ident("x".into()).is_lvalue());
        assert!(PExpr::Attr(Box::new(PExpr::Ident("a".into())), "b".into()).is_lvalue());
        assert!(!PExpr::Int(1).is_lvalue());
        assert!(!PExpr::ParamRef("inputs.x".into()).is_lvalue());
    }
}
